//! End-to-end campaign-server tests over a real TCP socket.
//!
//! These are the acceptance criteria of the campaign-server subsystem:
//!
//! 1. A multi-config grid submitted over HTTP polls to completion and
//!    every streamed result is digest-identical to a direct
//!    `sweep_supervised` on the same grid.
//! 2. A server killed mid-job (graceful shutdown before the queue
//!    drains, plus a torn final checkpoint line) resumes from its
//!    checkpoints on restart and converges to the same digests.
//! 3. Resubmitting an identical grid completes with zero simulations —
//!    pure cache hits, verified through `GET /stats`.
//!
//! Everything runs on an ephemeral 127.0.0.1 port; no network egress.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use deadlock_characterization::flexsim::jsonio::{parse, Json};
use deadlock_characterization::flexsim::{
    decode_result, sweep_supervised, RunConfig, SweepOptions,
};
use deadlock_characterization::server::{
    http_request, http_request_full, CampaignServer, ServerOptions, SweepGrid,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A grid small enough to finish in seconds but wide enough to spread
/// across workers: 2 loads × 2 seeds.
fn test_grid() -> SweepGrid {
    let mut base = RunConfig::small_default();
    base.warmup = 200;
    base.measure = 600;
    SweepGrid {
        base,
        seeds: vec![21, 22],
        loads: vec![0.15, 0.25],
        timeout_ms: None,
    }
}

fn start_server(data_dir: &Path, workers: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut opts = ServerOptions::new(data_dir);
    opts.workers = workers;
    let server = CampaignServer::bind("127.0.0.1:0", &opts).expect("bind");
    let addr = server.addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http_request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

fn submit(addr: SocketAddr, grid: &SweepGrid) -> u64 {
    let (status, body) =
        http_request(addr, "POST", "/jobs", Some(&grid.to_json().to_string())).expect("submit");
    assert_eq!(status, 200, "submit failed: {body}");
    parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("submit returns an id")
}

fn poll_done(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        let v = parse(&body).unwrap();
        if v.get("state").and_then(Json::as_str) == Some("done") {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Fetches `/jobs/:id/results` and returns per-slot digests.
fn result_digests(addr: SocketAddr, id: u64, n: usize) -> Vec<String> {
    let (status, stream) =
        http_request(addr, "GET", &format!("/jobs/{id}/results"), None).expect("results");
    assert_eq!(status, 200);
    let mut out = vec![String::new(); n];
    for line in stream.lines().filter(|l| !l.trim().is_empty()) {
        let v = parse(line).expect("every streamed line parses");
        let idx = v.get("index").and_then(Json::as_u64).unwrap() as usize;
        let r = decode_result(v.get("result").unwrap()).expect("decodable result");
        out[idx] = r.digest();
    }
    out
}

fn stats_u64(addr: SocketAddr, path: &[&str]) -> u64 {
    let (status, body) = http_request(addr, "GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    let v = parse(&body).unwrap();
    let mut cur = &v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("stats lacks {path:?}: {body}"));
    }
    cur.as_u64().unwrap()
}

#[test]
fn http_grid_matches_direct_sweep_and_resubmission_hits_cache() {
    let dir = temp_dir("grid");
    let grid = test_grid();
    let configs = grid.expand();
    let direct = sweep_supervised(&configs, &SweepOptions::default());
    let want: Vec<String> = direct
        .iter()
        .map(|r| r.as_ref().expect("direct run succeeds").digest())
        .collect();

    let (addr, handle) = start_server(&dir, 3);

    // Round 1: everything simulates, digests match the direct sweep.
    let id = submit(addr, &grid);
    let status = poll_done(addr, id);
    assert_eq!(
        status.get("completed").and_then(Json::as_u64),
        Some(configs.len() as u64)
    );
    assert_eq!(status.get("failed").and_then(Json::as_u64), Some(0));
    assert_eq!(result_digests(addr, id, configs.len()), want);
    let sims_first = stats_u64(addr, &["sims_run"]);
    assert_eq!(sims_first, configs.len() as u64);

    // Round 2: identical grid — answered from the cache, zero new sims.
    let id2 = submit(addr, &grid);
    let status2 = poll_done(addr, id2);
    assert_eq!(
        status2.get("cached").and_then(Json::as_u64),
        Some(configs.len() as u64),
        "every slot should be a cache hit: {status2:?}"
    );
    assert_eq!(
        stats_u64(addr, &["sims_run"]),
        sims_first,
        "no new simulations"
    );
    assert!(stats_u64(addr, &["cache", "hits"]) >= configs.len() as u64);
    assert_eq!(result_digests(addr, id2, configs.len()), want);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard counts must not fragment the content-addressed cache: the
/// engine is digest-identical at any shard count, so a grid resubmitted
/// at different `shards` settings is answered entirely from cache. This
/// holds on serial builds too — the normalization is config-level, not
/// engine-level.
#[test]
fn resubmission_at_different_shard_counts_hits_cache() {
    let dir = temp_dir("shards");
    let grid = test_grid();
    let n = grid.expand().len();
    let (addr, handle) = start_server(&dir, 3);

    // Round 1: flat engine, everything simulates.
    let id = submit(addr, &grid);
    poll_done(addr, id);
    let want = result_digests(addr, id, n);
    let sims_first = stats_u64(addr, &["sims_run"]);
    assert_eq!(sims_first, n as u64);

    // Rounds 2..: same grid at different shard (and thread) counts — pure
    // cache hits, zero new simulations, identical results.
    for (shards, threads) in [(2, 1), (4, 2), (8, 1)] {
        let mut regrid = grid.clone();
        regrid.base.shards = shards;
        regrid.base.transfer_threads = threads;
        let id = submit(addr, &regrid);
        let status = poll_done(addr, id);
        assert_eq!(
            status.get("cached").and_then(Json::as_u64),
            Some(n as u64),
            "shards={shards} should be answered from cache: {status:?}"
        );
        assert_eq!(
            stats_u64(addr, &["sims_run"]),
            sims_first,
            "shards={shards} must not run new simulations"
        );
        assert_eq!(result_digests(addr, id, n), want);
    }
    assert!(stats_u64(addr, &["cache", "hits"]) >= 3 * n as u64);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_server_resumes_from_checkpoints_digest_exact() {
    let dir = temp_dir("resume");
    let grid = test_grid();
    let configs = grid.expand();
    let direct = sweep_supervised(&configs, &SweepOptions::default());
    let want: Vec<String> = direct
        .iter()
        .map(|r| r.as_ref().expect("direct run succeeds").digest())
        .collect();

    // Life 1: a single slow worker; shut down as soon as the first result
    // lands, leaving the rest of the queue abandoned (the in-flight unit
    // finishes and checkpoints — that is the graceful contract).
    let (addr, handle) = start_server(&dir, 1);
    let id = submit(addr, &grid);
    let ckpt = dir.join("jobs").join(format!("job-{id}.ckpt.jsonl"));
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let done = std::fs::read_to_string(&ckpt)
            .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
            .unwrap_or(0);
        if done >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint line ever appeared"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    shutdown(addr, handle);

    // Simulate the hard-kill signature on top: tear the final checkpoint
    // line in half (no trailing newline). The torn slot must re-run.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint exists");
    let full_lines = text.lines().filter(|l| !l.trim().is_empty()).count();
    assert!(full_lines >= 1, "shutdown flushed at least one result");
    // Drop the trailing newline and the last 10 bytes of the final line:
    // an unparseable fragment with no newline, exactly what a writer
    // killed mid-append leaves behind.
    let body = text.trim_end();
    std::fs::write(&ckpt, &body[..body.len() - 10]).unwrap();

    // Life 2: recovery re-expands the grid, restores what survived,
    // reruns the rest, and converges to the same digests.
    let (addr2, handle2) = start_server(&dir, 3);
    let status = poll_done(addr2, id);
    assert_eq!(
        status.get("completed").and_then(Json::as_u64),
        Some(configs.len() as u64),
        "resumed job completes every slot: {status:?}"
    );
    let ckpt_report = status
        .get("checkpoint")
        .expect("status carries checkpoint accounting");
    assert_eq!(
        ckpt_report.get("torn_tail").and_then(Json::as_bool),
        Some(true),
        "the torn line must be detected and surfaced: {status:?}"
    );
    assert_eq!(result_digests(addr2, id, configs.len()), want);
    assert!(
        stats_u64(addr2, &["jobs", "resumed"]) >= 1,
        "recovery counts the resumed job"
    );
    shutdown(addr2, handle2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /jobs/:id/results` is valid *while the job runs*: the stream
/// holds only whole verified records and the `X-Job-Complete` header
/// distinguishes a partial snapshot from the final word. `POST
/// /jobs/:id/cancel` settles every not-yet-finished slot terminally.
#[test]
fn partial_results_stream_whole_lines_and_cancel_settles_job() {
    let dir = temp_dir("cancel");
    let grid = test_grid();
    let n = grid.expand().len();
    // One worker: the grid cannot finish before the early requests land.
    let (addr, handle) = start_server(&dir, 1);
    let id = submit(addr, &grid);

    // Early fetch: the job is still running, so the header must say the
    // stream is partial — and every line it does carry parses whole.
    let (status, headers, stream) =
        http_request_full(addr, "GET", &format!("/jobs/{id}/results"), None).expect("results");
    assert_eq!(status, 200);
    let complete = headers
        .iter()
        .find(|(k, _)| k == "x-job-complete")
        .map(|(_, v)| v.as_str());
    assert_eq!(complete, Some("false"), "job cannot be done yet");
    for line in stream.lines().filter(|l| !l.trim().is_empty()) {
        assert!(
            parse(line).is_ok(),
            "partial stream leaked a torn line: {line}"
        );
    }

    let (status, body) =
        http_request(addr, "POST", &format!("/jobs/{id}/cancel"), None).expect("cancel");
    assert_eq!(status, 200, "cancel failed: {body}");
    let v = parse(&body).unwrap();
    assert_eq!(v.get("cancelled").and_then(Json::as_bool), Some(true));

    let status = poll_done(addr, id);
    let completed = status.get("completed").and_then(Json::as_u64).unwrap();
    let cancelled = status.get("cancelled").and_then(Json::as_u64).unwrap();
    assert_eq!(
        completed + cancelled,
        n as u64,
        "every slot settles as completed or cancelled: {status:?}"
    );
    assert!(
        cancelled >= 1,
        "something was actually cancelled: {status:?}"
    );
    assert_eq!(status.get("failed").and_then(Json::as_u64), Some(0));

    // The final stream carries exactly the completed slots' records and
    // declares itself complete.
    let (_, headers, stream) =
        http_request_full(addr, "GET", &format!("/jobs/{id}/results"), None).expect("results");
    let complete = headers
        .iter()
        .find(|(k, _)| k == "x-job-complete")
        .map(|(_, v)| v.as_str());
    assert_eq!(complete, Some("true"));
    let lines = stream.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(
        lines as u64, completed,
        "one result record per completed slot"
    );

    // The durable cancel marker exists — a restarted or sibling server
    // would see the decision.
    assert!(dir
        .join("jobs")
        .join(format!("job-{id}.ckpt.cancel"))
        .exists());

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A grid `timeout_ms` marks overrunning configs `timed_out` — a
/// terminal state that survives a server restart without re-running.
#[test]
fn per_config_timeout_is_terminal_across_restarts() {
    let dir = temp_dir("timeout");
    let mut base = RunConfig::small_default();
    base.warmup = 200;
    base.measure = 50_000; // far more cycles than 1 ms allows
    let grid = SweepGrid {
        base,
        seeds: vec![5],
        loads: vec![0.3],
        timeout_ms: Some(1),
    };

    let (addr, handle) = start_server(&dir, 1);
    let id = submit(addr, &grid);
    let status = poll_done(addr, id);
    assert_eq!(
        status.get("cancelled").and_then(Json::as_u64),
        Some(1),
        "the config must time out: {status:?}"
    );
    let slots = status.get("slots").and_then(Json::as_arr).unwrap();
    assert_eq!(slots[0].as_str(), Some("timed_out"));
    shutdown(addr, handle);

    // Life 2: the timed-out slot is restored from its status record, not
    // re-run — the job is settled immediately.
    let (addr2, handle2) = start_server(&dir, 1);
    let status2 = poll_done(addr2, id);
    let slots2 = status2.get("slots").and_then(Json::as_arr).unwrap();
    assert_eq!(
        slots2[0].as_str(),
        Some("timed_out"),
        "terminal: {status2:?}"
    );
    assert_eq!(stats_u64(addr2, &["sims_run"]), 0, "nothing re-ran");
    shutdown(addr2, handle2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incident_endpoints_serve_stored_incidents() {
    use deadlock_characterization::flexsim::forensics::IncidentStore;
    use deadlock_characterization::flexsim::{run, ForensicsConfig, RoutingSpec, TopologySpec};

    let dir = temp_dir("incidents");

    // Produce a real incident and persist it where the server looks.
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(8, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = 800;
    cfg.forensics = Some(ForensicsConfig::default());
    let res = run(&cfg);
    assert!(
        !res.forensic_incidents.is_empty(),
        "the known-deadlocking config captures an incident"
    );
    let store = IncidentStore::open(dir.join("incidents")).unwrap();
    store.save(&res.forensic_incidents[0]).unwrap();

    let (addr, handle) = start_server(&dir, 1);

    let (status, body) = http_request(addr, "GET", "/incidents", None).unwrap();
    assert_eq!(status, 200);
    let index = parse(&body).unwrap();
    let entries = index.get("incidents").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("file").and_then(Json::as_str),
        Some("incident-00000.json")
    );

    let (status, body) = http_request(addr, "GET", "/incidents/0", None).unwrap();
    assert_eq!(status, 200);
    assert!(parse(&body).is_ok(), "incident record is valid JSON");

    let (status, dot) = http_request(addr, "GET", "/incidents/0/dot", None).unwrap();
    assert_eq!(status, 200);
    assert!(dot.starts_with("digraph"), "DOT rendering served as-is");

    let (status, _) = http_request(addr, "GET", "/incidents/7", None).unwrap();
    assert_eq!(status, 404);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_clean_errors() {
    let dir = temp_dir("errors");
    let (addr, handle) = start_server(&dir, 1);

    let (status, _) = http_request(addr, "GET", "/jobs/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = http_request(addr, "POST", "/jobs", Some("{\"no\":1}")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("error"), "errors are JSON: {body}");
    let (status, _) = http_request(addr, "GET", "/jobs/abc", None).unwrap();
    assert_eq!(status, 400);

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
