//! Incremental every-cycle detection: the event-patched
//! [`DynamicWaitGraph`] kept current from the engine's wait-state stream
//! must be indistinguishable from a fresh snapshot rebuild at **every**
//! cycle — structurally, by fingerprint, and on the knot verdict — on
//! both steppers, through recovery pulls, and across fault transitions.
//! At the run level, [`flexsim::DetectionMode::Incremental`] must produce
//! [`RunResult::digest`]s byte-identical to snapshot mode on every golden
//! regime, under armed fault plans, at every-cycle epochs, and (with the
//! `parallel` feature) on the sharded engine.
//!
//! [`RunResult::digest`]: flexsim::RunResult::digest

use flexsim::experiments::{fig5, fig6, fig7, fig8, Scale};
use flexsim::{build_wait_graph, run, DetectionMode, RunConfig};
use icn_cwg::{DetectorScratch, DynamicWaitGraph};
use icn_sim::{Network, SimConfig, SnapshotArena, WaitUpdate};
use icn_topology::{KAryNCube, NodeId};

/// The saturated (load ≥ 1.0) points of each golden figure — the only
/// regimes with steady deadlock recovery churn.
fn golden_saturated_points() -> Vec<RunConfig> {
    [fig5, fig6, fig7, fig8]
        .iter()
        .flat_map(|f| f(Scale::Small).configs)
        .filter(|c| c.load >= 1.0)
        .collect()
}

/// Steps `net` for `cycles`, keeping an incremental CWG in lockstep and
/// asserting, every single cycle, that it matches a fresh snapshot
/// rebuild: same fingerprint, same records edge-for-edge, same knot
/// deadlock sets. Detected knots are broken with the runner's
/// remove-oldest pull, so recovery transitions are part of the stream.
/// Returns the number of cycles on which a knot was live.
fn lockstep(net: &mut Network, cycles: u64, dense: bool) -> u64 {
    net.enable_wait_tracking();
    let mut dwg = DynamicWaitGraph::new(net.wait_vertex_count());
    let mut arena = SnapshotArena::new();
    let mut scratch = DetectorScratch::new();
    let mut knot_cycles = 0;
    for _ in 0..cycles {
        if dense {
            net.step_reference();
        } else {
            net.step();
        }
        net.drain_wait_updates(|id, up| match up {
            WaitUpdate::Blocked { chain, requests } => dwg.stage_blocked(id, chain, requests),
            WaitUpdate::Clear => dwg.stage_clear(id),
        });
        dwg.commit();
        dwg.check_invariants();
        // Reduction verdict first, before anything refreshes the exact
        // sets cache — the two detection paths must agree independently.
        let live = dwg.has_knot();

        net.wait_snapshot_into(&mut arena);
        assert_eq!(
            dwg.fingerprint(),
            arena.fingerprint(),
            "fingerprint diverged at cycle {}",
            net.cycle()
        );
        let full = build_wait_graph(&arena.to_snapshot());
        let diff = dwg.diff_against_snapshot(&full);
        assert!(
            diff.is_empty(),
            "cycle {}: incremental CWG diverged: {diff:?}",
            net.cycle()
        );

        let mut want: Vec<Vec<u64>> = full.knot_deadlock_sets(&mut scratch);
        want.sort();
        let mut got: Vec<Vec<u64>> = dwg.knot_deadlock_sets().to_vec();
        got.sort();
        assert_eq!(got, want, "knot sets diverged at cycle {}", net.cycle());
        assert_eq!(
            live,
            !got.is_empty(),
            "reduction verdict diverged at cycle {}",
            net.cycle()
        );

        if !got.is_empty() {
            knot_cycles += 1;
            // Break one knot per cycle, oldest member first — recovery
            // wake chains are the hardest part of the event stream.
            let victim = *got[0].iter().min().unwrap();
            assert!(net.start_recovery(victim));
        }
    }
    knot_cycles
}

/// A saturated 4-ary 2-cube under unrestricted DOR: random traffic until
/// knots form, recovered as they appear, lockstep-checked every cycle.
fn saturated_net(bidirectional: bool) -> Network {
    let mut net = Network::new(
        KAryNCube::torus(4, 2, bidirectional),
        Box::new(icn_routing::Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    // Deterministic all-pairs-ish load: enough to wedge a 1-VC torus.
    let n = net.topology().num_nodes() as u32;
    for round in 0..6 {
        for src in 0..n {
            let dst = (src + 1 + (round * 5) % (n - 1)) % n;
            net.enqueue(NodeId(src), NodeId(dst));
        }
    }
    net
}

#[test]
fn lockstep_every_cycle_activity_stepper() {
    let mut net = saturated_net(false);
    let knots = lockstep(&mut net, 600, false);
    assert!(knots > 0, "regime must actually deadlock to prove anything");
}

#[test]
fn lockstep_every_cycle_dense_stepper() {
    let mut net = saturated_net(false);
    let knots = lockstep(&mut net, 600, true);
    assert!(knots > 0, "regime must actually deadlock to prove anything");
}

/// Fault transitions rewrite candidate sets wholesale (`wait_dirty_all`);
/// the lockstep must survive link outages going down *and* back up.
#[test]
fn lockstep_across_fault_transitions() {
    let mut net = saturated_net(true);
    let mut plan = icn_sim::FaultPlan::new();
    plan.link_outage(3, 60, 180)
        .link_outage(11, 120, 240)
        .node_stall(90, 5, 50);
    net.set_fault_plan(&plan);
    lockstep(&mut net, 400, false);
}

#[test]
fn incremental_digest_matches_snapshot_on_goldens() {
    let points = golden_saturated_points();
    assert!(
        points.len() >= 4,
        "expected saturated points in every golden"
    );
    for base in points {
        let mut snap = base.clone();
        snap.detection = DetectionMode::Snapshot;
        let want = run(&snap).digest();
        let mut inc = base.clone();
        inc.detection = DetectionMode::Incremental;
        assert_eq!(
            run(&inc).digest(),
            want,
            "incremental digest diverged for {}",
            inc.label()
        );
    }
}

/// Armed fault plans force the serial scheduler and rewrite wait records
/// at link transitions; both modes must still agree byte-for-byte.
#[test]
fn incremental_digest_matches_snapshot_under_faults() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = 1.0;
    cfg.faults = flexsim::faults::random_plan(&cfg.topology, 1_000, 17);
    let want = run(&cfg).digest();
    cfg.detection = DetectionMode::Incremental;
    assert_eq!(run(&cfg).digest(), want);
}

/// `detection_interval = 1` makes every cycle an epoch: incremental mode
/// then cross-checks its fingerprint against a fresh capture each cycle
/// (a debug assertion inside the runner), and the digests must agree with
/// the fingerprint fast path disabled too.
#[test]
fn every_cycle_epochs_agree_with_and_without_skip() {
    let mut cfg = RunConfig::small_default();
    cfg.topology = flexsim::TopologySpec::torus(4, 2, false);
    cfg.sim.vcs_per_channel = 1;
    cfg.warmup = 100;
    cfg.measure = 400;
    cfg.load = 1.0;
    cfg.detection_interval = 1;
    let want = run(&cfg).digest();
    cfg.detection = DetectionMode::Incremental;
    assert_eq!(run(&cfg).digest(), want);
    cfg.fingerprint_skip = false;
    cfg.detection = DetectionMode::Snapshot;
    let strict = run(&cfg).digest();
    cfg.detection = DetectionMode::Incremental;
    assert_eq!(run(&cfg).digest(), strict);
    assert_eq!(strict, want, "fingerprint skip must be exact");
}

/// Forensic capture rides on the same epochs; formation cycles recorded
/// in incidents must be identical in both modes, and never after the
/// detection cycle.
#[test]
fn formation_cycles_are_identical_and_causal() {
    let mut cfg = RunConfig::small_default();
    cfg.topology = flexsim::TopologySpec::torus(8, 2, false);
    cfg.sim.vcs_per_channel = 1;
    cfg.warmup = 200;
    cfg.measure = 1_000;
    cfg.load = 1.0;
    cfg.forensics = Some(flexsim::ForensicsConfig::default());
    let snap = run(&cfg);
    assert!(snap.deadlocks > 0, "need knots for formation coverage");
    cfg.detection = DetectionMode::Incremental;
    let inc = run(&cfg);
    assert_eq!(inc.digest(), snap.digest());
    for (a, b) in snap.incidents.iter().zip(inc.incidents.iter()) {
        assert_eq!(a.formation_cycle, b.formation_cycle);
        assert!(a.formation_cycle <= a.cycle);
    }
    // Snapshot mode's detection lag is bounded by the epoch interval.
    assert!(snap.detection_lag.count() > 0);
    assert!(snap.detection_lag.max() <= cfg.detection_interval);
    for (a, b) in snap
        .forensic_incidents
        .iter()
        .zip(inc.forensic_incidents.iter())
    {
        assert_eq!(a.formation_cycle, b.formation_cycle);
    }
}

#[cfg(feature = "parallel")]
mod sharded {
    use super::*;

    /// Sharded stepping allocates serially at the cycle barrier, so the
    /// one global dirty list feeds the same incremental stream; digests
    /// must match the flat snapshot engine at 4 shards.
    #[test]
    fn incremental_is_digest_identical_at_four_shards() {
        let mut points = golden_saturated_points();
        points.truncate(2);
        for base in points {
            let mut flat = base.clone();
            flat.shards = 1;
            flat.detection = DetectionMode::Snapshot;
            let want = run(&flat).digest();
            let mut inc = base.clone();
            inc.shards = 4;
            inc.detection = DetectionMode::Incremental;
            assert_eq!(
                run(&inc).digest(),
                want,
                "sharded incremental diverged for {}",
                inc.label()
            );
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Randomized configurations (the validation campaign's
        /// generator) are digest-invariant across detection modes.
        #[test]
        fn random_configs_are_detection_mode_invariant(seed in any::<u64>()) {
            let mut cfg = flexsim::validate::random_config(seed);
            cfg.warmup = 150;
            cfg.measure = 450;
            cfg.detection = DetectionMode::Snapshot;
            let want = run(&cfg).digest();
            cfg.detection = DetectionMode::Incremental;
            prop_assert_eq!(run(&cfg).digest(), want);
        }
    }
}
