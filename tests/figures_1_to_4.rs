//! The paper's §2 worked examples, reconstructed as channel wait-for
//! graphs and fed through the knot detector.
//!
//! * Figure 1 — single-cycle deadlock under DOR with 1 VC.
//! * Figure 2 — single-cycle deadlock under minimal adaptive routing with
//!   1 VC (exhausted adaptivity) plus a *dependent* message.
//! * Figure 3 — multi-cycle deadlock under minimal adaptive routing with
//!   2 VCs (the OCR of the paper does not preserve the exact arc wiring,
//!   so an equivalent 8-message / 16-VC / knot-of-8 construction is used).
//! * Figure 4 — cyclic non-deadlock: same shape, but one message can
//!   escape, so cycles exist without a knot.

use icn_cwg::{CycleCount, DeadlockKind, DependentKind, WaitGraph};

/// Figure 1: five messages routed in dimension order on a torus with one
/// VC. m1 owns {c1,c2} and wants c3; m2 owns {c3,c4,c5} and wants c6;
/// m3 owns {c6,c7,c0} and wants c1; m4 and m5 have acquired everything
/// they need (moving).
fn figure1() -> WaitGraph {
    let mut g = WaitGraph::new(10);
    g.add_chain(1, &[1, 2]);
    g.add_chain(2, &[3, 4, 5]);
    g.add_chain(3, &[6, 7, 0]);
    g.add_chain(4, &[8]); // moving: no requests
    g.add_chain(5, &[9]); // moving: no requests
    g.add_requests(1, &[3]);
    g.add_requests(2, &[6]);
    g.add_requests(3, &[1]);
    g
}

#[test]
fn figure1_single_cycle_deadlock() {
    let a = figure1().analyze(1_000);
    assert_eq!(a.deadlocks.len(), 1, "exactly one deadlock");
    let d = &a.deadlocks[0];
    // "a single cycle ... consisting of vertices 0..7" forming a knot.
    assert_eq!(d.knot, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    // "involves 3 messages in its deadlock set"
    assert_eq!(d.deadlock_set, vec![1, 2, 3]);
    // "occupies 8 channels in its resource set"
    assert_eq!(d.resource_set.len(), 8);
    // "has a knot cycle density of one cycle"
    assert_eq!(d.cycle_density, CycleCount::Exact(1));
    assert_eq!(d.kind(), DeadlockKind::SingleCycle);
    // m4 and m5 are unaffected (not even dependent).
    assert!(a.dependent.is_empty());
}

/// Figure 2: minimal adaptive routing with one VC; m1..m4 have exhausted
/// their adaptivity and each waits for the single channel needed to reach
/// its destination, all owned within the group. m5 owns {c8,c9} and waits
/// for a VC owned by m2 — a dependent message, not a deadlock-set member.
///
/// Knot = {1,3,5,7}: each message's *head* VC; the tails {0,2,4,6} are
/// upstream of the knot.
fn figure2() -> WaitGraph {
    let mut g = WaitGraph::new(10);
    g.add_chain(1, &[0, 1]);
    g.add_chain(2, &[2, 3]);
    g.add_chain(3, &[4, 5]);
    g.add_chain(4, &[6, 7]);
    g.add_chain(5, &[8, 9]);
    g.add_requests(1, &[3]);
    g.add_requests(2, &[5]);
    g.add_requests(3, &[7]);
    g.add_requests(4, &[1]);
    g.add_requests(5, &[2]); // waits on m2's owned VC: dependent
    g
}

#[test]
fn figure2_single_cycle_deadlock_with_dependent_message() {
    let a = figure2().analyze(1_000);
    assert_eq!(a.deadlocks.len(), 1);
    let d = &a.deadlocks[0];
    // "the vertices in this cycle form a knot, R = {1,3,5,7}"
    assert_eq!(d.knot, vec![1, 3, 5, 7]);
    // "its deadlock set contains 4 messages"
    assert_eq!(d.deadlock_set, vec![1, 2, 3, 4]);
    // "its resource set includes 8 channels"
    assert_eq!(d.resource_set, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    // "with a knot cycle density of one, this too is a single-cycle deadlock"
    assert_eq!(d.kind(), DeadlockKind::SingleCycle);
    // "message m5 ... is not considered to be in the deadlock set"; its
    // only request leads into the knot => committed dependent.
    assert_eq!(a.dependent, vec![(5, DependentKind::Committed)]);
}

/// Figure-3-equivalent: 8 messages, 2 VCs per physical channel, 16 VCs.
/// Messages are paired per channel; each blocked head waits for *both*
/// VCs of the next channel around a ring of four channels (fan-out 2),
/// all owned within the group.
fn figure3() -> WaitGraph {
    let mut g = WaitGraph::new(16);
    // Message i (1-based) owns [2(i-1), 2(i-1)+1]; the head (odd vertex)
    // is one VC of physical channel (i-1)/2.
    for i in 0..8u64 {
        g.add_chain(i + 1, &[(2 * i) as u32, (2 * i + 1) as u32]);
    }
    // Channel c's two head VCs are vertices 4c+1 and 4c+3. Messages on
    // channel c wait for both head VCs of channel (c+1) % 4.
    for i in 0..8u64 {
        let c = i / 2;
        let next = (c + 1) % 4;
        g.add_requests(i + 1, &[(4 * next + 1) as u32, (4 * next + 3) as u32]);
    }
    g
}

#[test]
fn figure3_multi_cycle_deadlock() {
    let a = figure3().analyze(10_000);
    assert_eq!(a.deadlocks.len(), 1);
    let d = &a.deadlocks[0];
    // "The set of all vertices involved ... {1,3,5,7,9,11,13,15} meets the
    // requirement for a knot."
    assert_eq!(d.knot, vec![1, 3, 5, 7, 9, 11, 13, 15]);
    // "its deadlock set has 8 messages"
    assert_eq!(d.deadlock_set.len(), 8);
    // "its resource set has 16 VCs"
    assert_eq!(d.resource_set.len(), 16);
    // multi-cycle: more than one elementary cycle in the knot.
    assert!(d.cycle_density.value() > 1);
    assert_eq!(d.kind(), DeadlockKind::MultiCycle);
}

/// Figure 4: the same shape as Figure 3 except one message's destination
/// changed so it "may eventually reach its destination and subsequently
/// release" its VC: its requests point to a *free* VC as well, giving the
/// group an escape. Cycles exist, but no knot — a cyclic non-deadlock.
fn figure4() -> WaitGraph {
    let mut g = WaitGraph::new(18);
    for i in 0..8u64 {
        g.add_chain(i + 1, &[(2 * i) as u32, (2 * i + 1) as u32]);
    }
    for i in 0..8u64 {
        let c = i / 2;
        let next = (c + 1) % 4;
        if i == 0 {
            // m1 can also take a free VC (vertex 16): the escape.
            g.add_requests(i + 1, &[(4 * next + 1) as u32, 16]);
        } else {
            g.add_requests(i + 1, &[(4 * next + 1) as u32, (4 * next + 3) as u32]);
        }
    }
    g
}

#[test]
fn figure4_cyclic_non_deadlock() {
    let g = figure4();
    let a = g.analyze(10_000);
    // "This set (or any subset thereof) does not meet the conditions for a
    // knot; therefore, there is no deadlock in this network."
    assert!(!a.has_deadlock());
    // "There are 8 unique cycles in the CWG" — cycles exist without a
    // knot, confirming "cycles are necessary but not sufficient".
    let cycles = g.count_cycles(10_000);
    assert!(
        cycles.value() > 1,
        "cyclic non-deadlock has cycles: {cycles}"
    );
    assert!(!cycles.is_capped());
}

#[test]
fn figure4_escape_vertex_is_the_difference() {
    // Removing the escape restores the Figure 3 deadlock: the knot
    // condition is exactly the absence of an escape resource.
    let with_escape = figure4().analyze(10_000);
    let without_escape = figure3().analyze(10_000);
    assert!(!with_escape.has_deadlock());
    assert!(without_escape.has_deadlock());
}

#[test]
fn figure2_recovery_semantics() {
    // Removing a deadlock-set member's requests (victim recovery) breaks
    // the knot; removing the dependent message's requests does not.
    let mut g = WaitGraph::new(10);
    g.add_chain(1, &[0, 1]);
    g.add_chain(2, &[2, 3]);
    g.add_chain(3, &[4, 5]);
    g.add_chain(4, &[6, 7]);
    g.add_chain(5, &[8, 9]);
    // victim m1 recovering: no requests for it.
    g.add_requests(2, &[5]);
    g.add_requests(3, &[7]);
    g.add_requests(4, &[1]);
    g.add_requests(5, &[2]);
    assert!(!g.analyze(1_000).has_deadlock(), "victim removal resolves");

    let mut g2 = WaitGraph::new(10);
    g2.add_chain(1, &[0, 1]);
    g2.add_chain(2, &[2, 3]);
    g2.add_chain(3, &[4, 5]);
    g2.add_chain(4, &[6, 7]);
    g2.add_chain(5, &[8, 9]);
    g2.add_requests(1, &[3]);
    g2.add_requests(2, &[5]);
    g2.add_requests(3, &[7]);
    g2.add_requests(4, &[1]);
    // dependent m5 recovering instead: deadlock remains.
    assert!(
        g2.analyze(1_000).has_deadlock(),
        "removing a dependent message must NOT resolve the deadlock"
    );
}
