//! Proof that the steady-state detection epoch performs zero heap
//! allocations: snapshot fill, wait-graph rebuild, and knot analysis all
//! run in caller-owned storage once capacities have warmed up.
//!
//! A counting global allocator tallies every alloc/realloc made by the
//! test's own thread. The counter is thread-local so that allocations the
//! libtest harness makes concurrently (channels, timing, output) cannot
//! pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use icn_cwg::{DetectorScratch, WaitGraph};
use icn_routing::Dor;
use icn_sim::{Network, SimConfig, SnapshotArena};
use icn_topology::{KAryNCube, NodeId};

struct CountingAlloc;

thread_local! {
    // `const` init: no lazy-init allocation, safe inside the allocator.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

/// The runner's per-epoch rebuild, spelled out over the public API.
fn rebuild(arena: &SnapshotArena, g: &mut WaitGraph) {
    g.reset(arena.num_vertices());
    for m in arena.messages() {
        g.add_chain(m.id, m.chain);
    }
    for m in arena.messages() {
        if !m.requests.is_empty() {
            g.add_requests(m.id, m.requests);
        }
    }
}

#[test]
fn steady_state_detection_epoch_allocates_nothing() {
    // --- Scenario 1: moving traffic only (the runner's blocked==0 skip:
    // just the snapshot fill, no graph, no analysis). ---
    let mut net = Network::new(
        KAryNCube::torus(8, 1, true),
        Box::new(Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 16,
        },
    );
    // Disjoint single-hop routes: long messages stay in flight without
    // ever contending for a channel.
    for i in [0u32, 2, 4, 6] {
        net.enqueue(NodeId(i), NodeId(i + 1));
    }
    for _ in 0..6 {
        net.step();
    }
    assert!(net.in_network() > 0, "messages must be in flight");
    assert_eq!(net.blocked_count(), 0, "forward traffic must not block");

    let mut arena = SnapshotArena::new();
    // Warm-up: first fills size the arena pools.
    for _ in 0..3 {
        net.wait_snapshot_into(&mut arena);
    }
    let snap_allocs = allocations(|| {
        for _ in 0..100 {
            net.wait_snapshot_into(&mut arena);
        }
    });
    assert_eq!(
        snap_allocs, 0,
        "snapshot fill must not allocate in steady state"
    );

    // --- Scenario 2: blocked messages but no knot (the runner's full path:
    // snapshot, in-place graph rebuild, knot analysis — all clean). ---
    let mut net = Network::new(
        KAryNCube::torus(8, 1, false),
        Box::new(Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 24,
        },
    );
    // A long leader and trailing messages that block behind it while it
    // still moves: dashed arcs exist, but every wait chain drains.
    net.enqueue(NodeId(0), NodeId(5));
    for _ in 0..4 {
        net.step();
    }
    net.enqueue(NodeId(1), NodeId(6));
    net.enqueue(NodeId(2), NodeId(7));
    let mut steps = 0;
    while net.blocked_count() == 0 && steps < 50 {
        net.step();
        steps += 1;
    }
    assert!(net.blocked_count() > 0, "trailing messages must block");

    let mut graph = WaitGraph::new(0);
    let mut scratch = DetectorScratch::new();
    net.wait_snapshot_into(&mut arena);
    rebuild(&arena, &mut graph);
    let warm = graph.analyze_with(2_000, &mut scratch);
    assert!(
        !warm.has_deadlock(),
        "scenario must be blocked-but-clean, got a knot"
    );
    // Two more warm-up rounds so every pool reaches steady capacity.
    for _ in 0..2 {
        net.wait_snapshot_into(&mut arena);
        rebuild(&arena, &mut graph);
        let _ = graph.analyze_with(2_000, &mut scratch);
    }

    let epoch_allocs = allocations(|| {
        for _ in 0..100 {
            net.wait_snapshot_into(&mut arena);
            rebuild(&arena, &mut graph);
            let a = graph.analyze_with(2_000, &mut scratch);
            assert!(!a.has_deadlock());
        }
    });
    assert_eq!(
        epoch_allocs, 0,
        "clean detection epoch must not allocate in steady state"
    );
}
