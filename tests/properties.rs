//! Property-based tests over the detector and the engine.

use std::collections::HashSet;

use icn_cwg::WaitGraph;
use icn_routing::{DatelineDor, Dor, DuatoFar, RoutingAlgorithm, Tfar, WestFirst};
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use proptest::prelude::*;

/// A randomly generated wait-for snapshot: vertex count, ownership chains,
/// and per-message requests.
#[derive(Clone, Debug)]
struct RandomCwg {
    n: usize,
    chains: Vec<Vec<u32>>,
    requests: Vec<Vec<u32>>, // parallel to chains; empty = not blocked
}

fn random_cwg() -> impl Strategy<Value = RandomCwg> {
    (6usize..40, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic pseudo-random construction from the seed.
        let mut state = seed | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut free: Vec<u32> = (0..n as u32).collect();
        let mut chains = Vec::new();
        let mut requests = Vec::new();
        while free.len() > 2 && chains.len() < n / 2 {
            let len = 1 + next(3.min(free.len() - 1));
            let chain: Vec<u32> = (0..len)
                .map(|_| {
                    let i = next(free.len());
                    free.swap_remove(i)
                })
                .collect();
            chains.push(chain);
            requests.push(Vec::new());
        }
        for i in 0..chains.len() {
            if next(4) == 0 {
                continue; // moving message
            }
            let own: HashSet<u32> = chains[i].iter().copied().collect();
            let mut req = Vec::new();
            for _ in 0..(1 + next(3)) {
                let t = next(n) as u32;
                if !own.contains(&t) && !req.contains(&t) {
                    req.push(t);
                }
            }
            requests[i] = req;
        }
        RandomCwg {
            n,
            chains,
            requests,
        }
    })
}

fn build(g: &RandomCwg) -> WaitGraph {
    let mut wg = WaitGraph::new(g.n);
    for (i, chain) in g.chains.iter().enumerate() {
        wg.add_chain(i as u64 + 1, chain);
    }
    for (i, req) in g.requests.iter().enumerate() {
        if !req.is_empty() {
            wg.add_requests(i as u64 + 1, req);
        }
    }
    wg
}

/// Brute-force reachability: adjacency from chains + requests.
fn adjacency(g: &RandomCwg) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); g.n];
    for (i, chain) in g.chains.iter().enumerate() {
        for w in chain.windows(2) {
            adj[w[0] as usize].push(w[1]);
        }
        if !g.requests[i].is_empty() {
            let head = *chain.last().unwrap();
            for &t in &g.requests[i] {
                adj[head as usize].push(t);
            }
        }
    }
    adj
}

fn reach(adj: &[Vec<u32>], v: u32) -> HashSet<u32> {
    let mut seen = HashSet::new();
    let mut stack: Vec<u32> = adj[v as usize].clone();
    while let Some(w) = stack.pop() {
        if seen.insert(w) {
            stack.extend(adj[w as usize].iter().copied());
        }
    }
    seen
}

/// Brute-force knot membership: v is in a knot iff v can reach itself and
/// every reachable vertex has exactly the same reachable set.
fn brute_force_knot_vertices(adj: &[Vec<u32>]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for v in 0..adj.len() as u32 {
        let r = reach(adj, v);
        if !r.contains(&v) {
            continue;
        }
        if r.iter().all(|&w| reach(adj, w) == r) {
            out.insert(v);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The analyzer's knots agree exactly with the definitional
    /// (reachability-based) knot computation.
    #[test]
    fn knots_match_brute_force(g in random_cwg()) {
        let wg = build(&g);
        let analysis = wg.analyze(100_000);
        let detected: HashSet<u32> = analysis
            .deadlocks
            .iter()
            .flat_map(|d| d.knot.iter().copied())
            .collect();
        let expected = brute_force_knot_vertices(&adjacency(&g));
        prop_assert_eq!(detected, expected);
    }

    /// Deadlock sets contain only blocked messages owning knot vertices,
    /// and resource sets are exactly the union of their chains.
    #[test]
    fn deadlock_sets_are_consistent(g in random_cwg()) {
        let wg = build(&g);
        let analysis = wg.analyze(100_000);
        for d in &analysis.deadlocks {
            prop_assert!(!d.deadlock_set.is_empty());
            prop_assert!(d.cycle_density.value() >= 1);
            let expect_resources: HashSet<u32> = d
                .deadlock_set
                .iter()
                .flat_map(|m| wg.chain(*m).unwrap().iter().copied())
                .collect();
            let got: HashSet<u32> = d.resource_set.iter().copied().collect();
            prop_assert_eq!(got, expect_resources);
            // Every knot vertex is owned by a deadlock-set message.
            for &v in &d.knot {
                let owner = wg.owner(v).expect("knot vertices are owned");
                prop_assert!(d.deadlock_set.contains(&owner));
            }
            // Deadlock-set messages are blocked (they have requests).
            for m in &d.deadlock_set {
                prop_assert!(wg.requests_of(*m).is_some());
            }
        }
        // Dependent messages are disjoint from every deadlock set.
        let all_deadlocked: HashSet<u64> = analysis
            .deadlocks
            .iter()
            .flat_map(|d| d.deadlock_set.iter().copied())
            .collect();
        for (m, _) in &analysis.dependent {
            prop_assert!(!all_deadlocked.contains(m));
        }
    }

    /// Engine invariants hold for arbitrary configurations and traffic.
    #[test]
    fn engine_invariants_hold(
        k in 3u16..6,
        n in 1usize..3,
        vcs in 1usize..4,
        depth in 1usize..9,
        msg_len in 1usize..12,
        bidir in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let topo = KAryNCube::torus(k, n, bidir);
        let nodes = topo.num_nodes() as u32;
        let mut net = Network::new(
            topo,
            Box::new(Tfar),
            SimConfig { vcs_per_channel: vcs, buffer_depth: depth, msg_len },
        );
        let mut state = seed | 1;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        for cycle in 0..400u32 {
            if next(3) == 0 {
                let s = next(nodes);
                let d = (s + 1 + next(nodes - 1)) % nodes;
                net.enqueue(NodeId(s), NodeId(d));
            }
            net.step();
            if cycle.is_multiple_of(40) {
                net.check_invariants();
            }
        }
        net.check_invariants();
        let (generated, injected, delivered, _) = net.totals();
        prop_assert!(injected <= generated);
        prop_assert!(delivered as usize + net.in_network() + net.source_queued() == generated as usize);
    }

    /// Avoidance-based routing relations never produce a knot, under any
    /// traffic the generator throws at them.
    #[test]
    fn avoidance_algorithms_never_knot(seed in any::<u64>(), algo_pick in 0usize..3) {
        let (topo, algo): (KAryNCube, Box<dyn RoutingAlgorithm>) = match algo_pick {
            0 => (KAryNCube::torus(4, 2, true), Box::new(DatelineDor)),
            1 => (KAryNCube::torus(4, 2, true), Box::new(DuatoFar)),
            _ => (KAryNCube::mesh(4, 2), Box::new(WestFirst)),
        };
        let vcs = algo.min_vcs().max(1);
        let nodes = topo.num_nodes() as u32;
        let mut net = Network::new(
            topo,
            algo,
            SimConfig { vcs_per_channel: vcs, buffer_depth: 2, msg_len: 6 },
        );
        let mut state = seed | 1;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        for cycle in 0..600u32 {
            // heavy traffic: try to wedge it
            let s = next(nodes);
            let d = (s + 1 + next(nodes - 1)) % nodes;
            net.enqueue(NodeId(s), NodeId(d));
            net.step();
            if cycle.is_multiple_of(50) {
                let snap = net.wait_snapshot();
                let g = flexsim::build_wait_graph(&snap);
                let analysis = g.analyze(10_000);
                prop_assert!(!analysis.has_deadlock(), "avoidance produced a knot");
            }
        }
    }

    /// Unrestricted routing + detection + recovery always drains the
    /// network once injection stops (recovery-based liveness).
    #[test]
    fn recovery_drains_everything(seed in any::<u64>(), dor in any::<bool>()) {
        let topo = KAryNCube::torus(4, 2, false);
        let algo: Box<dyn RoutingAlgorithm> = if dor { Box::new(Dor) } else { Box::new(Tfar) };
        let nodes = topo.num_nodes() as u32;
        let mut net = Network::new(
            topo,
            algo,
            SimConfig { vcs_per_channel: 1, buffer_depth: 2, msg_len: 8 },
        );
        let mut state = seed | 1;
        let mut next = move |m: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as u32) % m
        };
        // Slam the network, then stop injecting and let detection+recovery
        // drain it.
        for _ in 0..300u32 {
            let s = next(nodes);
            let d = (s + 1 + next(nodes - 1)) % nodes;
            net.enqueue(NodeId(s), NodeId(d));
            net.step();
        }
        let mut cycles = 0u32;
        while (net.in_network() > 0 || net.source_queued() > 0) && cycles < 60_000 {
            net.step();
            cycles += 1;
            if net.cycle().is_multiple_of(50) {
                let snap = net.wait_snapshot();
                let analysis = flexsim::build_wait_graph(&snap).analyze(2_000);
                for d in &analysis.deadlocks {
                    let victim = *d.deadlock_set.iter().min().unwrap();
                    net.start_recovery(victim);
                }
            }
        }
        prop_assert_eq!(net.in_network(), 0, "network failed to drain");
        prop_assert_eq!(net.source_queued(), 0);
        let (generated, _, delivered, _) = net.totals();
        prop_assert_eq!(generated, delivered);
    }
}
