//! End-to-end reproduction smoke tests: run scaled-down versions of every
//! experiment in the paper's evaluation section, assert the robust
//! qualitative claims (the full-strength claims are checked at paper scale
//! by the `repro` binary; see EXPERIMENTS.md), and pin Figures 5–8 to
//! committed golden files.
//!
//! # Golden regeneration
//!
//! The figure goldens live in `tests/goldens/fig{5,6,7,8}.json`: one entry
//! per simulation point with the run's byte-exact digest and its key
//! metrics. Comparisons assert the digest exactly and every key metric
//! within a ±5% band, so any intentional engine/detector change must
//! regenerate them — deliberately, via
//!
//! ```text
//! REPRO_BLESS=1 cargo test --test experiments_small
//! ```
//!
//! and the resulting diff reviewed alongside the change that caused it.

use flexsim::experiments::{self, Experiment, Scale, ShapeCheck};
use flexsim::{sweep, RunConfig, RunResult};

mod golden {
    use flexsim::RunResult;
    use icn_cwg::jsonio::{obj, parse, Json};

    /// Relative tolerance band for key metrics.
    pub const REL_TOL: f64 = 0.05;
    /// Absolute floor so zero-valued goldens accept exact zeros only
    /// modulo rounding noise.
    pub const ABS_FLOOR: f64 = 1e-9;

    /// One simulation point's pinned outcome.
    #[derive(Clone, Debug)]
    pub struct Entry {
        pub label: String,
        pub digest: String,
        pub normalized_deadlocks: f64,
        pub accepted_load: f64,
        pub avg_latency: f64,
        pub deadlocks: u64,
        pub delivered: u64,
    }

    pub fn entry_of(r: &RunResult) -> Entry {
        Entry {
            label: r.label.clone(),
            digest: r.digest(),
            normalized_deadlocks: r.normalized_deadlocks(),
            accepted_load: r.accepted_load(),
            avg_latency: r.avg_latency(),
            deadlocks: r.deadlocks,
            delivered: r.delivered,
        }
    }

    pub fn to_json(id: &str, entries: &[Entry]) -> String {
        let rows: Vec<Json> = entries
            .iter()
            .map(|e| {
                obj(vec![
                    ("label", Json::Str(e.label.clone())),
                    ("digest", Json::Str(e.digest.clone())),
                    ("normalized_deadlocks", Json::F64(e.normalized_deadlocks)),
                    ("accepted_load", Json::F64(e.accepted_load)),
                    ("avg_latency", Json::F64(e.avg_latency)),
                    ("deadlocks", Json::U64(e.deadlocks)),
                    ("delivered", Json::U64(e.delivered)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", Json::Str(id.to_string())),
            ("entries", Json::Arr(rows)),
        ])
        .to_string()
    }

    pub fn from_json(text: &str) -> Vec<Entry> {
        let v = parse(text).expect("golden file must be valid JSON");
        let arr = v
            .get("entries")
            .and_then(Json::as_arr)
            .expect("golden file lacks `entries`");
        arr.iter()
            .map(|e| {
                let s = |k: &str| {
                    e.get(k)
                        .and_then(Json::as_str)
                        .unwrap_or_else(|| panic!("golden entry lacks `{k}`"))
                        .to_string()
                };
                let f = |k: &str| {
                    e.get(k)
                        .and_then(Json::as_f64)
                        .unwrap_or_else(|| panic!("golden entry lacks `{k}`"))
                };
                let u = |k: &str| {
                    e.get(k)
                        .and_then(Json::as_u64)
                        .unwrap_or_else(|| panic!("golden entry lacks `{k}`"))
                };
                Entry {
                    label: s("label"),
                    digest: s("digest"),
                    normalized_deadlocks: f("normalized_deadlocks"),
                    accepted_load: f("accepted_load"),
                    avg_latency: f("avg_latency"),
                    deadlocks: u("deadlocks"),
                    delivered: u("delivered"),
                }
            })
            .collect()
    }

    fn in_band(golden: f64, measured: f64) -> bool {
        (measured - golden).abs() <= ABS_FLOOR + REL_TOL * golden.abs()
    }

    /// Compares measured results against a golden; returns every failure.
    pub fn compare(golden: &[Entry], results: &[RunResult]) -> Vec<String> {
        let mut out = Vec::new();
        if golden.len() != results.len() {
            out.push(format!(
                "entry count: golden {} vs measured {}",
                golden.len(),
                results.len()
            ));
            return out;
        }
        for (g, r) in golden.iter().zip(results) {
            let m = entry_of(r);
            if g.label != m.label {
                out.push(format!(
                    "label: golden `{}` vs measured `{}`",
                    g.label, m.label
                ));
                continue;
            }
            if g.digest != m.digest {
                out.push(format!("{}: digest drifted", g.label));
            }
            for (name, gv, mv) in [
                (
                    "normalized_deadlocks",
                    g.normalized_deadlocks,
                    m.normalized_deadlocks,
                ),
                ("accepted_load", g.accepted_load, m.accepted_load),
                ("avg_latency", g.avg_latency, m.avg_latency),
                ("deadlocks", g.deadlocks as f64, m.deadlocks as f64),
                ("delivered", g.delivered as f64, m.delivered as f64),
            ] {
                if !in_band(gv, mv) {
                    out.push(format!(
                        "{}: {name} out of band: golden {gv} measured {mv}",
                        g.label
                    ));
                }
            }
        }
        out
    }

    /// Asserts `results` against `tests/goldens/<id>.json`, or rewrites
    /// that file when `REPRO_BLESS` is set.
    pub fn check_or_bless(id: &str, results: &[RunResult]) {
        let path = format!("{}/tests/goldens/{id}.json", env!("CARGO_MANIFEST_DIR"));
        let entries: Vec<Entry> = results.iter().map(entry_of).collect();
        if std::env::var_os("REPRO_BLESS").is_some() {
            std::fs::create_dir_all(format!("{}/tests/goldens", env!("CARGO_MANIFEST_DIR")))
                .expect("create goldens dir");
            std::fs::write(&path, to_json(id, &entries)).expect("write golden");
            eprintln!("blessed {path}");
            return;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("cannot read golden `{path}` ({e}); run REPRO_BLESS=1 to create it")
        });
        let failures = compare(&from_json(&text), results);
        assert!(
            failures.is_empty(),
            "golden `{id}` mismatch (REPRO_BLESS=1 regenerates after intended changes):\n  {}",
            failures.join("\n  ")
        );
    }
}

/// Shrinks an experiment so the whole suite stays test-suite fast:
/// shorter windows and a subsampled load sweep.
fn shrink(mut exp: Experiment, loads: &[f64]) -> Experiment {
    exp.configs
        .retain(|c| loads.iter().any(|&l| (c.load - l).abs() < 1e-9));
    for c in &mut exp.configs {
        c.warmup = 500;
        c.measure = 2_500;
    }
    exp
}

fn run_exp(exp: &Experiment) -> Vec<RunResult> {
    sweep(&exp.configs)
}

fn assert_checks(exp: &Experiment, results: &[RunResult], claims: &[&str]) {
    let checks: Vec<ShapeCheck> = experiments::shape_checks(exp, results);
    for claim in claims {
        let c = checks
            .iter()
            .find(|c| c.claim.contains(claim))
            .unwrap_or_else(|| panic!("no such check: {claim}"));
        assert!(c.pass, "claim failed: {} ({})", c.claim, c.detail);
    }
}

#[test]
fn fig5_directionality() {
    let exp = shrink(experiments::fig5(Scale::Small), &[0.4, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "uni-torus has more normalized deadlocks",
            "DOR deadlocks are all single-cycle",
        ],
    );
    // Deadlocks actually occur in both networks at these loads.
    assert!(results.iter().all(|r| r.delivered > 0));
    assert!(results.iter().any(|r| r.deadlocks > 0));
    golden::check_or_bless("fig5", &results);
}

#[test]
fn fig6_adaptivity() {
    let exp = shrink(experiments::fig6(Scale::Small), &[0.2, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "DOR suffers more actual deadlocks than TFAR",
            "TFAR deadlock sets are larger",
            "TFAR resource sets are larger",
        ],
    );
    // TFAR produces multi-cycle deadlocks; DOR cannot.
    let dor_multi: u64 = exp
        .configs
        .iter()
        .zip(&results)
        .filter(|(c, _)| c.routing == flexsim::RoutingSpec::Dor)
        .map(|(_, r)| r.multi_cycle_deadlocks)
        .sum();
    assert_eq!(dor_multi, 0);
    golden::check_or_bless("fig6", &results);
}

#[test]
fn fig7_virtual_channels() {
    let exp = shrink(experiments::fig7(Scale::Small), &[0.4, 1.0]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "3+ VCs make DOR deadlock highly improbable",
            "2+ VCs make TFAR deadlock highly improbable",
            "TFAR1 and DOR1 both deadlock",
        ],
    );
    golden::check_or_bless("fig7", &results);
}

#[test]
fn fig8_buffer_depth() {
    let mut exp = experiments::fig8(Scale::Small);
    exp.configs
        .retain(|c| [2usize, 32].contains(&c.sim.buffer_depth));
    let exp = shrink(exp, &[0.2, 0.4, 1.0]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "deeper buffers raise the saturation",
            "per-in-network-message deadlock rate falls with depth",
        ],
    );
    golden::check_or_bless("fig8", &results);
}

/// The golden comparison itself must catch drift: a digest change or an
/// out-of-band key metric fails, an in-band wiggle passes.
#[test]
fn golden_comparison_detects_tampering() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 50;
    cfg.measure = 200;
    cfg.load = 0.3;
    let r = flexsim::run(&cfg);
    let results = vec![r];
    let pristine: Vec<golden::Entry> = results.iter().map(golden::entry_of).collect();
    assert!(golden::compare(&pristine, &results).is_empty());

    // Round trip through the JSON form stays clean.
    let round = golden::from_json(&golden::to_json("tamper", &pristine));
    assert!(golden::compare(&round, &results).is_empty());

    // An out-of-band metric drift fails.
    let mut bad = pristine.clone();
    bad[0].avg_latency *= 1.0 + 2.0 * golden::REL_TOL;
    assert!(golden::compare(&bad, &results)
        .iter()
        .any(|f| f.contains("avg_latency out of band")));

    // An in-band wiggle on one metric passes the band but the digest
    // pin still reports the exact-state change.
    let mut wiggle = pristine.clone();
    wiggle[0].accepted_load *= 1.0 + golden::REL_TOL / 2.0;
    let failures = golden::compare(&wiggle, &results);
    assert!(!failures.iter().any(|f| f.contains("out of band")));

    // A digest change alone is reported.
    let mut tampered = pristine.clone();
    tampered[0].digest.push('x');
    assert!(golden::compare(&tampered, &results)
        .iter()
        .any(|f| f.contains("digest drifted")));

    // Entry-count and label mismatches are structural failures.
    assert!(!golden::compare(&[], &results).is_empty());
    let mut relabeled = pristine;
    relabeled[0].label = "something else".to_string();
    assert!(!golden::compare(&relabeled, &results).is_empty());
}

#[test]
fn node_degree() {
    let exp = shrink(experiments::node_degree(Scale::Small), &[0.4, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(&exp, &results, &["4-D torus suffers far fewer deadlocks"]);
}

#[test]
fn traffic_patterns_run_and_dor_exception_holds() {
    let mut exp = experiments::traffic_patterns(Scale::Small);
    for c in &mut exp.configs {
        c.warmup = 500;
        c.measure = 2_500;
    }
    exp.configs.retain(|c| c.load > 1.0);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &["DOR under transpose avoids the circular overlap"],
    );
    assert!(results.iter().all(|r| r.delivered > 0));
}

#[test]
fn repro_binary_configs_are_valid() {
    // Every configuration in every experiment validates and labels.
    for exp in experiments::all(Scale::Paper) {
        for c in &exp.configs {
            c.sim.validate();
            assert!(!c.label().is_empty());
            assert!(c.load > 0.0);
        }
    }
}

#[test]
fn small_and_paper_scales_share_structure() {
    for (s, p) in experiments::all(Scale::Small)
        .iter()
        .zip(experiments::all(Scale::Paper).iter())
    {
        assert_eq!(s.id, p.id);
        assert!(!s.configs.is_empty() && !p.configs.is_empty());
    }
    let _ = RunConfig::paper_default();
}
