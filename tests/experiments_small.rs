//! End-to-end reproduction smoke tests: run scaled-down versions of every
//! experiment in the paper's evaluation section and assert the robust
//! qualitative claims (the full-strength claims are checked at paper scale
//! by the `repro` binary; see EXPERIMENTS.md).

use flexsim::experiments::{self, Experiment, Scale, ShapeCheck};
use flexsim::{sweep, RunConfig, RunResult};

/// Shrinks an experiment so the whole suite stays test-suite fast:
/// shorter windows and a subsampled load sweep.
fn shrink(mut exp: Experiment, loads: &[f64]) -> Experiment {
    exp.configs
        .retain(|c| loads.iter().any(|&l| (c.load - l).abs() < 1e-9));
    for c in &mut exp.configs {
        c.warmup = 500;
        c.measure = 2_500;
    }
    exp
}

fn run_exp(exp: &Experiment) -> Vec<RunResult> {
    sweep(&exp.configs)
}

fn assert_checks(exp: &Experiment, results: &[RunResult], claims: &[&str]) {
    let checks: Vec<ShapeCheck> = experiments::shape_checks(exp, results);
    for claim in claims {
        let c = checks
            .iter()
            .find(|c| c.claim.contains(claim))
            .unwrap_or_else(|| panic!("no such check: {claim}"));
        assert!(c.pass, "claim failed: {} ({})", c.claim, c.detail);
    }
}

#[test]
fn fig5_directionality() {
    let exp = shrink(experiments::fig5(Scale::Small), &[0.4, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "uni-torus has more normalized deadlocks",
            "DOR deadlocks are all single-cycle",
        ],
    );
    // Deadlocks actually occur in both networks at these loads.
    assert!(results.iter().all(|r| r.delivered > 0));
    assert!(results.iter().any(|r| r.deadlocks > 0));
}

#[test]
fn fig6_adaptivity() {
    let exp = shrink(experiments::fig6(Scale::Small), &[0.2, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "DOR suffers more actual deadlocks than TFAR",
            "TFAR deadlock sets are larger",
            "TFAR resource sets are larger",
        ],
    );
    // TFAR produces multi-cycle deadlocks; DOR cannot.
    let dor_multi: u64 = exp
        .configs
        .iter()
        .zip(&results)
        .filter(|(c, _)| c.routing == flexsim::RoutingSpec::Dor)
        .map(|(_, r)| r.multi_cycle_deadlocks)
        .sum();
    assert_eq!(dor_multi, 0);
}

#[test]
fn fig7_virtual_channels() {
    let exp = shrink(experiments::fig7(Scale::Small), &[0.4, 1.0]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "3+ VCs make DOR deadlock highly improbable",
            "2+ VCs make TFAR deadlock highly improbable",
            "TFAR1 and DOR1 both deadlock",
        ],
    );
}

#[test]
fn fig8_buffer_depth() {
    let mut exp = experiments::fig8(Scale::Small);
    exp.configs
        .retain(|c| [2usize, 32].contains(&c.sim.buffer_depth));
    let exp = shrink(exp, &[0.2, 0.4, 1.0]);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &[
            "deeper buffers raise the saturation",
            "per-in-network-message deadlock rate falls with depth",
        ],
    );
}

#[test]
fn node_degree() {
    let exp = shrink(experiments::node_degree(Scale::Small), &[0.4, 0.8, 1.2]);
    let results = run_exp(&exp);
    assert_checks(&exp, &results, &["4-D torus suffers far fewer deadlocks"]);
}

#[test]
fn traffic_patterns_run_and_dor_exception_holds() {
    let mut exp = experiments::traffic_patterns(Scale::Small);
    for c in &mut exp.configs {
        c.warmup = 500;
        c.measure = 2_500;
    }
    exp.configs.retain(|c| c.load > 1.0);
    let results = run_exp(&exp);
    assert_checks(
        &exp,
        &results,
        &["DOR under transpose avoids the circular overlap"],
    );
    assert!(results.iter().all(|r| r.delivered > 0));
}

#[test]
fn repro_binary_configs_are_valid() {
    // Every configuration in every experiment validates and labels.
    for exp in experiments::all(Scale::Paper) {
        for c in &exp.configs {
            c.sim.validate();
            assert!(!c.label().is_empty());
            assert!(c.load > 0.0);
        }
    }
}

#[test]
fn small_and_paper_scales_share_structure() {
    for (s, p) in experiments::all(Scale::Small)
        .iter()
        .zip(experiments::all(Scale::Paper).iter())
    {
        assert_eq!(s.id, p.id);
        assert!(!s.configs.is_empty() && !p.configs.is_empty());
    }
    let _ = RunConfig::paper_default();
}
