//! Parallel-decide determinism: with the `parallel` cargo feature, the
//! engine may fan the transfer-decision pass out over scoped threads
//! ([`icn_sim::Network::set_transfer_threads`]); the decided moves are
//! applied serially in canonical order, so a run must be byte-identical
//! — [`flexsim::RunResult::digest`] equality — at any thread count.
//!
//! The proof points are the four golden figures at small scale
//! ([`flexsim::experiments`] fig5–fig8), taken at their saturated loads
//! (where per-cycle decide work, and therefore reordering opportunity,
//! peaks), each run at 1, 2, and 4 decide partitions.
//!
//! Without the feature the thread knob is a documented no-op; the
//! clamp test below covers that, and the multi-thread suite compiles
//! away (`cargo test --features parallel` runs it).

use flexsim::experiments::{fig5, fig6, fig7, fig8, Scale};
use flexsim::{run, RunConfig};

/// The saturated (load ≥ 1.0) points of each golden figure: one per
/// curve, the densest decide traffic the goldens produce.
fn golden_saturated_points() -> Vec<RunConfig> {
    [fig5, fig6, fig7, fig8]
        .iter()
        .flat_map(|f| f(Scale::Small).configs)
        .filter(|c| c.load >= 1.0)
        .collect()
}

/// The knob must be inert when the feature is off (and harmless when
/// on): requesting threads on a serial build changes nothing.
#[test]
fn thread_knob_is_digest_neutral_on_any_build() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 200;
    cfg.measure = 600;
    cfg.load = 1.0;
    let baseline = run(&cfg).digest();
    cfg.transfer_threads = 4;
    assert_eq!(run(&cfg).digest(), baseline);
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_decide_is_digest_identical_on_goldens() {
    let points = golden_saturated_points();
    assert!(
        points.len() >= 4,
        "expected saturated points in every golden"
    );
    for base in points {
        let mut serial = base.clone();
        serial.transfer_threads = 1;
        let want = run(&serial).digest();
        for threads in [2, 4] {
            let mut cfg = base.clone();
            cfg.transfer_threads = threads;
            assert_eq!(
                run(&cfg).digest(),
                want,
                "digest diverged at {threads} decide threads for {}",
                cfg.label()
            );
        }
    }
}

/// Fault-mode runs always decide serially; a faulted config with the
/// thread knob set must still match its serial self exactly.
#[cfg(feature = "parallel")]
#[test]
fn faulted_runs_ignore_thread_knob() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = 1.0;
    cfg.faults = flexsim::faults::random_plan(&cfg.topology, 1_000, 17);
    let want = run(&cfg).digest();
    cfg.transfer_threads = 4;
    assert_eq!(run(&cfg).digest(), want);
}

// Keep the helper referenced on serial builds too.
#[cfg(not(feature = "parallel"))]
#[test]
fn golden_saturated_points_exist() {
    assert!(golden_saturated_points().len() >= 4);
}
