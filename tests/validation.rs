//! Workspace-level exercise of the validation layer (`flexsim::validate`).
//!
//! The default tests here are CI-sized slices: a randomized-CWG oracle
//! differential, a small live campaign, one exhaustive small-world
//! enumeration, a forensics re-audit, and a two-regime torture run. The
//! full torture harness — every regime, both steppers, >= 100k audited
//! cycles — is `#[ignore]`d for time; run it with:
//!
//! ```text
//! cargo test --release --test validation full_torture -- --ignored --nocapture
//! ```
//!
//! A heavier sweep of the same machinery is available from the CLI as
//! `cargo run --release -p icn-bench --bin repro -- validate`.

use flexsim::validate as v;
use flexsim::{ForensicsConfig, RoutingSpec, RunConfig, TopologySpec};

/// Every stage asserts with the minimized reproducer in the message, so a
/// failure in CI is directly replayable through `WaitGraph::from_json`.
fn assert_no_divergence(n: usize, msgs: &[v::OracleMsg]) {
    let diffs = v::check_messages(n, msgs);
    assert!(
        diffs.is_empty(),
        "oracle divergence: {:?}\nrepro: {}",
        diffs,
        v::divergence_repro_json(n, msgs)
    );
}

#[test]
fn oracle_matches_production_on_random_cwgs() {
    let shapes = [
        v::GenParams::default(),
        // Dense variant: short chains, high blocking, requests biased onto
        // owned vertices — maximizes knots per snapshot.
        v::GenParams {
            num_vertices: 24,
            max_messages: 12,
            max_chain: 2,
            max_requests: 2,
            blocked_prob: 0.95,
            owned_bias: 0.95,
        },
    ];
    for params in &shapes {
        for seed in 0..200u64 {
            let (n, msgs) = v::random_snapshot(0x5eed ^ seed, params);
            assert_no_divergence(n, &msgs);
        }
    }
}

#[test]
fn live_campaign_agrees_with_oracle() {
    let outcome = v::campaign(3, 0xc0ffee);
    assert_eq!(outcome.configs, 3);
    assert!(outcome.epochs_checked > 0, "campaign audited no epochs");
    if let Some((label, violations, repro)) = outcome.failures.first() {
        panic!("campaign config `{label}` failed: {violations:?}\nrepro: {repro:?}");
    }
    assert!(outcome.ok());
}

#[test]
fn explorer_exhausts_the_tiny_ring() {
    let report = v::explore(&v::ExploreConfig::uni_ring_3());
    assert_eq!(report.schedules, 729, "3 nodes, 3 choices, 6 slots");
    assert!(
        report.deadlocked > 0,
        "the uni-ring must deadlock somewhere"
    );
    assert!(
        report.ok(),
        "explorer divergences: {:?}",
        report.divergences
    );
}

#[test]
fn captured_incidents_survive_reaudit() {
    // The paper's canonical deadlock machine, small enough for debug CI:
    // unrestricted DOR on a unidirectional torus at saturation.
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(4, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = 200;
    cfg.measure = 1_200;
    cfg.detection_interval = 25;
    cfg.forensics = Some(ForensicsConfig::default());
    let res = flexsim::run(&cfg);
    assert!(
        !res.forensic_incidents.is_empty(),
        "saturated uni-torus run captured no incidents"
    );
    for inc in &res.forensic_incidents {
        let problems = v::check_incident(inc);
        assert!(
            problems.is_empty(),
            "incident @ cycle {} failed re-audit: {problems:?}",
            inc.cycle
        );
    }
}

#[test]
fn torture_ci_slice() {
    // Two qualitatively different regimes (deadlock-heavy DOR and adaptive
    // TFAR) at a short horizon; the full set runs under `full_torture`.
    let regimes = v::torture_regimes(300);
    for cfg in regimes.iter().take(2) {
        for outcome in v::torture(cfg) {
            assert!(outcome.epochs > 0, "{}: no epochs audited", outcome.label);
            assert!(
                outcome.ok(),
                "[{} / {}] violations: {:?}\nrepro: {:?}",
                outcome.label,
                outcome.stepper,
                outcome.violations,
                outcome.divergence_repro
            );
        }
    }
}

/// The full torture harness: every regime, both steppers, long horizon.
/// Audits >= 100k simulated cycles across >= 8 qualitatively different
/// operating points; any invariant breach or oracle divergence fails with
/// a minimized reproducer.
#[test]
#[ignore = "minutes-long; run with --ignored --nocapture (see module docs)"]
fn full_torture() {
    let regimes = v::torture_regimes(6_000);
    assert!(
        regimes.len() >= 8,
        "need >= 8 regimes, got {}",
        regimes.len()
    );
    let mut total_cycles = 0u64;
    let mut total_deadlock_epochs = 0u64;
    for cfg in &regimes {
        for outcome in v::torture(cfg) {
            println!(
                "[{} / {}] {} cycles, {} epochs, {} with knots",
                outcome.label,
                outcome.stepper,
                outcome.cycles,
                outcome.epochs,
                outcome.deadlock_epochs
            );
            total_cycles += outcome.cycles;
            total_deadlock_epochs += outcome.deadlock_epochs;
            assert!(
                outcome.ok(),
                "[{} / {}] violations: {:?}\nrepro: {:?}",
                outcome.label,
                outcome.stepper,
                outcome.violations,
                outcome.divergence_repro
            );
        }
    }
    println!("total: {total_cycles} cycles audited, {total_deadlock_epochs} knot epochs");
    assert!(
        total_cycles >= 100_000,
        "torture audited only {total_cycles} cycles"
    );
    assert!(
        total_deadlock_epochs > 0,
        "torture regimes never produced a deadlock"
    );
}
