//! Property-based tests over topology geometry and routing relations.

use icn_routing::{Dor, NegativeFirst, RoutingAlgorithm, RoutingCtx, Tfar};
use icn_topology::{KAryNCube, NodeId};
use proptest::prelude::*;

fn topologies() -> impl Strategy<Value = KAryNCube> {
    (2u16..7, 1usize..4, any::<bool>(), any::<bool>()).prop_map(|(k, n, torus, bidir)| {
        if torus {
            KAryNCube::torus(k, n, bidir)
        } else {
            KAryNCube::mesh(k, n)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distances satisfy identity, (directional) triangle inequality, and
    /// symmetry on bidirectional networks.
    #[test]
    fn distance_metric_properties(topo in topologies(), seed in any::<u64>()) {
        let n = topo.num_nodes() as u64;
        let a = NodeId((seed % n) as u32);
        let b = NodeId(((seed / n) % n) as u32);
        let c = NodeId(((seed / (n * n)) % n) as u32);
        prop_assert_eq!(topo.distance(a, a), 0);
        if a != b {
            prop_assert!(topo.distance(a, b) >= 1);
        }
        prop_assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
        if topo.is_bidirectional() {
            prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
        }
    }

    /// Every channel connects nodes at distance exactly one, and
    /// neighbour lookups agree with channel tables.
    #[test]
    fn channels_are_unit_hops(topo in topologies()) {
        for id in 0..topo.num_channels() as u32 {
            let info = *topo.channel(icn_topology::ChannelId(id));
            prop_assert_eq!(topo.distance(info.src, info.dst), 1);
            prop_assert_eq!(
                topo.neighbor(info.src, info.dim as usize, info.dir),
                Some(info.dst)
            );
        }
    }

    /// Average distance is consistent with a direct enumeration.
    #[test]
    fn avg_distance_matches_enumeration(k in 2u16..6, n in 1usize..3, bidir in any::<bool>()) {
        let topo = KAryNCube::torus(k, n, bidir);
        let nodes = topo.num_nodes() as u32;
        let mut total = 0u64;
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b {
                    total += topo.distance(NodeId(a), NodeId(b)) as u64;
                }
            }
        }
        let expect = total as f64 / (nodes as f64 * (nodes - 1) as f64);
        prop_assert!((topo.avg_distance() - expect).abs() < 1e-9,
            "computed {} vs enumerated {expect}", topo.avg_distance());
    }

    /// Following any sequence of DOR hops reaches the destination in
    /// exactly `distance` steps (the relation is a function and minimal).
    #[test]
    fn dor_walk_terminates_minimally(topo in topologies(), seed in any::<u64>()) {
        let n = topo.num_nodes() as u64;
        let src = NodeId((seed % n) as u32);
        let dst = NodeId(((seed / n) % n) as u32);
        prop_assume!(src != dst);
        let mut cur = src;
        let mut hops = 0u32;
        let mut out = Vec::new();
        while cur != dst {
            out.clear();
            Dor.candidates(&topo, 1, &RoutingCtx::fresh(src, dst, cur), &mut out);
            prop_assert_eq!(out.len(), 1, "DOR is a function");
            cur = topo.channel(out[0].channel).dst;
            hops += 1;
            prop_assert!(hops <= topo.num_nodes() as u32, "walk must terminate");
        }
        prop_assert_eq!(hops, topo.distance(src, dst));
    }

    /// Any greedy walk over TFAR candidates (always taking the first)
    /// also reaches the destination minimally.
    #[test]
    fn tfar_walk_terminates_minimally(topo in topologies(), seed in any::<u64>()) {
        let n = topo.num_nodes() as u64;
        let src = NodeId((seed % n) as u32);
        let dst = NodeId(((seed / n) % n) as u32);
        prop_assume!(src != dst);
        let mut cur = src;
        let mut last_dim = None;
        let mut hops = 0u32;
        let mut out = Vec::new();
        let pick = (seed >> 32) as usize;
        while cur != dst {
            out.clear();
            let mut ctx = RoutingCtx::fresh(src, dst, cur);
            ctx.last_dim = last_dim;
            Tfar.candidates(&topo, 1, &ctx, &mut out);
            prop_assert!(!out.is_empty());
            let cand = out[(pick + hops as usize) % out.len()];
            let info = topo.channel(cand.channel);
            cur = info.dst;
            last_dim = Some(info.dim);
            hops += 1;
        }
        prop_assert_eq!(hops, topo.distance(src, dst));
    }

    /// Negative-first on meshes: once a positive hop has been taken, no
    /// negative hop is ever offered again (the turn prohibition).
    #[test]
    fn negative_first_never_turns_back_negative(k in 3u16..7, seed in any::<u64>()) {
        let topo = KAryNCube::mesh(k, 2);
        let n = topo.num_nodes() as u64;
        let src = NodeId((seed % n) as u32);
        let dst = NodeId(((seed / n) % n) as u32);
        prop_assume!(src != dst);
        let mut cur = src;
        let mut seen_positive = false;
        let mut out = Vec::new();
        while cur != dst {
            out.clear();
            NegativeFirst.candidates(&topo, 1, &RoutingCtx::fresh(src, dst, cur), &mut out);
            prop_assert!(!out.is_empty());
            for c in &out {
                let dir = topo.channel(c.channel).dir;
                if seen_positive {
                    prop_assert_eq!(dir, icn_topology::Direction::Plus);
                }
            }
            let info = topo.channel(out[0].channel);
            if info.dir == icn_topology::Direction::Plus {
                seen_positive = true;
            }
            cur = info.dst;
        }
    }
}
