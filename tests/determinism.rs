//! Determinism guarantees: a [`RunConfig`] (seed included) is a pure
//! function — repeated runs produce byte-identical results, and so does
//! running the same point inside a threaded [`sweep`]. This is the
//! foundation forensic replay stands on: without it, re-running an
//! incident's config could not be expected to re-form the same knot.

use flexsim::{run, sweep, ForensicsConfig, RoutingSpec, RunConfig, RunResult};
use icn_metrics::Histogram;

fn hist_digest(h: &Histogram, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "[n={} sum={} min={} max={} p50={} p90={}]",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.quantile(0.5),
        h.quantile(0.9)
    );
}

/// A byte-exact rendering of every counter and distribution in a
/// [`RunResult`]. Floating-point values are digested via `to_bits` so
/// that even last-ulp divergence (e.g. from a different accumulation
/// order) is caught.
fn digest(r: &RunResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(
        s,
        "{} cycles={} gen={} inj={} del={} rec={} flits={} links={} \
         dead={} single={} multi={} depc={} dept={} capped={} cnd={} epochs={} victims={} ",
        r.label,
        r.cycles,
        r.generated,
        r.injected,
        r.delivered,
        r.recovered,
        r.delivered_flits,
        r.link_flits,
        r.deadlocks,
        r.single_cycle_deadlocks,
        r.multi_cycle_deadlocks,
        r.dependent_committed,
        r.dependent_transient,
        r.cycles_capped,
        r.cyclic_nondeadlock_epochs,
        r.counting_epochs,
        r.victims_started,
    );
    for h in [
        &r.latency,
        &r.deadlock_set,
        &r.resource_set,
        &r.knot_density,
        &r.resolution_latency,
        &r.formation_latency,
        &r.formation_spread,
    ] {
        hist_digest(h, &mut s);
    }
    for m in [&r.blocked, &r.in_network, &r.source_queued] {
        let _ = write!(s, "(n={} mean={:016x})", m.count(), m.mean().to_bits());
    }
    for ts in [&r.cwg_cycles, &r.blocked_frac] {
        for (c, v) in ts.points() {
            let _ = write!(s, "@{c}:{:016x}", v.to_bits());
        }
    }
    for i in &r.incidents {
        let _ = write!(
            s,
            "i({},{},{},{},{})",
            i.cycle, i.deadlock_set_size, i.resource_set_size, i.knot_cycle_density, i.dependents
        );
    }
    for f in &r.forensic_incidents {
        let _ = write!(s, "f({},{},{:016x})", f.seq, f.cycle, f.fingerprint);
    }
    s
}

fn points() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for (routing, vcs, load) in [
        (RoutingSpec::Dor, 1, 1.0),
        (RoutingSpec::Tfar, 2, 0.8),
        (RoutingSpec::Duato, 3, 0.6),
    ] {
        let mut c = RunConfig::small_default();
        c.routing = routing;
        c.sim.vcs_per_channel = vcs;
        c.load = load;
        c.warmup = 200;
        c.measure = 600;
        configs.push(c);
    }
    configs
}

#[test]
fn repeated_runs_are_byte_identical() {
    for cfg in points() {
        let first = digest(&run(&cfg));
        for _ in 0..2 {
            assert_eq!(
                digest(&run(&cfg)),
                first,
                "run diverged for {}",
                cfg.label()
            );
        }
    }
}

#[test]
fn forensic_runs_are_byte_identical_too() {
    // Forensics adds tracing and capture on top of the engine; neither may
    // perturb the run or introduce nondeterminism of its own.
    let mut cfg = points().remove(0);
    cfg.forensics = Some(ForensicsConfig::default());
    let a = run(&cfg);
    let b = run(&cfg);
    assert!(!a.forensic_incidents.is_empty(), "expected captures");
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn sweep_threading_is_byte_identical_to_serial() {
    // Duplicate each point so distinct worker threads race on identical
    // configs within one sweep call.
    let mut configs = points();
    configs.extend(points());
    let swept = sweep(&configs);
    assert_eq!(swept.len(), configs.len());

    let serial: Vec<String> = configs.iter().map(|c| digest(&run(c))).collect();
    for (i, (s, r)) in serial.iter().zip(&swept).enumerate() {
        assert_eq!(&digest(r), s, "sweep slot {i} diverged from serial run");
    }
    // And the duplicated halves agree with each other.
    let n = points().len();
    for i in 0..n {
        assert_eq!(digest(&swept[i]), digest(&swept[i + n]));
    }
}
