//! Determinism guarantees: a [`RunConfig`] (seed included) is a pure
//! function — repeated runs produce byte-identical results, and so does
//! running the same point inside a threaded [`sweep`]. This is the
//! foundation forensic replay stands on: without it, re-running an
//! incident's config could not be expected to re-form the same knot.

use flexsim::{run, sweep, ForensicsConfig, RoutingSpec, RunConfig, RunResult};

/// The byte-exact rendering of every counter and distribution in a
/// [`RunResult`] — see [`RunResult::digest`].
fn digest(r: &RunResult) -> String {
    r.digest()
}

fn points() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for (routing, vcs, load) in [
        (RoutingSpec::Dor, 1, 1.0),
        (RoutingSpec::Tfar, 2, 0.8),
        (RoutingSpec::Duato, 3, 0.6),
    ] {
        let mut c = RunConfig::small_default();
        c.routing = routing;
        c.sim.vcs_per_channel = vcs;
        c.load = load;
        c.warmup = 200;
        c.measure = 600;
        configs.push(c);
    }
    configs
}

#[test]
fn repeated_runs_are_byte_identical() {
    for cfg in points() {
        let first = digest(&run(&cfg));
        for _ in 0..2 {
            assert_eq!(
                digest(&run(&cfg)),
                first,
                "run diverged for {}",
                cfg.label()
            );
        }
    }
}

#[test]
fn forensic_runs_are_byte_identical_too() {
    // Forensics adds tracing and capture on top of the engine; neither may
    // perturb the run or introduce nondeterminism of its own.
    let mut cfg = points().remove(0);
    cfg.forensics = Some(ForensicsConfig::default());
    let a = run(&cfg);
    let b = run(&cfg);
    assert!(!a.forensic_incidents.is_empty(), "expected captures");
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn sweep_threading_is_byte_identical_to_serial() {
    // Duplicate each point so distinct worker threads race on identical
    // configs within one sweep call.
    let mut configs = points();
    configs.extend(points());
    let swept = sweep(&configs);
    assert_eq!(swept.len(), configs.len());

    let serial: Vec<String> = configs.iter().map(|c| digest(&run(c))).collect();
    for (i, (s, r)) in serial.iter().zip(&swept).enumerate() {
        assert_eq!(&digest(r), s, "sweep slot {i} diverged from serial run");
    }
    // And the duplicated halves agree with each other.
    let n = points().len();
    for i in 0..n {
        assert_eq!(digest(&swept[i]), digest(&swept[i + n]));
    }
}
