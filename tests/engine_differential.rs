//! End-to-end engine differential: a full [`run`] (traffic, detection,
//! recovery, forensics) driven by the activity engine must be
//! byte-identical — [`RunResult::digest`] equality — to [`run_reference`],
//! which drives the identical point with the dense reference stepper.
//! The sim-level differential test compares steppers cycle-by-cycle; this
//! one proves the equivalence survives everything the runner layers on
//! top: detection epochs, fingerprint skipping, Disha-style recovery
//! victim selection, and forensic capture.

use flexsim::{run, run_reference, ForensicsConfig, RoutingSpec, RunConfig, TopologySpec};

fn points() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for (routing, vcs, load) in [
        (RoutingSpec::Dor, 1, 1.0),
        (RoutingSpec::Tfar, 2, 0.8),
        (RoutingSpec::Duato, 3, 0.6),
    ] {
        let mut c = RunConfig::small_default();
        c.routing = routing;
        c.sim.vcs_per_channel = vcs;
        c.load = load;
        c.warmup = 200;
        c.measure = 600;
        configs.push(c);
    }
    configs
}

#[test]
fn activity_run_matches_reference_run() {
    for cfg in points() {
        assert_eq!(
            run(&cfg).digest(),
            run_reference(&cfg).digest(),
            "engines diverged for {}",
            cfg.label()
        );
    }
}

#[test]
fn engines_agree_through_deadlock_recovery_cycles() {
    // A saturated unidirectional DOR torus wedges repeatedly; recovery
    // keeps pulling victims. Both engines must agree on every knot,
    // victim, and resolution latency.
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(8, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    let a = run(&cfg);
    assert!(a.deadlocks > 0, "expected deadlocks at saturation");
    assert_eq!(a.digest(), run_reference(&cfg).digest());
}

#[test]
fn engines_agree_under_forensic_capture() {
    // Forensics adds tracing and replay capture; the activity engine must
    // produce the identical trace stream for it to index.
    let mut cfg = points().remove(0);
    cfg.forensics = Some(ForensicsConfig::default());
    let a = run(&cfg);
    let b = run_reference(&cfg);
    assert!(!a.forensic_incidents.is_empty(), "expected captures");
    assert_eq!(a.digest(), b.digest());
}
