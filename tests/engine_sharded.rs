//! Shard-count invariance: the spatially sharded engine
//! ([`icn_sim::Network::set_shards`], plumbed through
//! [`flexsim::RunConfig::shards`]) partitions the network into contiguous
//! node ranges that step concurrently inside each cycle and exchange
//! boundary traffic at the barrier in canonical shard × channel order —
//! so [`flexsim::RunResult::digest`] must be byte-identical at any shard
//! count: 1, 2, 4, and 8 shards, on every golden regime, with recovery
//! pulls, under an armed fault plan (where stepping falls back to the
//! serial scheduler but snapshots still assemble from per-shard
//! fragments), and across a sweep checkpoint/resume.
//!
//! Without the `parallel` feature the knob clamps to 1 and reports it —
//! the satellite fix for the silently-absorbed `transfer_threads`
//! downgrade — which the clamp tests below pin on serial builds.

use flexsim::experiments::{fig5, fig6, fig7, fig8, Scale};
use flexsim::{run, RunConfig};

/// The saturated (load ≥ 1.0) points of each golden figure — the densest
/// allocation/transfer traffic and the only regimes with steady deadlock
/// recovery churn.
fn golden_saturated_points() -> Vec<RunConfig> {
    [fig5, fig6, fig7, fig8]
        .iter()
        .flat_map(|f| f(Scale::Small).configs)
        .filter(|c| c.load >= 1.0)
        .collect()
}

/// The knob must be inert when the feature is off (and digest-neutral
/// when on): requesting shards on a serial build changes nothing.
#[test]
fn shard_knob_is_digest_neutral_on_any_build() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 200;
    cfg.measure = 600;
    cfg.load = 1.0;
    let baseline = run(&cfg).digest();
    cfg.shards = 4;
    assert_eq!(run(&cfg).digest(), baseline);
}

/// Without the feature, `set_shards` must *say* it clamped instead of
/// silently running flat — same contract as `set_transfer_threads`.
#[cfg(not(feature = "parallel"))]
#[test]
fn serial_build_reports_the_shard_downgrade() {
    use icn_sim::{Network, SimConfig};
    use icn_topology::KAryNCube;
    let mut net = Network::new(
        KAryNCube::torus(4, 2, true),
        Box::new(icn_routing::Dor),
        SimConfig::default(),
    );
    assert_eq!(net.set_shards(8), 1, "serial build must clamp and say so");
    assert_eq!(net.set_transfer_threads(8), 1);
    assert!(net.shard_plan().is_none());
}

#[cfg(feature = "parallel")]
mod sharded {
    use super::*;
    use flexsim::{sweep, sweep_supervised, SweepOptions};
    use proptest::prelude::*;

    #[test]
    fn sharded_run_is_digest_identical_on_goldens() {
        let points = golden_saturated_points();
        assert!(
            points.len() >= 4,
            "expected saturated points in every golden"
        );
        for base in points {
            let mut serial = base.clone();
            serial.shards = 1;
            let want = run(&serial).digest();
            for shards in [2, 4, 8] {
                let mut cfg = base.clone();
                cfg.shards = shards;
                assert_eq!(
                    run(&cfg).digest(),
                    want,
                    "digest diverged at {shards} shards for {}",
                    cfg.label()
                );
            }
        }
    }

    /// Armed fault plans force the serial scheduler (fault checks are
    /// defined in global id order), but the shard plan stays installed and
    /// detection epochs still go through fragment assembly — the run must
    /// match its flat self exactly.
    #[test]
    fn faulted_runs_with_shards_match_serial() {
        let mut cfg = RunConfig::small_default();
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.load = 1.0;
        cfg.faults = flexsim::faults::random_plan(&cfg.topology, 1_000, 17);
        let want = run(&cfg).digest();
        for shards in [2, 4, 8] {
            cfg.shards = shards;
            assert_eq!(
                run(&cfg).digest(),
                want,
                "faulted digest diverged at {shards} shards"
            );
        }
    }

    /// Interrupt-and-resume with sharded configs: a checkpoint written
    /// mid-sweep by a sharded invocation must resume into the same bytes
    /// the flat engine produces.
    #[test]
    fn sharded_sweep_checkpoint_resume_is_digest_exact() {
        let mut configs = golden_saturated_points();
        configs.truncate(2);
        for c in &mut configs {
            c.warmup = 200;
            c.measure = 600;
            c.shards = 4;
        }
        let dir = std::env::temp_dir().join(format!(
            "icn-shard-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        // First pass: only the first config reaches the checkpoint.
        let first = sweep_supervised(&configs[..1], &opts);
        assert!(first[0].is_ok());

        // Resume over the full set, then compare against flat solo runs.
        let resumed = sweep_supervised(&configs, &opts);
        let flat: Vec<_> = configs
            .iter()
            .map(|c| {
                let mut f = c.clone();
                f.shards = 1;
                f
            })
            .collect();
        for (r, f) in resumed.iter().zip(sweep(&flat).iter()) {
            assert_eq!(
                r.as_ref().unwrap().digest(),
                f.digest(),
                "sharded resume diverged from the flat engine"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Randomized configurations (the validation campaign's generator:
        /// varied topology, routing, VCs, buffers, pattern, recovery
        /// policy) stay digest-identical at a random shard count.
        #[test]
        fn random_configs_are_shard_invariant(seed in any::<u64>()) {
            let mut cfg = flexsim::validate::random_config(seed);
            cfg.warmup = 150;
            cfg.measure = 450;
            let want = run(&cfg).digest();
            cfg.shards = 2 + (seed % 7) as usize;
            prop_assert_eq!(run(&cfg).digest(), want);
        }
    }
}
