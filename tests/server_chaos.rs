//! Chaos tests: the campaign fleet under real process crashes.
//!
//! These tests spawn *real server processes* (by re-executing this test
//! binary with `--exact worker_entry` and the `ICN_CHAOS_*` environment
//! set) so a crash is an actual SIGKILL delivered to an actual process —
//! not a simulated flag. The scenarios:
//!
//! 1. Two concurrent servers share one data dir and complete a grid
//!    submitted through one of them with **zero duplicated simulations**
//!    (per-config leases arbitrate ownership; `/stats` sums prove it).
//! 2. A worker is crashed mid-sweep by a rename-time fault injected into
//!    its durable cache writes (`ICN_DURABLE_CRASH`), the quiescent
//!    checkpoint is tampered with (one record garbled, the tail torn the
//!    way a killed writer leaves it), a two-member fleet resumes, one
//!    member is SIGKILLed mid-sweep — and the survivor still converges
//!    to results digest-identical to a clean in-process
//!    `sweep_supervised`, with the corruption detected and surfaced.
//!
//! Everything runs on ephemeral 127.0.0.1 ports; no network egress.

use std::io::Write;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use deadlock_characterization::flexsim::jsonio::{durable, parse, Json};
use deadlock_characterization::flexsim::{
    decode_result, sweep_supervised, RunConfig, SweepOptions,
};
use deadlock_characterization::server::{
    http_request, http_request_full, CampaignServer, ServerOptions, SweepGrid,
};

fn env_num(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Re-exec entry point, not a test of its own: the chaos tests spawn
/// this binary again with `--exact worker_entry` and `ICN_CHAOS_DATA`
/// set, and the child becomes a real campaign-server process the parent
/// can SIGKILL. Without the environment it is a no-op.
#[test]
fn worker_entry() {
    let Ok(data) = std::env::var("ICN_CHAOS_DATA") else {
        return;
    };
    let port_file = PathBuf::from(
        std::env::var("ICN_CHAOS_PORT_FILE").expect("worker_entry needs ICN_CHAOS_PORT_FILE"),
    );
    let mut opts = ServerOptions::new(&data);
    opts.workers = env_num("ICN_CHAOS_WORKERS", 2) as usize;
    opts.lease_expiry = Duration::from_millis(env_num("ICN_CHAOS_LEASE_MS", 1500));
    opts.scan_interval = Duration::from_millis(env_num("ICN_CHAOS_SCAN_MS", 120));
    let server = CampaignServer::bind("127.0.0.1:0", &opts).expect("bind chaos worker");
    durable::write_atomic(&port_file, server.addr().to_string().as_bytes()).expect("publish port");
    server.serve().expect("serve");
}

/// One spawned fleet member. Dropping it SIGKILLs the child, so a failed
/// assertion never leaks a server process.
struct Worker {
    child: Child,
    port_file: PathBuf,
}

impl Worker {
    fn spawn(data: &Path, tag: &str, workers: usize, crash_plan: Option<&str>) -> Worker {
        let port_file = data.join(format!("{tag}.port"));
        let _ = std::fs::remove_file(&port_file);
        let exe = std::env::current_exe().expect("current_exe");
        let mut cmd = Command::new(exe);
        cmd.args(["worker_entry", "--exact", "--test-threads", "1"])
            .env("ICN_CHAOS_DATA", data)
            .env("ICN_CHAOS_PORT_FILE", &port_file)
            .env("ICN_CHAOS_WORKERS", workers.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(plan) = crash_plan {
            cmd.env("ICN_DURABLE_CRASH", plan);
        }
        Worker {
            child: cmd.spawn().expect("spawn chaos worker"),
            port_file,
        }
    }

    /// Polls the port file until the child publishes its bound address.
    fn addr(&mut self) -> SocketAddr {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok(text) = std::fs::read_to_string(&self.port_file) {
                if let Ok(addr) = text.trim().parse() {
                    return addr;
                }
            }
            if let Ok(Some(status)) = self.child.try_wait() {
                panic!("chaos worker exited before binding: {status}");
            }
            assert!(
                Instant::now() < deadline,
                "chaos worker never published {}",
                self.port_file.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// SIGKILL — `Child::kill` on Unix — and reap.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits for the child to die on its own (injected crash).
    fn wait_crash(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => {
                    assert!(Instant::now() < deadline, "injected crash never fired");
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("waiting for chaos worker: {e}"),
            }
        }
    }

    /// Graceful shutdown; asserts the child exits cleanly.
    fn shutdown(mut self, addr: SocketAddr) {
        let (status, _) = http_request(addr, "POST", "/shutdown", None).expect("shutdown");
        assert_eq!(status, 200);
        let st = self.child.wait().expect("reap worker");
        assert!(st.success(), "worker exited uncleanly: {st}");
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("campaign-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 3 loads × 2 seeds: wide enough that kills land mid-sweep.
fn chaos_grid() -> SweepGrid {
    let mut base = RunConfig::small_default();
    base.warmup = 200;
    base.measure = 600;
    SweepGrid {
        base,
        seeds: vec![41, 42],
        loads: vec![0.15, 0.2, 0.25],
        timeout_ms: None,
    }
}

fn direct_digests(grid: &SweepGrid) -> Vec<String> {
    sweep_supervised(&grid.expand(), &SweepOptions::default())
        .iter()
        .map(|r| r.as_ref().expect("direct run succeeds").digest())
        .collect()
}

fn submit(addr: SocketAddr, grid: &SweepGrid) -> u64 {
    let (status, body) =
        http_request(addr, "POST", "/jobs", Some(&grid.to_json().to_string())).expect("submit");
    assert_eq!(status, 200, "submit failed: {body}");
    parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("submit returns an id")
}

/// Polls until `state == "done"`. Tolerates 404 early on — a sibling
/// that has not yet scanned the job into memory.
fn poll_done(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("poll");
        if status == 200 {
            let v = parse(&body).unwrap();
            if v.get("state").and_then(Json::as_str) == Some("done") {
                return v;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never settled: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Fetches the results stream; asserts completeness header and returns
/// per-slot digests.
fn result_digests(addr: SocketAddr, id: u64, n: usize, complete: &str) -> Vec<String> {
    let (status, headers, stream) =
        http_request_full(addr, "GET", &format!("/jobs/{id}/results"), None).expect("results");
    assert_eq!(status, 200);
    let header = headers
        .iter()
        .find(|(k, _)| k == "x-job-complete")
        .map(|(_, v)| v.as_str());
    assert_eq!(header, Some(complete), "X-Job-Complete mismatch");
    let mut out = vec![String::new(); n];
    for line in stream.lines().filter(|l| !l.trim().is_empty()) {
        let v = parse(line).expect("every streamed line parses whole");
        let idx = v.get("index").and_then(Json::as_u64).unwrap() as usize;
        let r = decode_result(v.get("result").unwrap()).expect("decodable result");
        out[idx] = r.digest();
    }
    out
}

fn stats_path(addr: SocketAddr, path: &[&str]) -> u64 {
    let (status, body) = http_request(addr, "GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    let v = parse(&body).unwrap();
    let mut cur = &v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("stats lacks {path:?}: {body}"));
    }
    cur.as_u64().unwrap()
}

fn full_line_count(ckpt: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(ckpt) else {
        return 0;
    };
    let Some(end) = text.rfind('\n') else {
        return 0;
    };
    text[..=end]
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn wait_lines(ckpt: &Path, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while full_line_count(ckpt) < want {
        assert!(
            Instant::now() < deadline,
            "checkpoint never reached {want} records (have {})",
            full_line_count(ckpt)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_fleet_completes_shared_grid_without_duplicate_sims() {
    let dir = temp_dir("shared");
    let grid = chaos_grid();
    let n = grid.expand().len();
    let want = direct_digests(&grid);

    let mut a = Worker::spawn(&dir, "a", 2, None);
    let mut b = Worker::spawn(&dir, "b", 2, None);
    let addr_a = a.addr();
    let addr_b = b.addr();

    // Submit through A; poll through B — the job must cross the process
    // boundary via the shared data dir, not shared memory.
    let id = submit(addr_a, &grid);
    let status = poll_done(addr_b, id);
    assert_eq!(
        status.get("completed").and_then(Json::as_u64),
        Some(n as u64),
        "fleet completes every slot: {status:?}"
    );
    assert_eq!(result_digests(addr_b, id, n, "true"), want);
    // A's in-memory view trails the shared dir by one scanner pass;
    // wait for its own "done" before asserting its completeness header.
    poll_done(addr_a, id);
    assert_eq!(result_digests(addr_a, id, n, "true"), want);

    // Zero duplicated simulations: per-config leases make the fleet-wide
    // sum exactly the grid size.
    let sims = stats_path(addr_a, &["sims_run"]) + stats_path(addr_b, &["sims_run"]);
    assert_eq!(sims, n as u64, "every config simulated exactly once");

    a.shutdown(addr_a);
    b.shutdown(addr_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_survives_crashes_and_tampered_checkpoint_digest_exact() {
    let dir = temp_dir("crash");
    let grid = chaos_grid();
    let n = grid.expand().len();
    let want = direct_digests(&grid);

    // Life 1: a single-worker member with a rename-time crash injected
    // into its durable cache writes — it aborts itself mid-sweep on the
    // second cache store, after exactly one record reached the
    // checkpoint.
    let mut a = Worker::spawn(&dir, "a", 1, Some("cache/:2"));
    let addr_a = a.addr();
    let id = submit(addr_a, &grid);
    let ckpt = dir.join("jobs").join(format!("job-{id}.ckpt.jsonl"));
    wait_lines(&ckpt, 1);
    a.wait_crash();

    // The fleet is quiescent: garble a byte inside the last durable
    // record (CRC-detectable corruption at rest) and tear the tail the
    // way a writer killed mid-append would.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint exists");
    let end = text.rfind('\n').expect("one full record");
    let start = text[..end].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let mut bytes = text.into_bytes();
    bytes[start + (end - start) / 2] ^= 0x01;
    std::fs::write(&ckpt, &bytes).unwrap();
    std::fs::OpenOptions::new()
        .append(true)
        .open(&ckpt)
        .unwrap()
        .write_all(b"~2a:00000000:{\"index\":99,\"resul")
        .unwrap();
    // Recovery seals the torn fragment into one garbage line, so real
    // progress starts past baseline + 1.
    let baseline = full_line_count(&ckpt);

    // Life 2: two members resume the job; SIGKILL one as soon as the
    // fleet makes progress. The survivor reclaims its leases (dead-pid
    // detection, no expiry wait on Linux) and converges.
    let mut b = Worker::spawn(&dir, "b", 2, None);
    let mut c = Worker::spawn(&dir, "c", 2, None);
    let _addr_b = b.addr();
    let addr_c = c.addr();
    wait_lines(&ckpt, baseline + 2);
    b.kill();

    let status = poll_done(addr_c, id);
    assert_eq!(result_digests(addr_c, id, n, "true"), want);
    let ckrep = status
        .get("checkpoint")
        .expect("status surfaces checkpoint accounting");
    assert!(
        ckrep
            .get("corrupt_frames")
            .and_then(Json::as_u64)
            .expect("corrupt_frames surfaced")
            >= 1,
        "the garbled record must be detected: {status:?}"
    );
    assert!(
        status
            .get("reclaimed_leases")
            .and_then(Json::as_u64)
            .is_some(),
        "reclaimed leases must be surfaced: {status:?}"
    );
    assert!(
        ckpt.with_extension("quarantine").exists()
            || dir
                .join("jobs")
                .join(format!("job-{id}.ckpt.quarantine"))
                .exists(),
        "damaged lines are quarantined, not silently dropped"
    );

    c.shutdown(addr_c);
    let _ = std::fs::remove_dir_all(&dir);
}
