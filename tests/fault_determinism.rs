//! Fault-injection determinism: a faulted run must be byte-identical
//! across both steppers and across replays, and a fault plan that never
//! fires must leave the simulation byte-identical to a fault-free
//! baseline — the fault machinery's mere presence cannot perturb a run.

use flexsim::experiments::{self, Scale};
use flexsim::faults::random_plan;
use flexsim::{run, run_reference, FaultPlan, RoutingSpec, RunConfig, RunResult, TopologySpec};
use proptest::prelude::*;

/// The digest with the label stripped: everything measured, none of the
/// naming. Lets a faulted config (whose label carries a `faults=N`
/// marker) be compared against an identically-behaving fault-free one.
fn digest_body(r: &RunResult) -> String {
    r.digest()[r.label.len()..].to_string()
}

fn small_faulted(routing_pick: usize, load_pick: usize, seed: u64, plan_seed: u64) -> RunConfig {
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(4, 2, true);
    cfg.warmup = 150;
    cfg.measure = 450;
    cfg.detection_interval = 25;
    (cfg.routing, cfg.sim.vcs_per_channel) = match routing_pick % 4 {
        0 => (RoutingSpec::Dor, 1),
        1 => (RoutingSpec::Tfar, 2),
        2 => (RoutingSpec::Duato, 3),
        _ => (RoutingSpec::DatelineDor, 2),
    };
    cfg.load = [0.4, 0.8, 1.1][load_pick % 3];
    cfg.seed = seed;
    let horizon = cfg.warmup + cfg.measure;
    cfg.faults = random_plan(&cfg.topology, horizon, plan_seed);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same config + plan + seed: the activity and dense steppers agree
    /// byte-for-byte, and a replay reproduces the digest exactly.
    #[test]
    fn faulted_runs_are_stepper_identical(
        routing_pick in 0usize..4,
        load_pick in 0usize..3,
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let cfg = small_faulted(routing_pick, load_pick, seed, plan_seed);
        let act = run(&cfg);
        let dense = run_reference(&cfg);
        prop_assert_eq!(
            act.digest(),
            dense.digest(),
            "steppers diverged for {}",
            cfg.label()
        );
        let replay = run(&cfg);
        prop_assert_eq!(act.digest(), replay.digest(), "replay diverged");
    }
}

/// A plan whose every event lands beyond the run horizon arms the whole
/// fault machinery (the engine runs in fault mode throughout) but never
/// fires; each golden-figure configuration must then reproduce its
/// fault-free baseline digest byte-for-byte.
#[test]
fn unfired_plan_matches_fault_free_baseline_on_golden_configs() {
    let golden_heads = [
        experiments::fig5(Scale::Small),
        experiments::fig6(Scale::Small),
        experiments::fig7(Scale::Small),
        experiments::fig8(Scale::Small),
    ];
    for exp in &golden_heads {
        let baseline_cfg = exp.configs[0].clone();
        let total = baseline_cfg.warmup + baseline_cfg.measure;
        let mut armed_cfg = baseline_cfg.clone();
        armed_cfg
            .faults
            .link_kill(total + 1_000, 0)
            .node_stall(total + 2_000, 0, 50);

        let baseline = run(&baseline_cfg);
        let armed = run(&armed_cfg);
        assert_eq!(
            digest_body(&baseline),
            digest_body(&armed),
            "{}: armed-but-unfired plan perturbed the run",
            exp.id
        );
        assert_eq!(armed.fault_losses, 0);
        assert_eq!(armed.fault_rejected, 0);
    }
}

/// An explicitly empty plan is the default: configs compare equal and
/// produce fully identical results, label included.
#[test]
fn empty_plan_is_the_default() {
    let mut cfg = RunConfig::small_default();
    cfg.warmup = 150;
    cfg.measure = 450;
    cfg.routing = RoutingSpec::Tfar;
    cfg.sim.vcs_per_channel = 2;
    cfg.load = 0.5;
    let mut explicit = cfg.clone();
    explicit.faults = FaultPlan::new();
    assert_eq!(cfg, explicit);
    assert_eq!(run(&cfg).digest(), run(&explicit).digest());
}

/// Fault losses and fault rejections actually occur under a plan that
/// severs a dimension for a single-path relation: DOR traffic that needs
/// the dead channel is dropped (in-network) or rejected (at the source),
/// never wedged forever — and the totals agree across steppers.
#[test]
fn severed_dimension_drops_instead_of_wedging() {
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(4, 2, true);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 0.7;
    cfg.warmup = 100;
    cfg.measure = 900;
    cfg.stall_threshold = Some(400);
    cfg.faults.link_kill(200, 2);

    let act = run(&cfg);
    let dense = run_reference(&cfg);
    assert_eq!(act.digest(), dense.digest());
    assert!(
        act.fault_losses + act.fault_rejected > 0,
        "a killed channel under DOR must strand some traffic"
    );
    assert_ne!(
        act.outcome,
        flexsim::RunOutcome::Stalled,
        "dropping unroutable traffic keeps the run live"
    );
}
