//! Umbrella crate for the IPPS'97 deadlock-characterization reproduction.
//!
//! This crate re-exports the public surface of the workspace so the
//! examples and integration tests can use a single dependency. The real
//! functionality lives in the member crates:
//!
//! * [`icn_topology`] — k-ary n-cube network geometry
//! * [`icn_routing`] — DOR, TFAR and avoidance-baseline routing relations
//! * [`icn_traffic`] — traffic patterns and load normalization
//! * [`icn_sim`] — the flit-level network engine
//! * [`icn_cwg`] — channel wait-for graphs, knots, and true deadlock detection
//! * [`icn_metrics`] — measurement plumbing
//! * [`flexsim`] — the orchestrating simulator (detection cadence, recovery,
//!   experiment sweeps)
//! * [`server`] (crate `icn-server`) — the campaign server: HTTP
//!   job API, work-stealing workers, content-addressed result cache

pub use flexsim;
pub use icn_cwg;
pub use icn_metrics;
pub use icn_routing;
pub use icn_server as server;
pub use icn_sim;
pub use icn_topology;
pub use icn_traffic;
