//! End-to-end forensics: capture → replay → minimize → persist.
//!
//! The known-deadlocking micro-config throughout is the Figure-6 corner
//! point — a unidirectional 8-ary 2-cube under DOR with one VC at full
//! load — which reliably knots within a few hundred cycles.

use flexsim::forensics::{
    incidents_equal, minimize, replay, timeline_table, DeadlockIncident, IncidentStore,
};
use flexsim::{run, ForensicsConfig, RoutingSpec, RunConfig, TopologySpec};

/// Shorthand: structural CWG comparison through the cwg crate.
mod cmp {
    pub use icn_cwg::{analyses_equal, graphs_equal};
}

fn fig6_micro() -> RunConfig {
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(8, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = 1600;
    cfg.forensics = Some(ForensicsConfig::default());
    cfg
}

fn captured() -> (RunConfig, Vec<DeadlockIncident>) {
    let cfg = fig6_micro();
    let res = run(&cfg);
    assert!(
        !res.forensic_incidents.is_empty(),
        "the fig6 micro-config must deadlock and be captured"
    );
    (cfg, res.forensic_incidents)
}

#[test]
fn capture_records_cwg_timelines_and_formation_stats() {
    let cfg = fig6_micro();
    let res = run(&cfg);
    assert!(res.deadlocks > 0);
    assert!(!res.forensic_incidents.is_empty());
    assert!(res.forensic_incidents.len() <= ForensicsConfig::default().max_incidents);
    assert!(res.formation_latency.count() > 0);
    assert!(res.formation_spread.count() > 0);

    for inc in &res.forensic_incidents {
        assert_eq!(inc.trace_dropped, 0, "default capacity must not drop");
        assert!(inc.cycle.is_multiple_of(cfg.detection_interval));
        assert!(!inc.analysis.deadlocks.is_empty());
        assert_eq!(inc.config, cfg);
        // Timelines cover exactly the deadlock-set members, each with an
        // injection and a final blocking episode inside the run.
        let members = inc.members();
        assert!(!members.is_empty());
        for &m in &members {
            let tl = inc.timeline_of(m).expect("member timeline");
            assert!(tl.injected_at().is_some());
            let (block_cycle, _, _) = tl.final_block().expect("member must have blocked");
            assert!(block_cycle <= inc.cycle);
        }
        // The knot closed in the final detection interval — otherwise the
        // previous epoch would have caught it.
        let closure = inc.closure_cycle();
        assert!(closure <= inc.cycle);
        assert!(closure > inc.cycle - cfg.detection_interval);
        // The recovery outcome names at least one deadlock-set member.
        assert!(inc.recovery.victims.iter().any(|v| members.contains(v)));
        // The timeline table renders one row per member.
        assert_eq!(timeline_table(inc).len(), members.len());
    }
}

#[test]
fn forensic_capture_never_perturbs_the_run() {
    let mut cfg = fig6_micro();
    let with = run(&cfg);
    cfg.forensics = None;
    let without = run(&cfg);
    assert_eq!(with.delivered, without.delivered);
    assert_eq!(with.generated, without.generated);
    assert_eq!(with.deadlocks, without.deadlocks);
    assert_eq!(with.victims_started, without.victims_started);
    assert!(without.forensic_incidents.is_empty());
}

#[test]
fn capture_is_deterministic_golden() {
    let (_, a) = captured();
    let (_, b) = captured();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert!(
            incidents_equal(x, y),
            "forensic capture must be a pure function of the config"
        );
    }
}

#[test]
fn replay_reproduces_the_identical_knot() {
    let (_, incidents) = captured();
    let inc = &incidents[0];
    let report = replay(inc);
    assert_eq!(
        report.observed_fingerprint,
        Some(inc.fingerprint),
        "replayed wait-state fingerprint must match the capture"
    );
    assert!(
        report.sets_match(),
        "the same deadlock-set message ids must re-form"
    );
    assert!(report.reproduced());
}

#[test]
fn incident_json_round_trips_identically() {
    let (_, incidents) = captured();
    for inc in &incidents {
        let text = inc.to_json_string();
        let back = DeadlockIncident::from_json_str(&text).expect("parse own output");
        assert!(incidents_equal(inc, &back));
        // The CWG and analysis survive as analyzable structures, not just
        // as bytes.
        assert!(cmp::graphs_equal(
            &inc.cwg.build_graph(),
            &back.cwg.build_graph()
        ));
        assert!(cmp::analyses_equal(&inc.analysis, &back.analysis));
        // And serialization is stable (parse → serialize is a fixpoint).
        assert_eq!(text, back.to_json_string());
    }
}

#[test]
fn minimization_shrinks_and_still_knots() {
    let (cfg, incidents) = captured();
    let inc = &incidents[0];
    let m = minimize(inc, true);
    assert!(
        m.verified,
        "the knot-induced sub-CWG must still knot identically"
    );
    assert!(m.kept_messages <= m.original_messages);
    assert_eq!(m.kept_messages, inc.members().len());

    let prefix = m.shortest_prefix.expect("bisection must reproduce");
    assert!(prefix.cycle <= inc.cycle);
    assert!(prefix.cycle + cfg.detection_interval > inc.cycle);
    assert_eq!(prefix.saved_cycles, inc.cycle - prefix.cycle);
    // The shortest reproducing prefix is exactly the knot's closure: the
    // first cycle boundary after the last member entered its final
    // blocking episode.
    assert_eq!(prefix.cycle, inc.closure_cycle());
}

#[test]
fn store_persists_and_reloads_incidents() {
    let (_, incidents) = captured();
    let dir = std::env::temp_dir().join(format!("icn-forensics-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = IncidentStore::open(&dir).unwrap();

    let n = incidents.len().min(2);
    for inc in &incidents[..n] {
        let (json_path, dot_path) = store.save(inc).unwrap();
        assert!(json_path.exists() && dot_path.exists());
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(
            dot.contains("fillcolor=lightcoral"),
            "knot must be highlighted"
        );
        assert!(dot.contains("@ cycle"), "artifact must be titled");
    }
    let index = store.list().unwrap();
    assert_eq!(index.len(), n);
    assert_eq!(index[0].cycle, incidents[0].cycle);
    assert_eq!(index[0].fingerprint, incidents[0].fingerprint);

    let back = store.load(&index[0].file).unwrap();
    assert!(incidents_equal(&incidents[0], &back));

    let _ = std::fs::remove_dir_all(&dir);
}
