//! Cloneable specifications for topology, routing, and recovery.

use icn_routing::{
    DatelineDor, Dor, DuatoFar, MisroutingTfar, NegativeFirst, RoutingAlgorithm, Tfar, WestFirst,
};
use icn_topology::KAryNCube;

/// Network-shape specification (buildable, cloneable, comparable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologySpec {
    pub k: u16,
    pub n: usize,
    pub torus: bool,
    pub bidirectional: bool,
}

impl TopologySpec {
    /// A k-ary n-cube torus.
    pub fn torus(k: u16, n: usize, bidirectional: bool) -> Self {
        TopologySpec {
            k,
            n,
            torus: true,
            bidirectional,
        }
    }

    /// A k-ary n-mesh.
    pub fn mesh(k: u16, n: usize) -> Self {
        TopologySpec {
            k,
            n,
            torus: false,
            bidirectional: true,
        }
    }

    /// Builds the topology.
    pub fn build(&self) -> KAryNCube {
        if self.torus {
            KAryNCube::torus(self.k, self.n, self.bidirectional)
        } else {
            KAryNCube::mesh(self.k, self.n)
        }
    }

    /// Label like `bi-16ary2` or `mesh-8ary2`.
    pub fn label(&self) -> String {
        let kind = match (self.torus, self.bidirectional) {
            (true, true) => "bi",
            (true, false) => "uni",
            (false, _) => "mesh",
        };
        format!("{kind}-{}ary{}", self.k, self.n)
    }
}

/// Routing-relation specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingSpec {
    /// Dimension-order routing, unrestricted VCs (deadlock possible).
    Dor,
    /// Minimal true fully adaptive routing, unrestricted VCs (deadlock
    /// possible).
    Tfar,
    /// Dateline DOR (avoidance baseline, needs ≥2 VCs).
    DatelineDor,
    /// Duato's protocol (avoidance baseline, needs ≥3 VCs).
    Duato,
    /// West-first turn model (2-D meshes only).
    WestFirst,
    /// Negative-first turn model (meshes/hypercubes, any dimension).
    NegativeFirst,
    /// TFAR with a bounded misroute budget per message (non-minimal;
    /// deadlock possible — recovery based).
    Misroute { budget: u8 },
}

impl RoutingSpec {
    /// Instantiates the algorithm.
    pub fn build(&self) -> Box<dyn RoutingAlgorithm> {
        match self {
            RoutingSpec::Dor => Box::new(Dor),
            RoutingSpec::Tfar => Box::new(Tfar),
            RoutingSpec::DatelineDor => Box::new(DatelineDor),
            RoutingSpec::Duato => Box::new(DuatoFar),
            RoutingSpec::WestFirst => Box::new(WestFirst),
            RoutingSpec::NegativeFirst => Box::new(NegativeFirst),
            RoutingSpec::Misroute { budget } => Box::new(MisroutingTfar {
                max_misroutes: *budget,
            }),
        }
    }

    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingSpec::Dor => "DOR",
            RoutingSpec::Tfar => "TFAR",
            RoutingSpec::DatelineDor => "DOR-dateline",
            RoutingSpec::Duato => "Duato",
            RoutingSpec::WestFirst => "west-first",
            RoutingSpec::NegativeFirst => "negative-first",
            RoutingSpec::Misroute { .. } => "TFAR-misroute",
        }
    }

    /// Whether the relation is deadlock-free by construction.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(
            self,
            RoutingSpec::DatelineDor
                | RoutingSpec::Duato
                | RoutingSpec::WestFirst
                | RoutingSpec::NegativeFirst
        )
    }
}

/// How the runner detects deadlocks.
///
/// Both modes compute identical analyses, recoveries, and digests; they
/// differ only in *when* knots become visible and what each check costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectionMode {
    /// Rebuild the CWG from a full wait-for snapshot every
    /// `detection_interval` cycles (the reference path). Formation times
    /// are quantized to the epoch grid.
    #[default]
    Snapshot,
    /// Maintain the CWG incrementally from engine block/acquire/release
    /// events and check for knots **every cycle**; full snapshots are
    /// captured only at epochs that actually need an analysis. Exact
    /// formation cycles, digest-identical to `Snapshot`.
    Incremental,
}

impl DetectionMode {
    /// Stable lower-case name (used in JSON surfaces and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            DetectionMode::Snapshot => "snapshot",
            DetectionMode::Incremental => "incremental",
        }
    }
}

/// What to do when the detector finds a knot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Leave deadlocks in place (characterization only; the network wedges).
    None,
    /// Remove the oldest (lowest-id) deadlock-set message, as a Disha-style
    /// token would resolve in favour of the longest-waiting packet.
    RemoveOldest,
    /// Remove the youngest deadlock-set message.
    RemoveYoungest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_labels() {
        assert_eq!(TopologySpec::torus(16, 2, true).label(), "bi-16ary2");
        assert_eq!(TopologySpec::torus(16, 2, false).label(), "uni-16ary2");
        assert_eq!(TopologySpec::mesh(8, 2).label(), "mesh-8ary2");
    }

    #[test]
    fn build_matches_spec() {
        let t = TopologySpec::torus(4, 3, false).build();
        assert_eq!(t.num_nodes(), 64);
        assert!(!t.is_bidirectional());
        let m = TopologySpec::mesh(5, 2).build();
        assert!(!m.is_torus());
    }

    #[test]
    fn routing_specs_build() {
        for spec in [
            RoutingSpec::Dor,
            RoutingSpec::Tfar,
            RoutingSpec::DatelineDor,
            RoutingSpec::Duato,
            RoutingSpec::WestFirst,
            RoutingSpec::NegativeFirst,
            RoutingSpec::Misroute { budget: 4 },
        ] {
            let algo = spec.build();
            assert!(!algo.name().is_empty());
            assert_eq!(algo.is_deadlock_free(), spec.is_deadlock_free());
        }
    }
}
