//! Durable on-disk writes for campaign artifacts.
//!
//! Every artifact the campaign fleet persists — cache entries, job specs,
//! checkpoints, incident indexes, lease files — goes through this module so
//! the crash-safety discipline lives in exactly one place:
//!
//! * [`write_atomic`]: temp file in the destination directory, full write,
//!   `fsync`, atomic `rename`, then `fsync` of the parent directory. A
//!   reader never observes a half-written file, and a crash between any
//!   two steps leaves either the old content or the new — never a blend.
//! * [`append_line`]: a single `write_all` of one newline-terminated buffer
//!   to an `O_APPEND` handle, then `fsync`. POSIX makes small `O_APPEND`
//!   writes atomic with respect to other appenders, so checkpoint lines
//!   from sibling processes can interleave but never tear each other.
//! * [`create_exclusive`]: `O_CREAT|O_EXCL` claim of a path with initial
//!   content — the primitive under lease acquisition and cross-process job
//!   id allocation. Exactly one claimant wins; losers get `AlreadyExists`.
//!
//! For the chaos harness, the module carries a crash-injection hook: set
//! `ICN_DURABLE_CRASH=<path-substring>:<n>` and the process calls
//! [`std::process::abort`] immediately *before* the rename of the n-th
//! (1-based) atomic write whose destination path contains the substring —
//! simulating a power cut at the worst moment (temp file fully written,
//! destination untouched).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotonic suffix so concurrent writers in one process never collide on
/// a temp name; the pid disambiguates across processes.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path(dest: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = dest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    dest.with_file_name(format!(".{name}.tmp.{}-{seq}", std::process::id()))
}

/// Crash-injection plan parsed once from `ICN_DURABLE_CRASH`.
struct CrashPlan {
    substring: String,
    /// Abort on the n-th (1-based) matching atomic write.
    nth: u64,
    hits: AtomicU64,
}

fn crash_plan() -> Option<&'static CrashPlan> {
    static PLAN: OnceLock<Option<CrashPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("ICN_DURABLE_CRASH").ok()?;
        let (substring, nth) = spec.rsplit_once(':')?;
        let nth: u64 = nth.parse().ok()?;
        (!substring.is_empty() && nth > 0).then(|| CrashPlan {
            substring: substring.to_string(),
            nth,
            hits: AtomicU64::new(0),
        })
    })
    .as_ref()
}

/// Called with the temp file written and synced but the rename not yet
/// issued — the injected "power cut" leaves a fully durable temp file and
/// an untouched (or stale) destination, exactly the window atomic rename
/// exists to protect.
fn maybe_crash_before_rename(dest: &Path) {
    let Some(plan) = crash_plan() else { return };
    if !dest.to_string_lossy().contains(&plan.substring) {
        return;
    }
    if plan.hits.fetch_add(1, Ordering::SeqCst) + 1 == plan.nth {
        // abort(), not exit(): no atexit handlers, no unwinding — the
        // closest std-only stand-in for SIGKILL-at-the-syscall-boundary.
        std::process::abort();
    }
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync is what makes the *rename itself* durable. Windows
    // cannot open directories as files; the fleet targets unix.
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if p.components().next().is_some() => p.to_path_buf(),
        _ => PathBuf::from(Component::CurDir.as_os_str()),
    }
}

/// Atomically replaces `dest` with `bytes`: same-directory temp file,
/// write, fsync, rename over `dest`, fsync of the parent directory. After
/// this returns, the content is durable; if the process dies at any point
/// inside, readers see either the previous content or none — never a
/// torn file.
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(dest);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    maybe_crash_before_rename(dest);
    if let Err(e) = fs::rename(&tmp, dest) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_dir(&parent_of(dest))
}

/// Appends `line` (a newline is added if missing) to `path` as one
/// `write_all` on an `O_APPEND` handle, then fsyncs. The single buffered
/// write is what keeps concurrent appenders from interleaving mid-record:
/// each process's record lands contiguously or not at all (a torn tail,
/// which the scanners detect).
pub fn append_line(path: &Path, line: &str) -> io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    if !line.ends_with('\n') {
        buf.push(b'\n');
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(&buf)?;
    file.sync_all()
}

/// Creates `path` with `bytes` if and only if it does not already exist
/// (`O_CREAT|O_EXCL`), fsyncing file and directory on success. This is the
/// mutual-exclusion primitive for leases and job-id claims: of any number
/// of concurrent claimants, exactly one succeeds; the rest receive
/// [`io::ErrorKind::AlreadyExists`].
///
/// The initial content is written through the exclusive handle itself, so
/// a winner that dies mid-write leaves a short/empty file — callers treat
/// unparseable lease content as a stale claim.
pub fn create_exclusive(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fsync_dir(&parent_of(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icn-durable-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_content_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        let dest = dir.join("artifact.json");
        write_atomic(&dest, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"{\"v\":1}");
        write_atomic(&dest, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"{\"v\":2}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_line_adds_exactly_one_newline() {
        let dir = temp_dir("append");
        let path = dir.join("log.jsonl");
        append_line(&path, "{\"a\":1}").unwrap();
        append_line(&path, "{\"b\":2}\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_exclusive_single_winner() {
        let dir = temp_dir("excl");
        let path = dir.join("claim");
        create_exclusive(&path, b"one").unwrap();
        let err = create_exclusive(&path, b"two").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(fs::read(&path).unwrap(), b"one");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_into_missing_dir_errors_cleanly() {
        let dir = temp_dir("missing");
        let dest = dir.join("nope").join("artifact.json");
        assert!(write_atomic(&dest, b"x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
