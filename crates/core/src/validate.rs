//! Run-coupled validation: invariant torture harness, live differential
//! oracle checks, and forensics-incident auditing.
//!
//! The structure-only validation machinery (naive oracle, brute-force
//! enumerator, random CWG generator, exhaustive small-world explorer)
//! lives in [`icn_validate`] and is re-exported here. This module adds
//! the pieces that need the runner:
//!
//! * [`ValidationObserver`] — a [`RunObserver`] that audits every cycle
//!   and every detection epoch of a live run: flit conservation, monotone
//!   counters, no duplicate deliveries, routing minimality, recovery
//!   liveness, no deadlock-set recurrence under recovery, and a full
//!   differential check of the production analysis (including fingerprint
//!   -skipped epochs) against the naive oracle and the brute-force
//!   enumerator.
//! * [`torture`] / [`torture_regimes`] — long-horizon randomized runs on
//!   **both** steppers with the observer attached, plus a digest
//!   cross-check between them.
//! * [`random_config`] / [`campaign`] — seeded random [`RunConfig`]s
//!   spanning topologies, routings, recoveries, and detection cadences,
//!   each run under full observation.
//! * [`check_incident`] / [`check_incident_store`] — re-audits stored
//!   forensics incidents: the recorded production analysis must match
//!   what the oracle derives from the recorded CWG.
//!
//! Any oracle divergence yields a minimized reproducer
//! ([`divergence_repro_json`]) in the same JSON shape as a forensics CWG
//! snapshot, so it can be replayed through `WaitGraph::from_json`.

use std::collections::{HashMap, HashSet};
use std::io;
use std::ops::ControlFlow;
use std::path::Path;

pub use icn_validate::{
    arena_msgs, check_messages, explore, minimal_deadlock_sets, minimize_divergence,
    oracle_analyze, random_snapshot, Divergence, ExploreConfig, ExploreReport, ExploreRouting,
    GenParams, OracleAnalysis, OracleDependent, OracleKnot, OracleMsg, SplitMix64, BRUTE_FORCE_CAP,
};

use icn_cwg::{Analysis, DependentKind};
use icn_sim::{MsgPhase, Network, StepEvents};
use icn_topology::KAryNCube;
use icn_traffic::{MsgLenDist, Pattern};

use crate::forensics::{CwgMsg, CwgSnapshot, DeadlockIncident, IncidentStore};
use crate::runner::{run_reference_with, run_with, EpochView, RunObserver};
use crate::spec::{RecoveryPolicy, RoutingSpec, TopologySpec};
use crate::RunConfig;

/// Upper bound on retained violation messages (audits keep running, but
/// a broken invariant usually fails every subsequent cycle too).
const MAX_VIOLATIONS: usize = 32;

/// Cycles a recovery victim may spend draining before the liveness audit
/// flags it. Victims drain flit-by-flit and a recovery lane serves one
/// flit per cycle per node, so this is generous for every test topology.
const RECOVERY_DRAIN_BOUND: u64 = 20_000;

/// Renders the production-vs-oracle divergence reproducer: the snapshot is
/// greedily minimized and serialized in the forensics CWG JSON shape
/// (parseable back through `WaitGraph::from_json`).
pub fn divergence_repro_json(num_vertices: usize, msgs: &[OracleMsg]) -> String {
    let minimal = minimize_divergence(num_vertices, msgs);
    CwgSnapshot {
        num_vertices,
        messages: minimal
            .iter()
            .map(|m| CwgMsg {
                id: m.id,
                chain: m.chain.clone(),
                requests: m.requests.clone(),
            })
            .collect(),
    }
    .to_json()
    .to_string()
}

fn sorted_sets<T: Ord + Clone>(sets: impl IntoIterator<Item = Vec<T>>) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = sets
        .into_iter()
        .map(|mut s| {
            s.sort();
            s
        })
        .collect();
    out.sort();
    out
}

/// Compares one epoch's production [`Analysis`] (possibly the empty
/// fingerprint-skip placeholder) against the naive oracle and, on small
/// snapshots, the brute-force enumerator. Returns human-readable
/// disagreements.
pub fn diff_epoch_analysis(
    skipped: bool,
    analysis: &Analysis,
    num_vertices: usize,
    msgs: &[OracleMsg],
) -> Vec<String> {
    let oracle = oracle_analyze(num_vertices, msgs);
    let mut out = Vec::new();

    if skipped {
        // The skip claims the epoch is knot-free by fingerprint match; the
        // oracle re-derives that claim from scratch.
        if oracle.has_deadlock() {
            out.push(format!(
                "fingerprint skip declared a clean epoch but the oracle finds knots: {:?}",
                oracle.deadlock_sets()
            ));
        }
        if analysis.num_blocked != oracle.num_blocked {
            out.push(format!(
                "num_blocked: production={} oracle={}",
                analysis.num_blocked, oracle.num_blocked
            ));
        }
        return out;
    }

    if analysis.has_deadlock() != oracle.has_deadlock() {
        out.push(format!(
            "has_deadlock: production={} oracle={}",
            analysis.has_deadlock(),
            oracle.has_deadlock()
        ));
    }
    if analysis.num_blocked != oracle.num_blocked {
        out.push(format!(
            "num_blocked: production={} oracle={}",
            analysis.num_blocked, oracle.num_blocked
        ));
    }
    let prod_dsets = sorted_sets(analysis.deadlocks.iter().map(|d| d.deadlock_set.clone()));
    if prod_dsets != oracle.deadlock_sets() {
        out.push(format!(
            "deadlock sets: production={prod_dsets:?} oracle={:?}",
            oracle.deadlock_sets()
        ));
    }
    let prod_knots = sorted_sets(analysis.deadlocks.iter().map(|d| d.knot.clone()));
    let orc_knots = sorted_sets(oracle.knots.iter().map(|k| k.knot.clone()));
    if prod_knots != orc_knots {
        out.push(format!(
            "knot vertex sets: production={prod_knots:?} oracle={orc_knots:?}"
        ));
    }
    let prod_rsets = sorted_sets(analysis.deadlocks.iter().map(|d| d.resource_set.clone()));
    let orc_rsets = sorted_sets(oracle.knots.iter().map(|k| k.resource_set.clone()));
    if prod_rsets != orc_rsets {
        out.push(format!(
            "resource sets: production={prod_rsets:?} oracle={orc_rsets:?}"
        ));
    }
    let prod_dep: Vec<(u64, OracleDependent)> = analysis
        .dependent
        .iter()
        .map(|&(id, k)| {
            (
                id,
                match k {
                    DependentKind::Committed => OracleDependent::Committed,
                    DependentKind::Transient => OracleDependent::Transient,
                },
            )
        })
        .collect();
    if prod_dep != oracle.dependent {
        out.push(format!(
            "dependent census: production={prod_dep:?} oracle={:?}",
            oracle.dependent
        ));
    }
    if let Some(brute) = minimal_deadlock_sets(num_vertices, msgs, BRUTE_FORCE_CAP) {
        if brute != oracle.deadlock_sets() {
            out.push(format!(
                "brute-force minimal closed sets: brute={brute:?} oracle={:?}",
                oracle.deadlock_sets()
            ));
        }
    }
    out
}

/// A [`RunObserver`] auditing a live run against the §2 theory and the
/// engine's own conservation laws. Attach with [`run_with`] (or
/// [`run_reference_with`]); afterwards inspect [`violations`]
/// (`ValidationObserver::violations`) — empty means every audited cycle
/// and epoch passed.
pub struct ValidationObserver {
    topo: KAryNCube,
    /// Routing is minimal: delivered hop counts must equal distance.
    minimal_routing: bool,
    /// Recovery is enabled: every knot is broken, so an exact deadlock
    /// set can never recur (victims hold sink chains and never re-block;
    /// message ids are unique per run).
    recurrence_check: bool,
    /// The run detects incrementally: the per-cycle dynamic-CWG verdict
    /// (`EpochView::knot_live_since`) must agree with every epoch's
    /// analysis, and capture-skipped epochs must be re-snapshotted before
    /// auditing (their arena is stale by design).
    incremental: bool,
    /// Scratch arena for re-capturing the wait state at epochs whose
    /// `EpochView::captured` is false.
    audit_arena: icn_sim::SnapshotArena,
    prev_totals: (u64, u64, u64, u64),
    delivered_ids: HashSet<u64>,
    seen_sets: HashSet<Vec<u64>>,
    recovering_since: HashMap<u64, u64>,
    /// Every audit failure, capped at [`MAX_VIOLATIONS`].
    pub violations: Vec<String>,
    /// First oracle divergence, minimized, as forensics-shaped JSON.
    pub divergence_repro: Option<String>,
    /// Cycles audited.
    pub cycles: u64,
    /// Detection epochs audited (every one is differentially checked).
    pub epochs: u64,
    /// Epochs at which the production detector reported a knot.
    pub deadlock_epochs: u64,
    /// Epochs whose snapshot capture was skipped by the incremental
    /// detector and re-taken here for the audit (0 in snapshot mode).
    pub recaptured_epochs: u64,
}

impl ValidationObserver {
    /// Observer for one run of `cfg`.
    pub fn new(cfg: &RunConfig) -> Self {
        ValidationObserver {
            topo: cfg.topology.build(),
            minimal_routing: !matches!(cfg.routing, RoutingSpec::Misroute { .. }),
            recurrence_check: cfg.recovery != RecoveryPolicy::None,
            incremental: cfg.detection == crate::DetectionMode::Incremental,
            audit_arena: icn_sim::SnapshotArena::new(),
            prev_totals: (0, 0, 0, 0),
            delivered_ids: HashSet::new(),
            seen_sets: HashSet::new(),
            recovering_since: HashMap::new(),
            violations: Vec::new(),
            divergence_repro: None,
            cycles: 0,
            epochs: 0,
            deadlock_epochs: 0,
            recaptured_epochs: 0,
        }
    }

    /// True when no audit failed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(&mut self, cycle: u64, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(format!("cycle {cycle}: {msg}"));
        }
    }
}

impl RunObserver for ValidationObserver {
    fn on_cycle(&mut self, net: &Network, ev: &StepEvents) -> ControlFlow<()> {
        self.cycles += 1;
        let cycle = net.cycle();

        // Monotone non-negative lifetime counters.
        let t = net.totals();
        let p = self.prev_totals;
        if t.0 < p.0 || t.1 < p.1 || t.2 < p.2 || t.3 < p.3 {
            self.violate(
                cycle,
                format!("lifetime counters regressed: {p:?} -> {t:?}"),
            );
        }
        self.prev_totals = t;

        // Flit/message conservation, modulo counted fault accounting:
        // generated = injected + source-queued + fault-rejected,
        // injected = delivered + in-network + fault-lost, recovered
        // within delivered. With no fault plan both fault terms are zero
        // and the classic laws hold exactly.
        let (generated, injected, delivered, recovered) = t;
        let (fault_losses, fault_rejected) = net.fault_totals();
        if generated != injected + net.source_queued() as u64 + fault_rejected {
            self.violate(
                cycle,
                format!(
                    "conservation: generated={generated} != injected={injected} \
                     + source_queued={} + fault_rejected={fault_rejected}",
                    net.source_queued()
                ),
            );
        }
        if injected != delivered + net.in_network() as u64 + fault_losses {
            self.violate(
                cycle,
                format!(
                    "conservation: injected={injected} != delivered={delivered} \
                     + in_network={} + fault_losses={fault_losses}",
                    net.in_network()
                ),
            );
        }
        if recovered > delivered {
            self.violate(
                cycle,
                format!("recovered={recovered} exceeds delivered={delivered}"),
            );
        }

        for d in &ev.delivered {
            if !self.delivered_ids.insert(d.id) {
                self.violate(cycle, format!("message {} delivered twice", d.id));
            }
            if d.latency < d.network_latency {
                self.violate(
                    cycle,
                    format!(
                        "message {}: latency {} below network latency {}",
                        d.id, d.latency, d.network_latency
                    ),
                );
            }
            if d.recovered {
                self.recovering_since.remove(&d.id);
                continue;
            }
            // Normal deliveries: the header crossed at least distance
            // channels, exactly distance under a minimal relation, and the
            // message spent at least `len` cycles in the network (its
            // flits serialize one per cycle through every resource).
            let dist = self.topo.distance(d.src, d.dst);
            if d.hops < dist {
                self.violate(
                    cycle,
                    format!(
                        "message {}: {} hops below distance {dist} ({:?} -> {:?})",
                        d.id, d.hops, d.src, d.dst
                    ),
                );
            }
            if self.minimal_routing && d.hops != dist {
                self.violate(
                    cycle,
                    format!(
                        "minimality: message {} took {} hops, distance is {dist}",
                        d.id, d.hops
                    ),
                );
            }
            if d.network_latency < d.len as u64 {
                self.violate(
                    cycle,
                    format!(
                        "message {}: network latency {} below length {}",
                        d.id, d.network_latency, d.len
                    ),
                );
            }
        }
        ControlFlow::Continue(())
    }

    fn on_epoch(&mut self, view: &EpochView<'_>) -> ControlFlow<()> {
        self.epochs += 1;
        let cycle = view.cycle;

        // Engine self-consistency (ownership, occupancy, phase coherence).
        view.net.check_invariants();

        // Differential oracle check — including fingerprint-skipped
        // epochs, where the production placeholder claims "no knots".
        // Incremental capture-skipped epochs leave the arena stale (the
        // live fingerprint proved it redundant), so the audit re-takes a
        // fresh snapshot instead of trusting the detector's claim.
        let (msgs, num_vertices) = if view.captured {
            (arena_msgs(view.arena), view.arena.num_vertices())
        } else {
            self.recaptured_epochs += 1;
            view.net.wait_snapshot_into(&mut self.audit_arena);
            (
                arena_msgs(&self.audit_arena),
                self.audit_arena.num_vertices(),
            )
        };
        let diffs = diff_epoch_analysis(view.skipped, view.analysis, num_vertices, &msgs);
        if !diffs.is_empty() {
            if self.divergence_repro.is_none() {
                self.divergence_repro = Some(divergence_repro_json(num_vertices, &msgs));
            }
            for d in diffs {
                self.violate(cycle, format!("oracle divergence: {d}"));
            }
        }

        // Incremental-mode cross-check: the per-cycle dynamic-CWG verdict
        // must agree with this epoch's exact analysis — a live knot at a
        // "clean" epoch (or vice versa) means the event stream diverged.
        if self.incremental {
            let live = view.knot_live_since.is_some();
            if view.skipped && live {
                self.violate(
                    cycle,
                    format!(
                        "incremental detector reports a knot live since cycle {} \
                         but the epoch was skipped as clean",
                        view.knot_live_since.unwrap()
                    ),
                );
            } else if !view.skipped && live != view.analysis.has_deadlock() {
                self.violate(
                    cycle,
                    format!(
                        "incremental live-knot verdict ({live}) disagrees with the \
                         epoch analysis ({})",
                        view.analysis.has_deadlock()
                    ),
                );
            }
        } else if view.knot_live_since.is_some() {
            self.violate(
                cycle,
                "knot_live_since reported by a snapshot-mode run".to_string(),
            );
        }

        if view.analysis.has_deadlock() {
            self.deadlock_epochs += 1;
            if self.recurrence_check {
                for d in &view.analysis.deadlocks {
                    let mut set = d.deadlock_set.clone();
                    set.sort_unstable();
                    if !self.seen_sets.insert(set.clone()) {
                        self.violate(
                            cycle,
                            format!("deadlock set {set:?} recurred despite recovery"),
                        );
                    }
                }
            }
        }

        // Recovery liveness: victims drain flit-by-flit and must deliver;
        // a victim stuck in the recovery lane past the drain bound means
        // recovery wedged.
        for id in view.net.active_ids() {
            if let Some(info) = view.net.message_info(id) {
                if info.phase == MsgPhase::Recovering {
                    let since = *self.recovering_since.entry(id).or_insert(cycle);
                    if cycle - since > RECOVERY_DRAIN_BOUND {
                        self.violate(
                            cycle,
                            format!("recovery liveness: victim {id} draining since cycle {since}"),
                        );
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Outcome of one observed run.
#[derive(Clone, Debug)]
pub struct TortureOutcome {
    /// Config label.
    pub label: String,
    /// Which stepper drove the run.
    pub stepper: &'static str,
    /// Cycles / epochs audited and epochs with detected knots.
    pub cycles: u64,
    /// Detection epochs audited.
    pub epochs: u64,
    /// Epochs at which the production detector reported a knot.
    pub deadlock_epochs: u64,
    /// Audit failures (empty = pass).
    pub violations: Vec<String>,
    /// Minimized reproducer of the first oracle divergence, if any.
    pub divergence_repro: Option<String>,
}

impl TortureOutcome {
    /// True when the run passed every audit.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `cfg` under full observation on **both** steppers and checks the
/// two runs' results are byte-identical ([`crate::RunResult::digest`]).
/// Returns one outcome per stepper; a digest mismatch is appended to both
/// violation lists.
pub fn torture(cfg: &RunConfig) -> Vec<TortureOutcome> {
    let mut act = ValidationObserver::new(cfg);
    let res_act = run_with(cfg, &mut act);
    let mut dense = ValidationObserver::new(cfg);
    let res_dense = run_reference_with(cfg, &mut dense);

    let mut outcomes: Vec<TortureOutcome> = [("activity", act), ("dense", dense)]
        .into_iter()
        .map(|(stepper, obs)| TortureOutcome {
            label: cfg.label(),
            stepper,
            cycles: obs.cycles,
            epochs: obs.epochs,
            deadlock_epochs: obs.deadlock_epochs,
            violations: obs.violations,
            divergence_repro: obs.divergence_repro,
        })
        .collect();
    if res_act.digest() != res_dense.digest() {
        for o in &mut outcomes {
            o.violations
                .push("stepper digest mismatch: activity != dense".to_string());
        }
    }
    outcomes
}

/// The torture regimes: ≥ 8 qualitatively different operating points —
/// deep saturation with recovery, oversaturated rings, deadlock-free
/// avoidance baselines, non-minimal misrouting, no-recovery wedging,
/// deep buffers (cut-through), and hybrid message lengths. `measure`
/// scales the horizon; warmup stays short so the audit covers the
/// transient too.
pub fn torture_regimes(measure: u64) -> Vec<RunConfig> {
    let base = RunConfig {
        topology: TopologySpec::torus(4, 2, true),
        warmup: 200,
        measure,
        detection_interval: 25,
        ..RunConfig::paper_default()
    };
    let mut regimes = Vec::new();

    // 1. Deep saturation on a unidirectional torus: DOR, 1 VC, the
    // paper's canonical deadlock machine.
    let mut r = base.clone();
    r.topology = TopologySpec::torus(4, 2, false);
    r.routing = RoutingSpec::Dor;
    r.sim.vcs_per_channel = 1;
    r.load = 1.0;
    regimes.push(r);

    // 2. TFAR at saturation with 2 VCs (knots form through adaptive
    // request fans).
    let mut r = base.clone();
    r.routing = RoutingSpec::Tfar;
    r.sim.vcs_per_channel = 2;
    r.load = 1.1;
    regimes.push(r);

    // 3. Oversaturated unidirectional ring, youngest-victim recovery.
    let mut r = base.clone();
    r.topology = TopologySpec::torus(8, 1, false);
    r.routing = RoutingSpec::Dor;
    r.sim.vcs_per_channel = 2;
    r.load = 1.2;
    r.recovery = RecoveryPolicy::RemoveYoungest;
    regimes.push(r);

    // 4. Dateline avoidance at capacity: must stay knot-free throughout.
    let mut r = base.clone();
    r.routing = RoutingSpec::DatelineDor;
    r.sim.vcs_per_channel = 2;
    r.load = 1.0;
    regimes.push(r);

    // 5. West-first turn model on a mesh.
    let mut r = base.clone();
    r.topology = TopologySpec::mesh(4, 2);
    r.routing = RoutingSpec::WestFirst;
    r.sim.vcs_per_channel = 1;
    r.load = 0.9;
    regimes.push(r);

    // 6. Duato's protocol at capacity (adaptive + escape VCs).
    let mut r = base.clone();
    r.routing = RoutingSpec::Duato;
    r.sim.vcs_per_channel = 3;
    r.load = 1.0;
    regimes.push(r);

    // 7. Non-minimal misrouting under pressure (hop-minimality audit
    // relaxes to >= distance).
    let mut r = base.clone();
    r.routing = RoutingSpec::Misroute { budget: 2 };
    r.sim.vcs_per_channel = 2;
    r.load = 1.0;
    regimes.push(r);

    // 8. No recovery: the network wedges and stays wedged; detection,
    // conservation, and the oracle keep auditing the frozen state.
    let mut r = base.clone();
    r.topology = TopologySpec::torus(4, 2, false);
    r.routing = RoutingSpec::Tfar;
    r.sim.vcs_per_channel = 1;
    r.load = 1.1;
    r.recovery = RecoveryPolicy::None;
    regimes.push(r);

    // 9. Deep buffers (virtual cut-through) at saturation: settled-chain
    // snapshots shrink to the header neighbourhood.
    let mut r = base.clone();
    r.topology = TopologySpec::torus(4, 2, false);
    r.routing = RoutingSpec::Dor;
    r.sim.vcs_per_channel = 1;
    r.sim.buffer_depth = 32;
    r.load = 1.0;
    regimes.push(r);

    // 10. Hybrid message lengths with every-epoch cycle census.
    let mut r = base.clone();
    r.routing = RoutingSpec::Tfar;
    r.sim.vcs_per_channel = 1;
    r.len_dist = MsgLenDist::Bimodal {
        short: 4,
        long: 32,
        long_frac: 0.3,
    };
    r.load = 1.0;
    r.count_cycles_every = Some(2);
    regimes.push(r);

    // 11. Transient link flaps under saturation: several outage windows
    // land mid-run while TFAR routes around them; conservation must
    // balance modulo counted fault losses, and recovery must stay live
    // on the knots the disruption induces.
    let mut r = base.clone();
    r.routing = RoutingSpec::Tfar;
    r.sim.vcs_per_channel = 2;
    r.load = 1.1;
    let span = 200 + measure;
    r.faults
        .link_outage(0, span / 8, span / 4)
        .link_outage(5, span / 3, span / 2)
        .link_outage(11, span / 2, (span * 3) / 4);
    regimes.push(r);

    // 12. Permanent link kill with TFAR reroute: one channel dies early
    // and stays dead; surviving traffic reroutes adaptively, traffic
    // caught on the channel is dropped as counted fault loss, and a
    // router stall adds a frozen-node episode on top.
    let mut r = base;
    r.routing = RoutingSpec::Tfar;
    r.sim.vcs_per_channel = 2;
    r.load = 1.0;
    r.faults
        .link_kill(250, 7)
        .node_stall(400, 3, 60)
        .injector_down(500, 9, 80);
    regimes.push(r);

    regimes
}

/// Deterministically draws one randomized [`RunConfig`] from `seed`:
/// topology, routing relation (with a VC count satisfying its minimum),
/// buffers, lengths, load, pattern, detection cadence, fingerprint skip,
/// and recovery policy all vary. Windows are short — the campaign's power
/// is breadth.
pub fn random_config(seed: u64) -> RunConfig {
    let mut rng = SplitMix64::new(seed ^ 0x76a1_1da7_e000_0000);
    let mut cfg = RunConfig::paper_default();

    cfg.topology = match rng.gen_range(4) {
        0 => TopologySpec::torus(4, 2, true),
        1 => TopologySpec::torus(4, 2, false),
        2 => TopologySpec::torus(8, 1, false),
        _ => TopologySpec::mesh(4, 2),
    };
    cfg.routing = match rng.gen_range(6) {
        0 => RoutingSpec::Dor,
        1 => RoutingSpec::Tfar,
        2 => RoutingSpec::DatelineDor,
        3 => RoutingSpec::Duato,
        4 => RoutingSpec::Misroute {
            budget: 1 + rng.gen_range(3) as u8,
        },
        _ => RoutingSpec::WestFirst,
    };
    if cfg.routing == RoutingSpec::WestFirst {
        // Turn models here are 2-D mesh relations.
        cfg.topology = TopologySpec::mesh(4, 2);
    }
    let min_vcs = match cfg.routing {
        RoutingSpec::DatelineDor => 2,
        RoutingSpec::Duato => 3,
        _ => 1,
    };
    cfg.sim.vcs_per_channel = min_vcs + rng.gen_range(2);
    cfg.sim.buffer_depth = [2, 4, 8][rng.gen_range(3)];
    cfg.sim.msg_len = [4, 8][rng.gen_range(2)];
    cfg.len_dist = MsgLenDist::Fixed(cfg.sim.msg_len);
    // Every drawn topology has a power-of-two node count, so permutation
    // patterns are always admissible.
    cfg.pattern = match rng.gen_range(4) {
        0 => Pattern::Transpose,
        1 => Pattern::BitReversal,
        _ => Pattern::Uniform,
    };
    cfg.load = 0.3 + (rng.gen_range(11) as f64) * 0.1;
    cfg.detection_interval = [10, 25, 50][rng.gen_range(3)];
    cfg.fingerprint_skip = rng.gen_range(2) == 0;
    cfg.recovery = match rng.gen_range(8) {
        0 => RecoveryPolicy::None,
        1..=2 => RecoveryPolicy::RemoveYoungest,
        _ => RecoveryPolicy::RemoveOldest,
    };
    cfg.count_cycles_every = if rng.gen_range(4) == 0 { Some(3) } else { None };
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.seed = rng.next_u64();
    cfg
}

/// Outcome of a randomized live campaign ([`campaign`]).
#[derive(Clone, Debug, Default)]
pub struct CampaignOutcome {
    /// Configs run.
    pub configs: usize,
    /// Detection epochs differentially checked against the oracle.
    pub epochs_checked: u64,
    /// Epochs at which the production detector reported a knot.
    pub deadlock_epochs: u64,
    /// Per-config failures: `(label, violations, minimized repro)`.
    pub failures: Vec<(String, Vec<String>, Option<String>)>,
}

impl CampaignOutcome {
    /// True when every config passed every audit.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `num_configs` seeded random configs (seeds `base_seed..`), each
/// under a fresh [`ValidationObserver`] on the activity stepper.
pub fn campaign(num_configs: usize, base_seed: u64) -> CampaignOutcome {
    campaign_with_shards(num_configs, base_seed, 1)
}

/// [`campaign`] with every drawn config forced to `shards` spatial
/// shards, keeping the oracle auditing the sharded engine: the observer's
/// per-epoch differential checks run against sharded stepping and the
/// fragment-assembled snapshots. Digest-neutral, so the audit verdicts
/// must be identical to the serial campaign's.
pub fn campaign_with_shards(num_configs: usize, base_seed: u64, shards: usize) -> CampaignOutcome {
    campaign_with(num_configs, base_seed, |cfg| cfg.shards = shards)
}

/// [`campaign`] with every drawn config forced to
/// [`DetectionMode::Incremental`](crate::DetectionMode::Incremental):
/// the observer audits the event-patched detector's every epoch — the
/// per-cycle live-knot verdict against the exact analysis, and
/// capture-skipped epochs against a fresh re-snapshot of the live
/// network.
pub fn campaign_incremental(num_configs: usize, base_seed: u64) -> CampaignOutcome {
    campaign_with(num_configs, base_seed, |cfg| {
        cfg.detection = crate::DetectionMode::Incremental;
    })
}

fn campaign_with(
    num_configs: usize,
    base_seed: u64,
    tweak: impl Fn(&mut RunConfig),
) -> CampaignOutcome {
    let mut out = CampaignOutcome::default();
    for i in 0..num_configs {
        let mut cfg = random_config(base_seed + i as u64);
        tweak(&mut cfg);
        let mut obs = ValidationObserver::new(&cfg);
        run_with(&cfg, &mut obs);
        out.configs += 1;
        out.epochs_checked += obs.epochs;
        out.deadlock_epochs += obs.deadlock_epochs;
        if !obs.ok() {
            out.failures
                .push((cfg.label(), obs.violations, obs.divergence_repro));
        }
    }
    out
}

/// Re-audits one stored forensics incident: the recorded production
/// analysis must match what the oracle derives from the recorded CWG,
/// and the three structure-level implementations must agree on it.
pub fn check_incident(inc: &DeadlockIncident) -> Vec<String> {
    let msgs: Vec<OracleMsg> = inc
        .cwg
        .messages
        .iter()
        .map(|m| OracleMsg {
            id: m.id,
            chain: m.chain.clone(),
            requests: m.requests.clone(),
        })
        .collect();
    let mut out = diff_epoch_analysis(false, &inc.analysis, inc.cwg.num_vertices, &msgs);
    // Cross-check the structure-only harness too (fresh graph rebuild,
    // slim detector path, brute force).
    for d in check_messages(inc.cwg.num_vertices, &msgs) {
        out.push(format!("rebuilt-graph divergence: {d}"));
    }
    // An incident records a detection: it must actually contain a knot.
    if !inc.analysis.has_deadlock() {
        out.push("incident stores no deadlock".to_string());
    }
    out
}

/// Audits every incident in a forensics store directory. Returns
/// `(file name, problems)` pairs for incidents that failed, or an I/O
/// error if the store is unreadable.
pub fn check_incident_store(dir: impl AsRef<Path>) -> io::Result<Vec<(String, Vec<String>)>> {
    let store = IncidentStore::open(dir)?;
    let mut failures = Vec::new();
    for entry in store.list()? {
        let inc = store.load(&entry.file)?;
        let problems = check_incident(&inc);
        if !problems.is_empty() {
            failures.push((entry.file, problems));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_passes_a_clean_low_load_run() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.2;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        cfg.warmup = 200;
        cfg.measure = 800;
        let mut obs = ValidationObserver::new(&cfg);
        run_with(&cfg, &mut obs);
        assert!(obs.ok(), "violations: {:?}", obs.violations);
        assert!(obs.epochs > 0);
        assert_eq!(obs.cycles, cfg.warmup + cfg.measure);
    }

    #[test]
    fn observer_passes_a_deadlock_heavy_run() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(4, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.warmup = 200;
        cfg.measure = 1500;
        cfg.detection_interval = 25;
        let mut obs = ValidationObserver::new(&cfg);
        run_with(&cfg, &mut obs);
        assert!(obs.ok(), "violations: {:?}", obs.violations);
        assert!(obs.deadlock_epochs > 0, "regime must actually deadlock");
    }

    #[test]
    fn observer_audits_an_incremental_deadlock_heavy_run() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(4, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.warmup = 200;
        cfg.measure = 1500;
        cfg.detection_interval = 25;
        cfg.detection = crate::DetectionMode::Incremental;
        let mut obs = ValidationObserver::new(&cfg);
        run_with(&cfg, &mut obs);
        assert!(obs.ok(), "violations: {:?}", obs.violations);
        assert!(obs.deadlock_epochs > 0, "regime must actually deadlock");
        // The fingerprint fast path skips captures on clean epochs; the
        // observer must have audited those from fresh re-snapshots.
        assert!(obs.recaptured_epochs > 0, "capture-skip never exercised");
    }

    #[test]
    fn torture_regimes_cover_the_required_breadth() {
        let regimes = torture_regimes(1_000);
        assert!(regimes.len() >= 8);
        // Deep saturation with recovery is present.
        assert!(regimes
            .iter()
            .any(|r| r.load >= 1.0 && r.recovery != RecoveryPolicy::None));
        // Every label is distinct (genuinely different regimes).
        let labels: HashSet<String> = regimes.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), regimes.len());
    }

    #[test]
    fn random_configs_are_deterministic_and_valid() {
        for seed in 0..32 {
            let a = random_config(seed);
            let b = random_config(seed);
            assert_eq!(a, b);
            a.sim.validate();
            let min = match a.routing {
                RoutingSpec::DatelineDor => 2,
                RoutingSpec::Duato => 3,
                _ => 1,
            };
            assert!(a.sim.vcs_per_channel >= min);
            if a.routing == RoutingSpec::WestFirst {
                assert!(!a.topology.torus);
            }
        }
    }

    #[test]
    fn divergence_repro_is_parseable_cwg_json() {
        let msgs = vec![
            OracleMsg {
                id: 1,
                chain: vec![0, 1],
                requests: vec![2],
            },
            OracleMsg {
                id: 2,
                chain: vec![2, 3],
                requests: vec![0],
            },
        ];
        let json = divergence_repro_json(4, &msgs);
        let parsed = icn_cwg::jsonio::parse(&json).expect("valid json");
        let snap = CwgSnapshot::from_json(&parsed).expect("valid cwg snapshot");
        assert_eq!(snap.num_vertices, 4);
    }
}
