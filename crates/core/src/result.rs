//! Per-run measurement record and derived metrics.

use icn_metrics::{Histogram, Mean, TimeSeries};

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The network was empty (nothing in flight or source-queued) when the
    /// cycle budget ran out.
    Drained,
    /// The cycle budget ran out with traffic still in flight — the normal
    /// ending for a saturated steady-state measurement.
    CyclesExhausted,
    /// The progress watchdog fired: no delivery, injection, link movement,
    /// drain, fault accounting, or recovery start for
    /// [`crate::RunConfig::stall_threshold`] cycles. See
    /// [`RunResult::stall`] for the forensic summary.
    Stalled,
    /// The run completed its budget but fault injection dropped or
    /// rejected traffic along the way.
    Faulted,
}

impl RunOutcome {
    /// Stable lower-case name, used in digests, JSON, and reports.
    pub fn name(self) -> &'static str {
        match self {
            RunOutcome::Drained => "drained",
            RunOutcome::CyclesExhausted => "cycles-exhausted",
            RunOutcome::Stalled => "stalled",
            RunOutcome::Faulted => "faulted",
        }
    }
}

/// Forensic summary attached to a [`RunOutcome::Stalled`] run: where the
/// watchdog fired and what the network looked like at that moment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Last cycle that showed any progress signal.
    pub last_progress_cycle: u64,
    /// Messages holding network resources when the run was cut.
    pub in_network: usize,
    /// Of those, how many were blocked.
    pub blocked: usize,
    /// Messages still waiting in source queues.
    pub source_queued: usize,
}

/// Everything measured during one simulation point.
///
/// Raw counters cover the measurement window only (after warm-up);
/// detection and recovery run during warm-up too, but are not recorded.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Label of the configuration that produced this result.
    pub label: String,
    /// Offered load (fraction of capacity).
    pub offered_load: f64,
    /// Measured cycles.
    pub cycles: u64,
    /// Nodes in the network.
    pub nodes: usize,
    /// Network capacity in flits/node/cycle (for normalization).
    pub capacity: f64,
    /// Message length in flits.
    pub msg_len: usize,

    /// Messages generated / injected / delivered / recovered in-window.
    pub generated: u64,
    pub injected: u64,
    pub delivered: u64,
    pub recovered: u64,
    /// Flits delivered in-window (exact, even for hybrid lengths).
    pub delivered_flits: u64,
    /// Message latency, generation → delivery.
    pub latency: Histogram,
    /// Flits that crossed physical links (utilization).
    pub link_flits: u64,

    /// True deadlocks (knots) detected in-window.
    pub deadlocks: u64,
    /// Split by §2.2 classification.
    pub single_cycle_deadlocks: u64,
    pub multi_cycle_deadlocks: u64,
    /// Distribution of deadlock-set sizes (messages per knot).
    pub deadlock_set: Histogram,
    /// Distribution of resource-set sizes (VCs held by deadlock sets).
    pub resource_set: Histogram,
    /// Distribution of knot cycle densities.
    pub knot_density: Histogram,
    /// Dependent messages observed alongside deadlocks (§2.2.1).
    pub dependent_committed: u64,
    pub dependent_transient: u64,

    /// Blocked in-network messages, sampled at detection epochs.
    pub blocked: Mean,
    /// Messages holding network resources, sampled at detection epochs.
    pub in_network: Mean,
    /// Source-queued messages, sampled at detection epochs.
    pub source_queued: Mean,
    /// CWG elementary-cycle counts at counting epochs (cycle, count).
    pub cwg_cycles: TimeSeries,
    /// Blocked fraction at the same counting epochs (cycle, fraction).
    pub blocked_frac: TimeSeries,
    /// Whether any cycle count hit the enumeration cap.
    pub cycles_capped: bool,
    /// Counting epochs where resource-dependency cycles existed but no
    /// knot did — direct sightings of §2.2.3 *cyclic non-deadlocks*.
    pub cyclic_nondeadlock_epochs: u64,
    /// Counting epochs inspected.
    pub counting_epochs: u64,

    /// Recovery victims dispatched (≥ `deadlocks`: large wedges need
    /// several victims to clear).
    pub victims_started: u64,
    /// Cycles from a victim entering the recovery lane to its final flit
    /// draining (recovery resolution latency).
    pub resolution_latency: Histogram,
    /// Detection lag per knot: cycles from the knot's formation (the
    /// latest block stamp across the deadlock set) to the detection epoch
    /// that found it. Snapshot mode's lag is bounded by
    /// `detection_interval`; incremental mode records the same values
    /// (digest-identical) but exposes per-cycle liveness to observers.
    pub detection_lag: Histogram,
    /// The first few deadlocks in full detail, for inspection.
    pub incidents: Vec<Incident>,

    /// Knot formation latency: injection → knot closure, per deadlock-set
    /// member. Populated only when [`RunConfig::forensics`] is set (the
    /// timelines come from the tracer), and over the whole run including
    /// warm-up — forensics diagnoses formation, it is not a §3 metric.
    ///
    /// [`RunConfig::forensics`]: crate::RunConfig::forensics
    pub formation_latency: Histogram,
    /// Knot formation spread per knot: cycles between the first member
    /// entering its final blocking episode and the knot closing (the last
    /// member blocking). Forensic runs only, whole run.
    pub formation_spread: Histogram,
    /// Full forensic incident records (capped by
    /// [`ForensicsConfig::max_incidents`]). Forensic runs only, whole run.
    ///
    /// [`ForensicsConfig::max_incidents`]: crate::ForensicsConfig::max_incidents
    pub forensic_incidents: Vec<crate::forensics::DeadlockIncident>,

    /// How the run ended (drained, budget exhausted, watchdog stall,
    /// or completed-with-faults).
    pub outcome: RunOutcome,
    /// In-network messages dropped by fault injection over the *whole*
    /// run, warm-up included — a robustness metric, not a §3 statistic.
    pub fault_losses: u64,
    /// Source-queued messages rejected as unroutable under the active
    /// fault set, whole run.
    pub fault_rejected: u64,
    /// Present only when the progress watchdog cut the run.
    pub stall: Option<StallReport>,
}

/// A single detected deadlock, summarized.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Simulation cycle of the detection epoch.
    pub cycle: u64,
    /// Exact formation cycle: the latest cycle at which a deadlock-set
    /// member entered its final blocking episode. Always ≤ `cycle`.
    pub formation_cycle: u64,
    /// Messages in the knot's deadlock set.
    pub deadlock_set_size: usize,
    /// VCs held by the deadlock set.
    pub resource_set_size: usize,
    /// Elementary cycles inside the knot (capped value).
    pub knot_cycle_density: u64,
    /// Dependent messages observed alongside this snapshot's knots.
    pub dependents: usize,
}

impl RunResult {
    pub(crate) fn new(
        label: String,
        offered_load: f64,
        nodes: usize,
        capacity: f64,
        msg_len: usize,
    ) -> Self {
        RunResult {
            label,
            offered_load,
            cycles: 0,
            nodes,
            capacity,
            msg_len,
            generated: 0,
            injected: 0,
            delivered: 0,
            recovered: 0,
            delivered_flits: 0,
            latency: Histogram::new(),
            link_flits: 0,
            deadlocks: 0,
            single_cycle_deadlocks: 0,
            multi_cycle_deadlocks: 0,
            deadlock_set: Histogram::new(),
            resource_set: Histogram::new(),
            knot_density: Histogram::new(),
            dependent_committed: 0,
            dependent_transient: 0,
            blocked: Mean::new(),
            in_network: Mean::new(),
            source_queued: Mean::new(),
            cwg_cycles: TimeSeries::new(),
            blocked_frac: TimeSeries::new(),
            cycles_capped: false,
            cyclic_nondeadlock_epochs: 0,
            counting_epochs: 0,
            victims_started: 0,
            resolution_latency: Histogram::new(),
            detection_lag: Histogram::new(),
            incidents: Vec::new(),
            formation_latency: Histogram::new(),
            formation_spread: Histogram::new(),
            forensic_incidents: Vec::new(),
            outcome: RunOutcome::CyclesExhausted,
            fault_losses: 0,
            fault_rejected: 0,
            stall: None,
        }
    }

    /// How many detailed [`Incident`] records are retained per run.
    pub const MAX_INCIDENTS: usize = 200;

    /// Deadlocks per message delivered — the paper's headline
    /// "normalized deadlocks" metric.
    pub fn normalized_deadlocks(&self) -> f64 {
        if self.delivered == 0 {
            if self.deadlocks == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.deadlocks as f64 / self.delivered as f64
        }
    }

    /// Deadlocks normalized by the average number of messages in the
    /// network (Figure 8b's y-axis-normalization).
    pub fn deadlocks_per_in_network_msg(&self) -> f64 {
        let avg = self.in_network.mean();
        if avg == 0.0 {
            0.0
        } else {
            self.deadlocks as f64 / avg
        }
    }

    /// Delivered throughput in flits per node per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delivered_flits as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Delivered throughput as a fraction of capacity (accepted load).
    pub fn accepted_load(&self) -> f64 {
        self.throughput() / self.capacity
    }

    /// Fraction of in-network messages that were blocked, averaged over
    /// detection epochs.
    pub fn blocked_fraction(&self) -> f64 {
        let inn = self.in_network.mean();
        if inn == 0.0 {
            0.0
        } else {
            self.blocked.mean() / inn
        }
    }

    /// Mean message latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Largest instantaneous CWG cycle count observed.
    pub fn max_cwg_cycles(&self) -> f64 {
        self.cwg_cycles.max().unwrap_or(0.0)
    }

    /// A byte-exact rendering of every counter and distribution in this
    /// result. Floating-point values are digested via `to_bits` so that
    /// even last-ulp divergence (e.g. from a different accumulation
    /// order) is caught. Two results with equal digests are equal for
    /// every purpose the paper's tables and figures care about — this is
    /// the equivalence the determinism and engine-differential tests
    /// compare.
    pub fn digest(&self) -> String {
        use std::fmt::Write;
        fn hist_digest(h: &Histogram, out: &mut String) {
            use std::fmt::Write;
            let _ = write!(
                out,
                "[n={} sum={} min={} max={} p50={} p90={}]",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.9)
            );
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{} cycles={} gen={} inj={} del={} rec={} flits={} links={} \
             dead={} single={} multi={} depc={} dept={} capped={} cnd={} epochs={} victims={} ",
            self.label,
            self.cycles,
            self.generated,
            self.injected,
            self.delivered,
            self.recovered,
            self.delivered_flits,
            self.link_flits,
            self.deadlocks,
            self.single_cycle_deadlocks,
            self.multi_cycle_deadlocks,
            self.dependent_committed,
            self.dependent_transient,
            self.cycles_capped,
            self.cyclic_nondeadlock_epochs,
            self.counting_epochs,
            self.victims_started,
        );
        for h in [
            &self.latency,
            &self.deadlock_set,
            &self.resource_set,
            &self.knot_density,
            &self.resolution_latency,
            &self.formation_latency,
            &self.formation_spread,
        ] {
            hist_digest(h, &mut s);
        }
        for m in [&self.blocked, &self.in_network, &self.source_queued] {
            let _ = write!(s, "(n={} mean={:016x})", m.count(), m.mean().to_bits());
        }
        for ts in [&self.cwg_cycles, &self.blocked_frac] {
            for (c, v) in ts.points() {
                let _ = write!(s, "@{c}:{:016x}", v.to_bits());
            }
        }
        for i in &self.incidents {
            let _ = write!(
                s,
                "i({},{},{},{},{})",
                i.cycle,
                i.deadlock_set_size,
                i.resource_set_size,
                i.knot_cycle_density,
                i.dependents
            );
        }
        for f in &self.forensic_incidents {
            let _ = write!(s, "f({},{},{:016x})", f.seq, f.cycle, f.fingerprint);
        }
        // Robustness fields are appended last so a fault-free digest is a
        // strict extension of the pre-fault format.
        let _ = write!(
            s,
            " outcome={} flost={} frej={}",
            self.outcome.name(),
            self.fault_losses,
            self.fault_rejected
        );
        if let Some(st) = &self.stall {
            let _ = write!(
                s,
                " stall({},{},{},{},{})",
                st.cycle, st.last_progress_cycle, st.in_network, st.blocked, st.source_queued
            );
        }
        // Formation-time data (engine v2) appends after everything above,
        // keeping the earlier digest a strict prefix of the new one.
        let _ = write!(s, " lag=");
        hist_digest(&self.detection_lag, &mut s);
        for i in &self.incidents {
            let _ = write!(s, "k({},{})", i.cycle, i.formation_cycle);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunResult {
        RunResult::new("t".into(), 0.5, 256, 0.5, 32)
    }

    #[test]
    fn normalized_deadlocks_guards_zero_delivery() {
        let mut r = blank();
        assert_eq!(r.normalized_deadlocks(), 0.0);
        r.deadlocks = 3;
        assert!(r.normalized_deadlocks().is_infinite());
        r.delivered = 300;
        assert!((r.normalized_deadlocks() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn throughput_and_accepted_load() {
        let mut r = blank();
        r.cycles = 1000;
        r.delivered = 1000;
        r.delivered_flits = 32_000; // over 256 nodes x 1000 cycles
        assert!((r.throughput() - 0.125).abs() < 1e-12);
        assert!((r.accepted_load() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn blocked_fraction() {
        let mut r = blank();
        r.in_network.record(10.0);
        r.blocked.record(4.0);
        assert!((r.blocked_fraction() - 0.4).abs() < 1e-12);
    }

    /// Formation-time data must be digest-bearing: tampering with an
    /// incident's formation cycle, or with the detection-lag histogram,
    /// has to change the digest so the goldens pin it.
    #[test]
    fn digest_covers_formation_suffix() {
        let mut r = blank();
        r.incidents.push(Incident {
            cycle: 100,
            formation_cycle: 87,
            deadlock_set_size: 4,
            resource_set_size: 8,
            knot_cycle_density: 1,
            dependents: 0,
        });
        let clean = r.digest();
        assert!(clean.contains(" lag=["), "suffix marker missing: {clean}");
        assert!(
            clean.contains("k(100,87)"),
            "formation pair missing: {clean}"
        );

        r.incidents[0].formation_cycle = 88;
        let tampered = r.digest();
        assert_ne!(clean, tampered, "formation cycle not digest-bearing");

        r.incidents[0].formation_cycle = 87;
        assert_eq!(r.digest(), clean);
        r.detection_lag.record(13);
        assert_ne!(r.digest(), clean, "detection lag not digest-bearing");
    }
}
