//! Lossless [`RunResult`] serialization for sweep checkpoints.
//!
//! Interrupted campaigns must resume with *byte-identical* results — a
//! resumed sweep's digests are compared against fresh runs in tests — so
//! this codec round-trips every counter, distribution, and float exactly:
//! `f64`s travel as `u64` bit patterns, histograms and Welford
//! accumulators serialize their full internal state, and forensic
//! incidents reuse their own exact JSON form.
//!
//! This is deliberately distinct from [`crate::json::result_to_json`],
//! which exports a flat, human-oriented summary of *derived* metrics and
//! is lossy by design.

use icn_metrics::{Histogram, Mean, TimeSeries};

use crate::forensics::DeadlockIncident;
use crate::jsonio::{
    bad, f64_bits, get, get_f64_bits, get_u64, get_u64_vec, obj, u64_arr, Json, ParseError,
};
use crate::result::{Incident, RunOutcome, RunResult, StallReport};

fn hist_to_json(h: &Histogram) -> Json {
    u64_arr(h.encode())
}

fn hist_from_json(v: &Json, key: &str) -> Result<Histogram, ParseError> {
    Histogram::decode(&get_u64_vec(v, key)?)
        .ok_or_else(|| bad(&format!("`{key}` is not a histogram encoding")))
}

fn mean_to_json(m: &Mean) -> Json {
    u64_arr(m.encode())
}

fn mean_from_json(v: &Json, key: &str) -> Result<Mean, ParseError> {
    let words = get_u64_vec(v, key)?;
    let arr: [u64; 3] = words
        .try_into()
        .map_err(|_| bad(&format!("`{key}` is not a mean encoding")))?;
    Ok(Mean::decode(arr))
}

fn series_to_json(ts: &TimeSeries) -> Json {
    obj(vec![
        ("cycles", u64_arr(ts.points().iter().map(|&(c, _)| c))),
        (
            "values",
            u64_arr(ts.points().iter().map(|&(_, v)| v.to_bits())),
        ),
    ])
}

fn series_from_json(v: &Json, key: &str) -> Result<TimeSeries, ParseError> {
    let s = get(v, key)?;
    let cycles = get_u64_vec(s, "cycles")?;
    let values = get_u64_vec(s, "values")?;
    if cycles.len() != values.len() {
        return Err(bad(&format!("`{key}` cycle/value length mismatch")));
    }
    Ok(TimeSeries::from_points(
        cycles
            .into_iter()
            .zip(values.into_iter().map(f64::from_bits))
            .collect(),
    ))
}

fn outcome_from_name(s: &str) -> Result<RunOutcome, ParseError> {
    Ok(match s {
        "drained" => RunOutcome::Drained,
        "cycles-exhausted" => RunOutcome::CyclesExhausted,
        "stalled" => RunOutcome::Stalled,
        "faulted" => RunOutcome::Faulted,
        other => return Err(bad(&format!("unknown outcome `{other}`"))),
    })
}

/// Serializes a full [`RunResult`], losslessly.
pub fn encode_result(r: &RunResult) -> Json {
    obj(vec![
        ("label", Json::Str(r.label.clone())),
        ("offered_load", f64_bits(r.offered_load)),
        ("cycles", Json::U64(r.cycles)),
        ("nodes", Json::U64(r.nodes as u64)),
        ("capacity", f64_bits(r.capacity)),
        ("msg_len", Json::U64(r.msg_len as u64)),
        ("generated", Json::U64(r.generated)),
        ("injected", Json::U64(r.injected)),
        ("delivered", Json::U64(r.delivered)),
        ("recovered", Json::U64(r.recovered)),
        ("delivered_flits", Json::U64(r.delivered_flits)),
        ("latency", hist_to_json(&r.latency)),
        ("link_flits", Json::U64(r.link_flits)),
        ("deadlocks", Json::U64(r.deadlocks)),
        ("single_cycle", Json::U64(r.single_cycle_deadlocks)),
        ("multi_cycle", Json::U64(r.multi_cycle_deadlocks)),
        ("deadlock_set", hist_to_json(&r.deadlock_set)),
        ("resource_set", hist_to_json(&r.resource_set)),
        ("knot_density", hist_to_json(&r.knot_density)),
        ("dependent_committed", Json::U64(r.dependent_committed)),
        ("dependent_transient", Json::U64(r.dependent_transient)),
        ("blocked", mean_to_json(&r.blocked)),
        ("in_network", mean_to_json(&r.in_network)),
        ("source_queued", mean_to_json(&r.source_queued)),
        ("cwg_cycles", series_to_json(&r.cwg_cycles)),
        ("blocked_frac", series_to_json(&r.blocked_frac)),
        ("cycles_capped", Json::Bool(r.cycles_capped)),
        (
            "cyclic_nondeadlock_epochs",
            Json::U64(r.cyclic_nondeadlock_epochs),
        ),
        ("counting_epochs", Json::U64(r.counting_epochs)),
        ("victims_started", Json::U64(r.victims_started)),
        ("resolution_latency", hist_to_json(&r.resolution_latency)),
        ("detection_lag", hist_to_json(&r.detection_lag)),
        (
            "incidents",
            Json::Arr(
                r.incidents
                    .iter()
                    .map(|i| {
                        u64_arr([
                            i.cycle,
                            i.deadlock_set_size as u64,
                            i.resource_set_size as u64,
                            i.knot_cycle_density,
                            i.dependents as u64,
                            i.formation_cycle,
                        ])
                    })
                    .collect(),
            ),
        ),
        ("formation_latency", hist_to_json(&r.formation_latency)),
        ("formation_spread", hist_to_json(&r.formation_spread)),
        (
            "forensic_incidents",
            Json::Arr(r.forensic_incidents.iter().map(|f| f.to_json()).collect()),
        ),
        ("outcome", Json::Str(r.outcome.name().to_string())),
        ("fault_losses", Json::U64(r.fault_losses)),
        ("fault_rejected", Json::U64(r.fault_rejected)),
        (
            "stall",
            match &r.stall {
                Some(st) => u64_arr([
                    st.cycle,
                    st.last_progress_cycle,
                    st.in_network as u64,
                    st.blocked as u64,
                    st.source_queued as u64,
                ]),
                None => Json::Null,
            },
        ),
    ])
}

/// Rebuilds a [`RunResult`] from [`encode_result`] output. The round trip
/// is digest-exact: `decode_result(&encode_result(&r))?.digest() ==
/// r.digest()`.
pub fn decode_result(v: &Json) -> Result<RunResult, ParseError> {
    let mut r = RunResult::new(
        get(v, "label")?
            .as_str()
            .ok_or_else(|| bad("`label` must be a string"))?
            .to_string(),
        get_f64_bits(v, "offered_load")?,
        get_u64(v, "nodes")? as usize,
        get_f64_bits(v, "capacity")?,
        get_u64(v, "msg_len")? as usize,
    );
    r.cycles = get_u64(v, "cycles")?;
    r.generated = get_u64(v, "generated")?;
    r.injected = get_u64(v, "injected")?;
    r.delivered = get_u64(v, "delivered")?;
    r.recovered = get_u64(v, "recovered")?;
    r.delivered_flits = get_u64(v, "delivered_flits")?;
    r.latency = hist_from_json(v, "latency")?;
    r.link_flits = get_u64(v, "link_flits")?;
    r.deadlocks = get_u64(v, "deadlocks")?;
    r.single_cycle_deadlocks = get_u64(v, "single_cycle")?;
    r.multi_cycle_deadlocks = get_u64(v, "multi_cycle")?;
    r.deadlock_set = hist_from_json(v, "deadlock_set")?;
    r.resource_set = hist_from_json(v, "resource_set")?;
    r.knot_density = hist_from_json(v, "knot_density")?;
    r.dependent_committed = get_u64(v, "dependent_committed")?;
    r.dependent_transient = get_u64(v, "dependent_transient")?;
    r.blocked = mean_from_json(v, "blocked")?;
    r.in_network = mean_from_json(v, "in_network")?;
    r.source_queued = mean_from_json(v, "source_queued")?;
    r.cwg_cycles = series_from_json(v, "cwg_cycles")?;
    r.blocked_frac = series_from_json(v, "blocked_frac")?;
    r.cycles_capped = get(v, "cycles_capped")?
        .as_bool()
        .ok_or_else(|| bad("`cycles_capped` must be a bool"))?;
    r.cyclic_nondeadlock_epochs = get_u64(v, "cyclic_nondeadlock_epochs")?;
    r.counting_epochs = get_u64(v, "counting_epochs")?;
    r.victims_started = get_u64(v, "victims_started")?;
    r.resolution_latency = hist_from_json(v, "resolution_latency")?;
    // Absent in checkpoints written before formation-time tracking; an
    // empty histogram digests identically to a fresh one.
    if get(v, "detection_lag").is_ok() {
        r.detection_lag = hist_from_json(v, "detection_lag")?;
    }
    for i in get(v, "incidents")?
        .as_arr()
        .ok_or_else(|| bad("`incidents` must be an array"))?
    {
        let words = i
            .as_arr()
            .ok_or_else(|| bad("incident must be an array"))?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| bad("incident holds non-u64")))
            .collect::<Result<Vec<u64>, _>>()?;
        // 5 words = pre-formation-time records (engine v1); the formation
        // cycle then defaults to the detection cycle, matching the
        // incident-JSON back-compat rule.
        if words.len() != 5 && words.len() != 6 {
            return Err(bad("incident must have 5 or 6 fields"));
        }
        r.incidents.push(Incident {
            cycle: words[0],
            deadlock_set_size: words[1] as usize,
            resource_set_size: words[2] as usize,
            knot_cycle_density: words[3],
            dependents: words[4] as usize,
            formation_cycle: words.get(5).copied().unwrap_or(words[0]),
        });
    }
    r.formation_latency = hist_from_json(v, "formation_latency")?;
    r.formation_spread = hist_from_json(v, "formation_spread")?;
    for f in get(v, "forensic_incidents")?
        .as_arr()
        .ok_or_else(|| bad("`forensic_incidents` must be an array"))?
    {
        r.forensic_incidents.push(DeadlockIncident::from_json(f)?);
    }
    r.outcome = outcome_from_name(
        get(v, "outcome")?
            .as_str()
            .ok_or_else(|| bad("`outcome` must be a string"))?,
    )?;
    r.fault_losses = get_u64(v, "fault_losses")?;
    r.fault_rejected = get_u64(v, "fault_rejected")?;
    r.stall = match get(v, "stall")? {
        Json::Null => None,
        j => {
            let words = j
                .as_arr()
                .ok_or_else(|| bad("`stall` must be null or an array"))?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| bad("`stall` holds non-u64")))
                .collect::<Result<Vec<u64>, _>>()?;
            if words.len() != 5 {
                return Err(bad("`stall` must have 5 fields"));
            }
            Some(StallReport {
                cycle: words[0],
                last_progress_cycle: words[1],
                in_network: words[2] as usize,
                blocked: words[3] as usize,
                source_queued: words[4] as usize,
            })
        }
    };
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, ForensicsConfig, RoutingSpec, RunConfig, TopologySpec};
    use icn_cwg::jsonio::parse;

    #[test]
    fn checkpoint_round_trip_is_digest_exact() {
        // A deadlock-heavy forensic run with a fault plan exercises every
        // field: histograms, time series, incidents, forensic records,
        // fault totals, and outcome.
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.warmup = 200;
        cfg.measure = 1_000;
        cfg.count_cycles_every = Some(3);
        cfg.forensics = Some(ForensicsConfig::default());
        cfg.faults.link_outage(5, 300, 500);
        let r = run(&cfg);
        assert!(r.deadlocks > 0, "need a knot-heavy run for coverage");

        let text = encode_result(&r).to_string();
        let back = decode_result(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.digest(), r.digest());
    }

    #[test]
    fn stall_report_round_trips() {
        let mut r = RunResult::new("t".into(), 0.5, 16, 0.5, 32);
        r.outcome = RunOutcome::Stalled;
        r.stall = Some(StallReport {
            cycle: 900,
            last_progress_cycle: 400,
            in_network: 12,
            blocked: 12,
            source_queued: 3,
        });
        let back = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(back.digest(), r.digest());
        assert_eq!(back.stall, r.stall);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_result(&parse("{}").unwrap()).is_err());
    }
}
