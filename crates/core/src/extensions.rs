//! Extension experiments: the paper's §5 future-work items, implemented.
//!
//! * [`hypercube`] — higher node degree than §3.5's 4-ary 4-cube: a binary
//!   hypercube gives degree `log2 N` with adaptive routing.
//! * [`misroute`] — the effect of (bounded) misrouting on deadlock
//!   formation: non-minimal hops widen the wait-for fan-out.
//! * [`hybrid_lengths`] — hybrid message-length traffic (request/reply
//!   mixes) instead of the paper's fixed 32-flit messages.

use crate::experiments::{Experiment, Scale, ShapeCheck};
use crate::spec::{RoutingSpec, TopologySpec};
use crate::{RunConfig, RunResult};
use icn_traffic::MsgLenDist;

fn base(scale: Scale) -> RunConfig {
    let mut c = match scale {
        Scale::Paper => RunConfig::paper_default(),
        Scale::Small => RunConfig::small_default(),
    };
    c.routing = RoutingSpec::Tfar;
    c.sim.vcs_per_channel = 1;
    c
}

fn ext_loads(scale: Scale) -> Vec<f64> {
    // The lowest load sits safely below TFAR1's saturation knee even when
    // misrouting inflates the effective channel demand.
    match scale {
        Scale::Paper => vec![0.1, 0.4, 0.8, 1.2],
        Scale::Small => vec![0.1, 0.6, 1.2],
    }
}

fn with_seed(mut cfg: RunConfig, salt: u64) -> RunConfig {
    cfg.seed = cfg
        .seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    cfg
}

/// Binary hypercube vs the 2-D torus at matched node count (TFAR, 1 VC).
pub fn hypercube(scale: Scale) -> Experiment {
    let (cube_dims, torus) = match scale {
        Scale::Paper => (8usize, TopologySpec::torus(16, 2, true)), // 256 nodes each
        Scale::Small => (6usize, TopologySpec::torus(8, 2, true)),  // 64 nodes each
    };
    let mut configs = Vec::new();
    let mut salt = 700;
    for topo in [torus, TopologySpec::mesh(2, cube_dims)] {
        for &load in &ext_loads(scale) {
            let mut c = base(scale);
            c.topology = topo;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "ext-hypercube",
        title: "Extension: binary hypercube vs 2-D torus (TFAR, 1 VC)",
        configs,
    }
}

/// Minimal TFAR vs misrouting TFAR with small and large detour budgets.
pub fn misroute(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 800;
    for routing in [
        RoutingSpec::Tfar,
        RoutingSpec::Misroute { budget: 2 },
        RoutingSpec::Misroute { budget: 8 },
    ] {
        for &load in &ext_loads(scale) {
            let mut c = base(scale);
            c.routing = routing;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "ext-misroute",
        title: "Extension: effect of bounded misrouting on deadlock formation",
        configs,
    }
}

/// Fixed 32-flit messages vs a bimodal 8/64-flit request/reply mix at the
/// same mean flit load.
pub fn hybrid_lengths(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 900;
    let dists = [
        MsgLenDist::Fixed(32),
        MsgLenDist::Bimodal {
            short: 8,
            long: 64,
            long_frac: 0.3,
        },
    ];
    for dist in dists {
        for &load in &ext_loads(scale) {
            let mut c = base(scale);
            c.len_dist = dist;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "ext-hybrid",
        title: "Extension: hybrid message lengths (8/64-flit mix vs fixed 32)",
        configs,
    }
}

/// All extension experiments.
pub fn all(scale: Scale) -> Vec<Experiment> {
    vec![hypercube(scale), misroute(scale), hybrid_lengths(scale)]
}

fn check(claim: impl Into<String>, pass: bool, detail: String) -> ShapeCheck {
    ShapeCheck {
        claim: claim.into(),
        pass,
        detail,
    }
}

/// Qualitative expectations for the extension experiments.
pub fn shape_checks(exp: &Experiment, results: &[RunResult]) -> Vec<ShapeCheck> {
    assert_eq!(exp.configs.len(), results.len());
    match exp.id {
        "ext-hypercube" => {
            let torus_dl: u64 = exp
                .configs
                .iter()
                .zip(results)
                .filter(|(c, _)| c.topology.torus)
                .map(|(_, r)| r.deadlocks)
                .sum();
            let cube_dl: u64 = exp
                .configs
                .iter()
                .zip(results)
                .filter(|(c, _)| !c.topology.torus)
                .map(|(_, r)| r.deadlocks)
                .sum();
            vec![check(
                "high node degree (hypercube) suppresses deadlock vs 2-D torus",
                cube_dl * 2 < torus_dl.max(1),
                format!("torus={torus_dl} hypercube={cube_dl}"),
            )]
        }
        "ext-misroute" => {
            let min_load = exp
                .configs
                .iter()
                .map(|c| c.load)
                .fold(f64::INFINITY, f64::min);
            let low_load_ok = exp
                .configs
                .iter()
                .zip(results)
                .filter(|(c, _)| c.load <= min_load)
                .all(|(_, r)| r.accepted_load() > 0.5 * r.offered_load);
            let all_deliver = results.iter().all(|r| r.delivered > 0);
            vec![check(
                "misrouting preserves low-load delivery (no livelock)",
                low_load_ok && all_deliver,
                format!(
                    "min accepted = {:.3}",
                    results
                        .iter()
                        .map(|r| r.accepted_load())
                        .fold(f64::INFINITY, f64::min)
                ),
            )]
        }
        "ext-hybrid" => {
            let consistent = results
                .iter()
                .all(|r| r.single_cycle_deadlocks + r.multi_cycle_deadlocks == r.deadlocks);
            let all_deliver = results.iter().all(|r| r.delivered > 0);
            vec![check(
                "hybrid-length traffic runs cleanly with sound classification",
                consistent && all_deliver,
                format!(
                    "total deadlocks = {}",
                    results.iter().map(|r| r.deadlocks).sum::<u64>()
                ),
            )]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_enumerate() {
        let all = all(Scale::Small);
        assert_eq!(all.len(), 3);
        for exp in &all {
            assert!(!exp.configs.is_empty());
            for c in &exp.configs {
                c.sim.validate();
                c.len_dist.validate();
            }
        }
    }

    #[test]
    fn hypercube_experiment_uses_mesh2() {
        let e = hypercube(Scale::Small);
        assert!(e
            .configs
            .iter()
            .any(|c| c.topology.k == 2 && !c.topology.torus));
    }
}
