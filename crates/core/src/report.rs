//! Plain-text and CSV table rendering.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting — cells are numeric/simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["load", "deadlocks"]);
        t.row(["0.10", "0"]);
        t.row(["1.00", "1234"]);
        let s = t.render();
        assert!(s.contains("load  deadlocks"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.01234), "0.0123");
        assert_eq!(fnum(5.4321), "5.43");
        assert_eq!(fnum(1234.7), "1235");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
