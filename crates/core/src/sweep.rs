//! Parallel execution of simulation sweeps, with supervision.
//!
//! [`sweep_supervised`] is the hardened engine: worker panics are caught
//! and retried with perturbed seeds (bounded backoff between attempts),
//! a failing configuration degrades to a per-slot [`SweepError`] instead
//! of aborting its siblings, and long campaigns can checkpoint finished
//! results to disk so an interrupted sweep resumes where it stopped.
//! [`sweep`] is the historical strict wrapper: same execution, but any
//! failed slot panics *after* every sibling has completed.

use crate::checkpoint::{decode_result, encode_result};
use crate::jsonio::{durable, frame_record, obj, scan_records, Json};
use crate::runner::{run_with, RunObserver};
use crate::{run, RunConfig, RunResult};
use icn_sim::{Network, StepEvents};
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Why a sweep slot has no result.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// Every attempt at this configuration panicked.
    Panicked {
        /// Label of the failing configuration.
        label: String,
        /// Attempts made (first try plus retries).
        attempts: u32,
        /// Panic payload of the final attempt.
        message: String,
    },
    /// The worker delivering this slot disappeared without reporting —
    /// only possible if a thread died outside the panic guard.
    Missing {
        /// Label of the configuration that went unreported.
        label: String,
    },
    /// The run was stopped by a cancellation token or a wall-clock
    /// deadline before completing. Terminal: a cancelled slot is never
    /// retried, and the decision persists through checkpoints.
    Cancelled {
        /// Label of the cancelled configuration.
        label: String,
        /// `true` when the per-config deadline expired; `false` when an
        /// explicit cancel request stopped the run.
        timed_out: bool,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Panicked {
                label,
                attempts,
                message,
            } => write!(
                f,
                "`{label}` panicked on all {attempts} attempts: {message}"
            ),
            SweepError::Missing { label } => write!(f, "`{label}` was never reported"),
            SweepError::Cancelled { label, timed_out } => {
                if *timed_out {
                    write!(f, "`{label}` exceeded its wall-clock deadline")
                } else {
                    write!(f, "`{label}` was cancelled")
                }
            }
        }
    }
}

/// Cooperative cancellation handle shared between a controller (HTTP
/// cancel endpoint, timeout watchdog) and the runs it governs. Cloning
/// shares the underlying flag; cancellation is one-way and permanent.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Every run holding a clone of this token
    /// stops at its next observer check (once per simulation cycle).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl std::error::Error for SweepError {}

/// Supervision knobs for [`sweep_supervised`].
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Extra attempts after a panicking first run (each with a perturbed
    /// seed, in case the panic was load-order dependent).
    pub retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
    /// When `Some`, finished results are appended to this file as JSON
    /// lines, and a rerun of the same sweep resumes from it: slots whose
    /// recorded label matches the configuration are restored instead of
    /// re-run. Checkpointed results are byte-exact (digest-identical to a
    /// fresh run).
    pub checkpoint: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            retries: 2,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            checkpoint: None,
        }
    }
}

/// The backoff slept before retry `attempt` (1-based): `opts.backoff`
/// doubled per attempt, clamped to `opts.max_backoff`.
pub fn backoff_for(attempt: u32, opts: &SweepOptions) -> Duration {
    debug_assert!(attempt >= 1, "attempt 0 is the first try — no backoff");
    let exp = (attempt - 1).min(20);
    opts.backoff.saturating_mul(1 << exp).min(opts.max_backoff)
}

/// One worker attempt cycle over an arbitrary runner: execute under a
/// panic guard, retrying with a perturbed seed and bounded backoff.
/// Returns the result or the final panic message. Generic so the
/// supervision machinery (reseed scheme, attempt accounting, backoff
/// ordering) is testable without a real simulation.
fn run_guarded_with<F>(
    cfg: &RunConfig,
    opts: &SweepOptions,
    runner: F,
) -> Result<RunResult, SweepError>
where
    F: Fn(&RunConfig) -> RunResult,
{
    let attempts = opts.retries + 1;
    let mut last_message = String::new();
    for attempt in 0..attempts {
        let mut c = cfg.clone();
        if attempt > 0 {
            // Same perturbation scheme as `replicate`: a reseed can clear
            // panics tied to a particular traffic realization, while a
            // deterministic bug fails every attempt and surfaces as Err.
            c.seed = cfg
                .seed
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            std::thread::sleep(backoff_for(attempt, opts));
        }
        match catch_unwind(AssertUnwindSafe(|| runner(&c))) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                last_message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
            }
        }
    }
    Err(SweepError::Panicked {
        label: cfg.label(),
        attempts,
        message: last_message,
    })
}

/// Runs one configuration under the full supervision discipline of
/// [`sweep_supervised`] — panic isolation, retry-and-reseed, bounded
/// backoff — without the sweep scaffolding. This is the execution unit
/// the campaign server's worker pool drains its job queue through, so a
/// served result is byte-identical to the same slot of a direct
/// supervised sweep.
pub fn run_supervised(cfg: &RunConfig, opts: &SweepOptions) -> Result<RunResult, SweepError> {
    run_guarded_with(cfg, opts, run)
}

/// How a cancellable run was interrupted, if it was.
const INTERRUPT_NONE: u8 = 0;
const INTERRUPT_CANCELLED: u8 = 1;
const INTERRUPT_TIMED_OUT: u8 = 2;

/// Observer that stops a run when its token is cancelled (checked every
/// cycle — an atomic load, negligible next to a simulation step) or its
/// deadline passes (checked every 256 cycles — `Instant::now` is a
/// syscall on some platforms, and sub-millisecond deadline precision is
/// meaningless for wall-clock budgets measured in seconds).
struct CancelObserver<'a> {
    token: &'a CancelToken,
    deadline: Option<Instant>,
    cycles: u64,
    interrupt: u8,
}

impl RunObserver for CancelObserver<'_> {
    fn on_cycle(&mut self, _net: &Network, _ev: &StepEvents) -> ControlFlow<()> {
        if self.token.is_cancelled() {
            self.interrupt = INTERRUPT_CANCELLED;
            return ControlFlow::Break(());
        }
        self.cycles = self.cycles.wrapping_add(1);
        if self.cycles & 0xff == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.interrupt = INTERRUPT_TIMED_OUT;
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// [`run_supervised`] with cooperative cancellation: the run stops at the
/// next cycle boundary after `token` is cancelled or after `budget`
/// wall-clock time elapses, returning [`SweepError::Cancelled`] instead
/// of a (truncated, digest-meaningless) result. An uninterrupted run is
/// byte-identical to [`run_supervised`] — the observer only loads an
/// atomic, it never perturbs simulation state.
pub fn run_supervised_cancellable(
    cfg: &RunConfig,
    opts: &SweepOptions,
    token: &CancelToken,
    budget: Option<Duration>,
) -> Result<RunResult, SweepError> {
    if token.is_cancelled() {
        return Err(SweepError::Cancelled {
            label: cfg.label(),
            timed_out: false,
        });
    }
    let deadline = budget.map(|b| Instant::now() + b);
    // The retry loop's runner is `Fn`, so the observer's interrupt
    // verdict escapes through an atomic. Only the final attempt's verdict
    // matters: an interrupt ends the attempt without a panic, so no
    // further attempts follow it.
    let interrupted = AtomicU8::new(INTERRUPT_NONE);
    let result = run_guarded_with(cfg, opts, |c| {
        let mut obs = CancelObserver {
            token,
            deadline,
            cycles: 0,
            interrupt: INTERRUPT_NONE,
        };
        let r = run_with(c, &mut obs);
        interrupted.store(obs.interrupt, Ordering::SeqCst);
        r
    });
    match (result, interrupted.load(Ordering::SeqCst)) {
        (Ok(_), INTERRUPT_CANCELLED) => Err(SweepError::Cancelled {
            label: cfg.label(),
            timed_out: false,
        }),
        (Ok(_), INTERRUPT_TIMED_OUT) => Err(SweepError::Cancelled {
            label: cfg.label(),
            timed_out: true,
        }),
        (r, _) => r,
    }
}

/// What a checkpoint restore found on disk.
///
/// The zero value (`restored == 0`, `skipped_lines == 0`,
/// `torn_tail == false`) is indistinguishable from a missing file, which
/// is exactly right: an absent checkpoint is an empty one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointRestore {
    /// Slots restored from disk instead of re-run.
    pub restored: usize,
    /// Lines that parsed as JSON but could not be restored (undecodable
    /// result, out-of-range index, or a label that no longer matches the
    /// configuration at that index), plus interior lines that failed to
    /// parse outright. Every such line is silent data loss the caller
    /// should surface; a nonzero count on a file this sweep wrote itself
    /// means corruption.
    pub skipped_lines: usize,
    /// Interior CRC-framed lines whose frame failed verification —
    /// *detected* corruption, counted separately from `skipped_lines`
    /// because the frame proves a record was intended there. These slots
    /// simply re-run; the count is surfaced so operators see the loss.
    pub corrupt_frames: usize,
    /// Slots restored as terminally cancelled/timed-out from persisted
    /// status lines. These are not re-run: the cancellation decision
    /// survives restarts.
    pub cancelled: usize,
    /// The file ends in a partially written line — the signature of a
    /// writer killed mid-append. Tolerated explicitly (the interrupted
    /// slot simply re-runs) and reported so callers can distinguish
    /// "clean resume" from "resume after a hard kill".
    pub torn_tail: bool,
}

/// Restores completed slots from a checkpoint file, reporting exactly
/// what was kept and what was lost. See [`CheckpointRestore`] for the
/// accounting semantics. Accepts both CRC-framed records (the current
/// append format) and legacy bare JSON lines; damaged framed lines are
/// quarantined to `<path>.quarantine` so the evidence survives the next
/// clean rewrite of the checkpoint.
pub fn restore_checkpoint(
    path: &std::path::Path,
    configs: &[RunConfig],
    slots: &mut [Option<Result<RunResult, SweepError>>],
) -> CheckpointRestore {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CheckpointRestore::default();
    };
    let scan = scan_records(&text);
    let mut report = CheckpointRestore {
        restored: 0,
        skipped_lines: scan.skipped,
        corrupt_frames: scan.corrupt_frames,
        cancelled: 0,
        torn_tail: scan.torn_tail,
    };
    if !scan.damaged_lines.is_empty() {
        // Quarantine, not delete: keep the damaged bytes inspectable.
        let _ = durable::append_line(
            &path.with_extension("quarantine"),
            &scan.damaged_lines.join("\n"),
        );
    }
    for (_, v) in &scan.values {
        // A `status` line persists a terminal cancel/timeout decision for
        // its slot. Later lines win (a status after a result should not
        // happen, but the scan is order-faithful either way).
        let restorable = (|| {
            let i = v.get("index").and_then(Json::as_u64)? as usize;
            if i >= configs.len() {
                return None;
            }
            let label = configs[i].label();
            if v.get("label").and_then(Json::as_str) != Some(&label) {
                return None;
            }
            if let Some(status) = v.get("status").and_then(Json::as_str) {
                let timed_out = match status {
                    "cancelled" => false,
                    "timed_out" => true,
                    _ => return None,
                };
                return Some((i, Err(SweepError::Cancelled { label, timed_out })));
            }
            let r = v.get("result").and_then(|r| decode_result(r).ok())?;
            Some((i, Ok(r)))
        })();
        match restorable {
            Some((i, r)) => {
                if r.is_ok() {
                    report.restored += 1;
                } else {
                    report.cancelled += 1;
                }
                slots[i] = Some(r);
            }
            None => report.skipped_lines += 1,
        }
    }
    report
}

/// Renders one checkpoint line: `{"index":i,"label":...,"result":{...}}`.
/// The campaign server writes its per-job checkpoint/result files in
/// exactly this format so [`restore_checkpoint`] can resume them.
pub fn checkpoint_line(index: usize, label: &str, result: &RunResult) -> String {
    obj(vec![
        ("index", Json::U64(index as u64)),
        ("label", Json::Str(label.to_string())),
        ("result", encode_result(result)),
    ])
    .to_string()
}

/// Renders one checkpoint *status* line persisting a terminal
/// cancellation decision: `{"index":i,"label":...,"status":"cancelled"}`
/// (or `"timed_out"`). [`restore_checkpoint`] restores such slots as
/// [`SweepError::Cancelled`] so they are not re-run after a restart.
pub fn checkpoint_status_line(index: usize, label: &str, timed_out: bool) -> String {
    obj(vec![
        ("index", Json::U64(index as u64)),
        ("label", Json::Str(label.to_string())),
        (
            "status",
            Json::Str(if timed_out { "timed_out" } else { "cancelled" }.to_string()),
        ),
    ])
    .to_string()
}

/// [`sweep_supervised`] output plus the checkpoint-restore accounting.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-slot results in input order.
    pub results: Vec<Result<RunResult, SweepError>>,
    /// What the checkpoint restore found. `None` when
    /// [`SweepOptions::checkpoint`] was `None`.
    pub checkpoint: Option<CheckpointRestore>,
}

/// Runs every configuration across OS threads under supervision and
/// returns per-slot results in input order. A panicking configuration
/// never takes its siblings down: its slot becomes `Err` after the
/// retries are exhausted while every other run completes normally.
pub fn sweep_supervised(
    configs: &[RunConfig],
    opts: &SweepOptions,
) -> Vec<Result<RunResult, SweepError>> {
    sweep_supervised_report(configs, opts).results
}

/// [`sweep_supervised`] with the checkpoint-restore accounting attached:
/// how many slots came from disk, how many checkpoint lines were lost to
/// corruption, and whether the file ended in a torn line.
pub fn sweep_supervised_report(configs: &[RunConfig], opts: &SweepOptions) -> SweepReport {
    let mut slots: Vec<Option<Result<RunResult, SweepError>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    if configs.is_empty() {
        return SweepReport {
            results: Vec::new(),
            checkpoint: opts
                .checkpoint
                .as_ref()
                .map(|_| CheckpointRestore::default()),
        };
    }

    let checkpoint = opts
        .checkpoint
        .as_ref()
        .map(|path| restore_checkpoint(path, configs, &mut slots));
    // A torn tail means the previous writer died mid-append; one guard
    // newline seals the partial line off so fresh appends start clean.
    if let (Some(path), Some(ck)) = (opts.checkpoint.as_ref(), checkpoint.as_ref()) {
        if ck.torn_tail {
            let _ = durable::append_line(path, "");
        }
    }
    let pending: Vec<usize> = (0..configs.len()).filter(|&i| slots[i].is_none()).collect();

    if !pending.is_empty() {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(pending.len());

        // Finished results append through `durable::append_line` — one
        // CRC-framed line per record, a single O_APPEND write each, so a
        // record from any process lands contiguously or tears detectably.
        let ckpt = opts.checkpoint.as_deref();

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunResult, SweepError>)>();
        std::thread::scope(|scope| {
            let next = &next;
            let pending = &pending;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let i = pending[n];
                    // A dropped receiver just means nobody wants the
                    // result any more; finish the remaining work quietly.
                    if tx.send((i, run_supervised(&configs[i], opts))).is_err() {
                        break;
                    }
                });
            }
            // The workers hold the remaining senders; once they all
            // finish, the channel closes and this drain ends.
            drop(tx);
            for (i, r) in rx {
                if let (Some(path), Ok(result)) = (ckpt, &r) {
                    let line = frame_record(&checkpoint_line(i, &configs[i].label(), result));
                    let _ = durable::append_line(path, &line);
                }
                slots[i] = Some(r);
            }
        });
    }

    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(Err(SweepError::Missing {
                label: configs[i].label(),
            }))
        })
        .collect();
    SweepReport {
        results,
        checkpoint,
    }
}

/// Runs every configuration, fanning out across OS threads (one run is
/// single-threaded and deterministic, so parallelism across points is
/// safe), and returns results in input order.
///
/// This is the strict interface: a configuration that still fails after
/// the default retries panics here — but only after every sibling has
/// completed, so no finished work is discarded mid-flight. Callers that
/// want per-slot errors instead use [`sweep_supervised`].
pub fn sweep(configs: &[RunConfig]) -> Vec<RunResult> {
    let mut failures: Vec<String> = Vec::new();
    let results: Vec<RunResult> = sweep_supervised(configs, &SweepOptions::default())
        .into_iter()
        .filter_map(|r| match r {
            Ok(r) => Some(r),
            Err(e) => {
                failures.push(e.to_string());
                None
            }
        })
        .collect();
    assert!(
        failures.is_empty(),
        "sweep failed for {} of {} configurations:\n  {}",
        failures.len(),
        configs.len(),
        failures.join("\n  ")
    );
    results
}

/// Runs one configuration under `n` distinct seeds (in parallel) and
/// returns the per-seed results — the raw material for replication
/// statistics on any stochastic metric.
pub fn replicate(cfg: &RunConfig, n: usize) -> Vec<RunResult> {
    let configs: Vec<RunConfig> = (0..n as u64)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg
                .seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            c
        })
        .collect();
    sweep(&configs)
}

/// Mean ± population standard deviation of the headline metrics across
/// replications of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationSummary {
    pub runs: usize,
    pub normalized_deadlocks: (f64, f64),
    pub accepted_load: (f64, f64),
    pub avg_latency: (f64, f64),
    pub deadlock_set_mean: (f64, f64),
}

/// Aggregates [`replicate`] output.
pub fn replication_summary(results: &[RunResult]) -> ReplicationSummary {
    assert!(!results.is_empty(), "need at least one replication");
    let stat = |f: &dyn Fn(&RunResult) -> f64| {
        let mut m = icn_metrics::Mean::new();
        for r in results {
            let v = f(r);
            if v.is_finite() {
                m.record(v);
            }
        }
        (m.mean(), m.std_dev())
    };
    ReplicationSummary {
        runs: results.len(),
        normalized_deadlocks: stat(&|r| r.normalized_deadlocks()),
        accepted_load: stat(&|r| r.accepted_load()),
        avg_latency: stat(&|r| r.avg_latency()),
        deadlock_set_mean: stat(&|r| r.deadlock_set.mean()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoutingSpec;

    fn quick_cfg(load: f64) -> RunConfig {
        let mut c = RunConfig::small_default();
        c.warmup = 200;
        c.measure = 800;
        c.load = load;
        c.routing = RoutingSpec::Tfar;
        c.sim.vcs_per_channel = 2;
        c
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.6)];
        let par = sweep(&configs);
        assert_eq!(par.len(), 2);
        assert!(par[0].offered_load < par[1].offered_load);
        let serial: Vec<_> = configs.iter().map(run).collect();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert_eq!(p.delivered, s.delivered);
            assert_eq!(p.deadlocks, s.deadlocks);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[]).is_empty());
    }

    /// A deliberately panicking configuration (zero VCs fails
    /// `SimConfig::validate` on every attempt) must degrade to a
    /// per-slot error while its siblings complete normally.
    #[test]
    fn panicking_worker_degrades_to_error() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let configs = vec![quick_cfg(0.2), poison, quick_cfg(0.3)];
        let opts = SweepOptions {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let results = sweep_supervised(&configs, &opts);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "sibling before the poison must finish");
        assert!(results[2].is_ok(), "sibling after the poison must finish");
        match &results[1] {
            Err(SweepError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(*attempts, 2);
                assert!(
                    message.contains("vcs_per_channel"),
                    "panic message should surface: {message}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The healthy siblings are byte-identical to solo runs.
        assert_eq!(
            results[0].as_ref().unwrap().digest(),
            run(&configs[0]).digest()
        );
    }

    #[test]
    #[should_panic(expected = "sweep failed for 1 of 1")]
    fn strict_sweep_panics_after_completion() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let _ = sweep(&[poison]);
    }

    /// Interrupt-and-resume: a checkpoint written by one invocation is
    /// picked up by the next, which re-runs only the missing slots and
    /// reproduces the uninterrupted sweep byte-for-byte.
    #[test]
    fn checkpoint_resume_is_digest_exact() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        // First pass: only the first config, checkpointed.
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let first = sweep_supervised(&configs[..1], &opts);
        assert!(first[0].is_ok());

        // Resumed pass over the full sweep: slot 0 must come from disk.
        let resumed = sweep_supervised(&configs, &opts);
        let fresh = sweep(&configs);
        for (r, f) in resumed.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }

        // The checkpoint now covers both slots; a third pass restores
        // everything without running anything (workers see no pending
        // slots).
        let restored = sweep_supervised(&configs, &opts);
        for (r, f) in restored.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Retry-and-reseed: a runner that panics on the original seed but
    /// succeeds on any perturbed one must be rescued by the retry loop,
    /// and the rescue must use the documented perturbation scheme.
    #[test]
    fn retry_reseeds_after_injected_panic() {
        let cfg = quick_cfg(0.2);
        let original_seed = cfg.seed;
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let opts = SweepOptions {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let r = run_guarded_with(&cfg, &opts, |c| {
            attempts.fetch_add(1, Ordering::SeqCst);
            assert!(
                c.seed == original_seed
                    || c.seed
                        == original_seed.wrapping_add(1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
                "unexpected reseed value {:#x}",
                c.seed
            );
            if c.seed == original_seed {
                panic!("injected load-order-dependent panic");
            }
            run(c)
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "first try + one retry");
        let r = r.expect("perturbed seed should succeed");
        // The rescued result is the perturbed-seed run, byte-exactly.
        let mut reseeded = cfg.clone();
        reseeded.seed = original_seed.wrapping_add(0x9e37_79b9_7f4a_7c15 | 1);
        assert_eq!(r.digest(), run(&reseeded).digest());
    }

    /// A deterministic panic exhausts every attempt and reports the
    /// attempt count and final message.
    #[test]
    fn deterministic_panic_exhausts_all_attempts() {
        let cfg = quick_cfg(0.2);
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let opts = SweepOptions {
            retries: 3,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let r = run_guarded_with(&cfg, &opts, |_| -> RunResult {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always broken")
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 4);
        match r {
            Err(SweepError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(attempts, 4);
                assert!(message.contains("always broken"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    /// Backoff ordering: doubles per retry, clamps at the cap, and never
    /// decreases.
    #[test]
    fn backoff_doubles_then_clamps() {
        let opts = SweepOptions {
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(350),
            ..SweepOptions::default()
        };
        let seq: Vec<Duration> = (1..=5).map(|a| backoff_for(a, &opts)).collect();
        assert_eq!(
            seq,
            vec![
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(350),
                Duration::from_millis(350),
            ]
        );
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "backoff must be monotone");
        }
        // The shift exponent saturates instead of overflowing on absurd
        // attempt counts.
        assert_eq!(backoff_for(64, &opts), Duration::from_millis(350));
    }

    /// Checkpoint-resume from a file whose final line was torn by a hard
    /// kill: the torn slot re-runs, the intact slot restores, accounting
    /// reports the tear, and the resumed sweep is digest-exact against an
    /// uninterrupted run.
    #[test]
    fn truncated_checkpoint_resumes_digest_exact() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let full = sweep_supervised_report(&configs, &opts);
        assert!(full.results.iter().all(Result::is_ok));
        let ck = full.checkpoint.expect("checkpoint accounting present");
        assert_eq!(
            ck,
            CheckpointRestore::default(),
            "fresh run restores nothing"
        );

        // Simulate the writer dying mid-append: cut the file mid-way
        // through its final line (no trailing newline).
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
        std::fs::write(&path, &torn).unwrap();

        let resumed = sweep_supervised_report(&configs, &opts);
        let ck = resumed.checkpoint.unwrap();
        assert_eq!(ck.restored, 1, "the intact line restores");
        assert!(ck.torn_tail, "the tear must be reported");
        assert_eq!(ck.skipped_lines, 0, "a torn tail is not counted as loss");

        let fresh = sweep(&configs);
        for (r, f) in resumed.results.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Interior garbage (a corrupted line in the middle of the file) is
    /// counted as skipped, not silently dropped.
    #[test]
    fn corrupted_interior_line_is_counted() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let _ = sweep_supervised(&configs, &opts);

        // Corrupt the first line in place, keep the second intact.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let corrupted = format!("{}XX\n{}\n", &lines[0][..lines[0].len() - 2], lines[1]);
        std::fs::write(&path, &corrupted).unwrap();

        let resumed = sweep_supervised_report(&configs, &opts);
        let ck = resumed.checkpoint.unwrap();
        assert_eq!(ck.restored, 1);
        assert_eq!(
            ck.corrupt_frames, 1,
            "the garbled frame is detected corruption, not silent skip"
        );
        assert_eq!(ck.skipped_lines, 0);
        assert!(!ck.torn_tail);
        // The damaged line was quarantined for inspection.
        let quarantine = path.with_extension("quarantine");
        assert!(
            std::fs::read_to_string(&quarantine)
                .unwrap()
                .trim()
                .starts_with(crate::jsonio::FRAME_MARK),
            "damaged frame preserved in quarantine"
        );
        // The damaged slot re-ran; results still match a fresh sweep.
        let fresh = sweep(&configs);
        for (r, f) in resumed.results.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a checkpoint whose final record is cleanly
    /// newline-terminated must restore with zero skipped lines and no
    /// torn tail — the trailing newline must not manufacture a phantom
    /// empty "line" in the loss accounting.
    #[test]
    fn trailing_newline_is_not_counted_as_skipped() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-newline-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let _ = sweep_supervised(&configs, &opts);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "appends are newline-terminated");

        let mut slots: Vec<Option<Result<RunResult, SweepError>>> = vec![None, None];
        let ck = restore_checkpoint(&path, &configs, &mut slots);
        assert_eq!(ck.restored, 2);
        assert_eq!(
            ck.skipped_lines, 0,
            "no phantom line after the final newline"
        );
        assert_eq!(ck.corrupt_frames, 0);
        assert!(!ck.torn_tail);

        // Same with extra blank lines appended (kill-guard newlines).
        std::fs::write(&path, format!("{text}\n\n")).unwrap();
        let mut slots: Vec<Option<Result<RunResult, SweepError>>> = vec![None, None];
        let ck = restore_checkpoint(&path, &configs, &mut slots);
        assert_eq!(ck.restored, 2);
        assert_eq!(ck.skipped_lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A pre-cancelled token short-circuits without running anything; a
    /// token cancelled mid-run stops the run and reports `Cancelled`
    /// rather than returning a truncated result.
    #[test]
    fn cancellation_stops_runs() {
        let cfg = quick_cfg(0.2);
        let opts = SweepOptions::default();

        let token = CancelToken::new();
        token.cancel();
        match run_supervised_cancellable(&cfg, &opts, &token, None) {
            Err(SweepError::Cancelled { label, timed_out }) => {
                assert_eq!(label, cfg.label());
                assert!(!timed_out);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }

        // An uncancelled token leaves the run byte-identical to the
        // plain supervised path.
        let token = CancelToken::new();
        let r = run_supervised_cancellable(&cfg, &opts, &token, None).unwrap();
        assert_eq!(r.digest(), run(&cfg).digest());
    }

    /// A zero wall-clock budget trips the deadline at the first check and
    /// surfaces as `timed_out: true`.
    #[test]
    fn zero_budget_times_out() {
        let mut cfg = quick_cfg(0.2);
        // Enough cycles that the 256-cycle deadline check must fire.
        cfg.warmup = 200;
        cfg.measure = 2000;
        let token = CancelToken::new();
        match run_supervised_cancellable(
            &cfg,
            &SweepOptions::default(),
            &token,
            Some(Duration::ZERO),
        ) {
            Err(SweepError::Cancelled { timed_out, .. }) => assert!(timed_out),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    /// Persisted status lines restore as terminal `Cancelled` slots: the
    /// decision survives a restart and the slot is not re-run.
    #[test]
    fn status_lines_restore_as_cancelled() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-status-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let line =
            crate::jsonio::frame_record(&checkpoint_status_line(1, &configs[1].label(), true));
        std::fs::write(&path, format!("{line}\n")).unwrap();

        let mut slots: Vec<Option<Result<RunResult, SweepError>>> = vec![None, None];
        let ck = restore_checkpoint(&path, &configs, &mut slots);
        assert_eq!(ck.cancelled, 1);
        assert_eq!(ck.restored, 0);
        assert!(slots[0].is_none(), "unrelated slot untouched");
        match &slots[1] {
            Some(Err(SweepError::Cancelled { timed_out, .. })) => assert!(timed_out),
            other => panic!("expected restored Cancelled, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_uses_distinct_seeds_and_summarizes() {
        let mut cfg = RunConfig::small_default();
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let reps = replicate(&cfg, 3);
        assert_eq!(reps.len(), 3);
        // Different seeds should produce (at least slightly) different
        // traffic volumes.
        let gens: std::collections::HashSet<u64> = reps.iter().map(|r| r.generated).collect();
        assert!(gens.len() > 1, "replications look identical");
        let s = replication_summary(&reps);
        assert_eq!(s.runs, 3);
        assert!(s.accepted_load.0 > 0.0);
        assert!(s.avg_latency.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn empty_summary_rejected() {
        let _ = replication_summary(&[]);
    }
}
