//! Parallel execution of simulation sweeps.

use crate::{run, RunConfig, RunResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs every configuration, fanning out across OS threads (one run is
/// single-threaded and deterministic, so parallelism across points is
/// safe), and returns results in input order.
///
/// Workers deliver index-stamped results over a channel instead of
/// contending on a shared lock, so a burst of short runs finishing together
/// never serializes behind a slow one holding a mutex.
pub fn sweep(configs: &[RunConfig]) -> Vec<RunResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(configs.len());

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunResult)>();

    let mut slots: Vec<Option<RunResult>> = vec![None; configs.len()];
    std::thread::scope(|scope| {
        let next = &next;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let r = run(&configs[i]);
                tx.send((i, r)).expect("sweep receiver alive");
            });
        }
        // The workers hold the remaining senders; once they all finish the
        // channel closes and this drain ends.
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Runs one configuration under `n` distinct seeds (in parallel) and
/// returns the per-seed results — the raw material for replication
/// statistics on any stochastic metric.
pub fn replicate(cfg: &RunConfig, n: usize) -> Vec<RunResult> {
    let configs: Vec<RunConfig> = (0..n as u64)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg
                .seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            c
        })
        .collect();
    sweep(&configs)
}

/// Mean ± population standard deviation of the headline metrics across
/// replications of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationSummary {
    pub runs: usize,
    pub normalized_deadlocks: (f64, f64),
    pub accepted_load: (f64, f64),
    pub avg_latency: (f64, f64),
    pub deadlock_set_mean: (f64, f64),
}

/// Aggregates [`replicate`] output.
pub fn replication_summary(results: &[RunResult]) -> ReplicationSummary {
    assert!(!results.is_empty(), "need at least one replication");
    let stat = |f: &dyn Fn(&RunResult) -> f64| {
        let mut m = icn_metrics::Mean::new();
        for r in results {
            let v = f(r);
            if v.is_finite() {
                m.record(v);
            }
        }
        (m.mean(), m.std_dev())
    };
    ReplicationSummary {
        runs: results.len(),
        normalized_deadlocks: stat(&|r| r.normalized_deadlocks()),
        accepted_load: stat(&|r| r.accepted_load()),
        avg_latency: stat(&|r| r.avg_latency()),
        deadlock_set_mean: stat(&|r| r.deadlock_set.mean()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoutingSpec;

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let mut configs = Vec::new();
        for load in [0.2, 0.6] {
            let mut c = RunConfig::small_default();
            c.warmup = 200;
            c.measure = 800;
            c.load = load;
            c.routing = RoutingSpec::Tfar;
            c.sim.vcs_per_channel = 2;
            configs.push(c);
        }
        let par = sweep(&configs);
        assert_eq!(par.len(), 2);
        assert!(par[0].offered_load < par[1].offered_load);
        let serial: Vec<_> = configs.iter().map(run).collect();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert_eq!(p.delivered, s.delivered);
            assert_eq!(p.deadlocks, s.deadlocks);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[]).is_empty());
    }

    #[test]
    fn replication_uses_distinct_seeds_and_summarizes() {
        let mut cfg = RunConfig::small_default();
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let reps = replicate(&cfg, 3);
        assert_eq!(reps.len(), 3);
        // Different seeds should produce (at least slightly) different
        // traffic volumes.
        let gens: std::collections::HashSet<u64> = reps.iter().map(|r| r.generated).collect();
        assert!(gens.len() > 1, "replications look identical");
        let s = replication_summary(&reps);
        assert_eq!(s.runs, 3);
        assert!(s.accepted_load.0 > 0.0);
        assert!(s.avg_latency.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn empty_summary_rejected() {
        let _ = replication_summary(&[]);
    }
}
