//! Parallel execution of simulation sweeps, with supervision.
//!
//! [`sweep_supervised`] is the hardened engine: worker panics are caught
//! and retried with perturbed seeds (bounded backoff between attempts),
//! a failing configuration degrades to a per-slot [`SweepError`] instead
//! of aborting its siblings, and long campaigns can checkpoint finished
//! results to disk so an interrupted sweep resumes where it stopped.
//! [`sweep`] is the historical strict wrapper: same execution, but any
//! failed slot panics *after* every sibling has completed.

use crate::checkpoint::{decode_result, encode_result};
use crate::jsonio::{obj, scan_lines, Json};
use crate::{run, RunConfig, RunResult};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Why a sweep slot has no result.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// Every attempt at this configuration panicked.
    Panicked {
        /// Label of the failing configuration.
        label: String,
        /// Attempts made (first try plus retries).
        attempts: u32,
        /// Panic payload of the final attempt.
        message: String,
    },
    /// The worker delivering this slot disappeared without reporting —
    /// only possible if a thread died outside the panic guard.
    Missing {
        /// Label of the configuration that went unreported.
        label: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Panicked {
                label,
                attempts,
                message,
            } => write!(
                f,
                "`{label}` panicked on all {attempts} attempts: {message}"
            ),
            SweepError::Missing { label } => write!(f, "`{label}` was never reported"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Supervision knobs for [`sweep_supervised`].
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Extra attempts after a panicking first run (each with a perturbed
    /// seed, in case the panic was load-order dependent).
    pub retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
    /// When `Some`, finished results are appended to this file as JSON
    /// lines, and a rerun of the same sweep resumes from it: slots whose
    /// recorded label matches the configuration are restored instead of
    /// re-run. Checkpointed results are byte-exact (digest-identical to a
    /// fresh run).
    pub checkpoint: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            retries: 2,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            checkpoint: None,
        }
    }
}

/// The backoff slept before retry `attempt` (1-based): `opts.backoff`
/// doubled per attempt, clamped to `opts.max_backoff`.
pub fn backoff_for(attempt: u32, opts: &SweepOptions) -> Duration {
    debug_assert!(attempt >= 1, "attempt 0 is the first try — no backoff");
    let exp = (attempt - 1).min(20);
    opts.backoff.saturating_mul(1 << exp).min(opts.max_backoff)
}

/// One worker attempt cycle over an arbitrary runner: execute under a
/// panic guard, retrying with a perturbed seed and bounded backoff.
/// Returns the result or the final panic message. Generic so the
/// supervision machinery (reseed scheme, attempt accounting, backoff
/// ordering) is testable without a real simulation.
fn run_guarded_with<F>(
    cfg: &RunConfig,
    opts: &SweepOptions,
    runner: F,
) -> Result<RunResult, SweepError>
where
    F: Fn(&RunConfig) -> RunResult,
{
    let attempts = opts.retries + 1;
    let mut last_message = String::new();
    for attempt in 0..attempts {
        let mut c = cfg.clone();
        if attempt > 0 {
            // Same perturbation scheme as `replicate`: a reseed can clear
            // panics tied to a particular traffic realization, while a
            // deterministic bug fails every attempt and surfaces as Err.
            c.seed = cfg
                .seed
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            std::thread::sleep(backoff_for(attempt, opts));
        }
        match catch_unwind(AssertUnwindSafe(|| runner(&c))) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                last_message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
            }
        }
    }
    Err(SweepError::Panicked {
        label: cfg.label(),
        attempts,
        message: last_message,
    })
}

/// Runs one configuration under the full supervision discipline of
/// [`sweep_supervised`] — panic isolation, retry-and-reseed, bounded
/// backoff — without the sweep scaffolding. This is the execution unit
/// the campaign server's worker pool drains its job queue through, so a
/// served result is byte-identical to the same slot of a direct
/// supervised sweep.
pub fn run_supervised(cfg: &RunConfig, opts: &SweepOptions) -> Result<RunResult, SweepError> {
    run_guarded_with(cfg, opts, run)
}

/// What a checkpoint restore found on disk.
///
/// The zero value (`restored == 0`, `skipped_lines == 0`,
/// `torn_tail == false`) is indistinguishable from a missing file, which
/// is exactly right: an absent checkpoint is an empty one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointRestore {
    /// Slots restored from disk instead of re-run.
    pub restored: usize,
    /// Lines that parsed as JSON but could not be restored (undecodable
    /// result, out-of-range index, or a label that no longer matches the
    /// configuration at that index), plus interior lines that failed to
    /// parse outright. Every such line is silent data loss the caller
    /// should surface; a nonzero count on a file this sweep wrote itself
    /// means corruption.
    pub skipped_lines: usize,
    /// The file ends in a partially written line — the signature of a
    /// writer killed mid-append. Tolerated explicitly (the interrupted
    /// slot simply re-runs) and reported so callers can distinguish
    /// "clean resume" from "resume after a hard kill".
    pub torn_tail: bool,
}

/// Restores completed slots from a checkpoint file, reporting exactly
/// what was kept and what was lost. See [`CheckpointRestore`] for the
/// accounting semantics.
pub fn restore_checkpoint(
    path: &std::path::Path,
    configs: &[RunConfig],
    slots: &mut [Option<Result<RunResult, SweepError>>],
) -> CheckpointRestore {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CheckpointRestore::default();
    };
    let scan = scan_lines(&text);
    let mut report = CheckpointRestore {
        restored: 0,
        skipped_lines: scan.skipped,
        torn_tail: scan.torn_tail,
    };
    for (_, v) in &scan.values {
        let restorable = (|| {
            let i = v.get("index").and_then(Json::as_u64)? as usize;
            if i >= configs.len() {
                return None;
            }
            if v.get("label").and_then(Json::as_str) != Some(&configs[i].label()) {
                return None;
            }
            let r = v.get("result").and_then(|r| decode_result(r).ok())?;
            Some((i, r))
        })();
        match restorable {
            Some((i, r)) => {
                report.restored += 1;
                slots[i] = Some(Ok(r));
            }
            None => report.skipped_lines += 1,
        }
    }
    report
}

/// Renders one checkpoint line: `{"index":i,"label":...,"result":{...}}`.
/// The campaign server writes its per-job checkpoint/result files in
/// exactly this format so [`restore_checkpoint`] can resume them.
pub fn checkpoint_line(index: usize, label: &str, result: &RunResult) -> String {
    obj(vec![
        ("index", Json::U64(index as u64)),
        ("label", Json::Str(label.to_string())),
        ("result", encode_result(result)),
    ])
    .to_string()
}

/// [`sweep_supervised`] output plus the checkpoint-restore accounting.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-slot results in input order.
    pub results: Vec<Result<RunResult, SweepError>>,
    /// What the checkpoint restore found. `None` when
    /// [`SweepOptions::checkpoint`] was `None`.
    pub checkpoint: Option<CheckpointRestore>,
}

/// Runs every configuration across OS threads under supervision and
/// returns per-slot results in input order. A panicking configuration
/// never takes its siblings down: its slot becomes `Err` after the
/// retries are exhausted while every other run completes normally.
pub fn sweep_supervised(
    configs: &[RunConfig],
    opts: &SweepOptions,
) -> Vec<Result<RunResult, SweepError>> {
    sweep_supervised_report(configs, opts).results
}

/// [`sweep_supervised`] with the checkpoint-restore accounting attached:
/// how many slots came from disk, how many checkpoint lines were lost to
/// corruption, and whether the file ended in a torn line.
pub fn sweep_supervised_report(configs: &[RunConfig], opts: &SweepOptions) -> SweepReport {
    let mut slots: Vec<Option<Result<RunResult, SweepError>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    if configs.is_empty() {
        return SweepReport {
            results: Vec::new(),
            checkpoint: opts
                .checkpoint
                .as_ref()
                .map(|_| CheckpointRestore::default()),
        };
    }

    let checkpoint = opts
        .checkpoint
        .as_ref()
        .map(|path| restore_checkpoint(path, configs, &mut slots));
    let pending: Vec<usize> = (0..configs.len()).filter(|&i| slots[i].is_none()).collect();

    if !pending.is_empty() {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(pending.len());

        // The checkpoint writer is the receiving thread — a single
        // appender, so interleaved half-lines cannot happen.
        let mut ckpt = opts.checkpoint.as_ref().and_then(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
        });

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunResult, SweepError>)>();
        std::thread::scope(|scope| {
            let next = &next;
            let pending = &pending;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let i = pending[n];
                    // A dropped receiver just means nobody wants the
                    // result any more; finish the remaining work quietly.
                    if tx.send((i, run_supervised(&configs[i], opts))).is_err() {
                        break;
                    }
                });
            }
            // The workers hold the remaining senders; once they all
            // finish, the channel closes and this drain ends.
            drop(tx);
            for (i, r) in rx {
                if let (Some(file), Ok(result)) = (ckpt.as_mut(), &r) {
                    let _ = writeln!(file, "{}", checkpoint_line(i, &configs[i].label(), result));
                }
                slots[i] = Some(r);
            }
        });
    }

    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(Err(SweepError::Missing {
                label: configs[i].label(),
            }))
        })
        .collect();
    SweepReport {
        results,
        checkpoint,
    }
}

/// Runs every configuration, fanning out across OS threads (one run is
/// single-threaded and deterministic, so parallelism across points is
/// safe), and returns results in input order.
///
/// This is the strict interface: a configuration that still fails after
/// the default retries panics here — but only after every sibling has
/// completed, so no finished work is discarded mid-flight. Callers that
/// want per-slot errors instead use [`sweep_supervised`].
pub fn sweep(configs: &[RunConfig]) -> Vec<RunResult> {
    let mut failures: Vec<String> = Vec::new();
    let results: Vec<RunResult> = sweep_supervised(configs, &SweepOptions::default())
        .into_iter()
        .filter_map(|r| match r {
            Ok(r) => Some(r),
            Err(e) => {
                failures.push(e.to_string());
                None
            }
        })
        .collect();
    assert!(
        failures.is_empty(),
        "sweep failed for {} of {} configurations:\n  {}",
        failures.len(),
        configs.len(),
        failures.join("\n  ")
    );
    results
}

/// Runs one configuration under `n` distinct seeds (in parallel) and
/// returns the per-seed results — the raw material for replication
/// statistics on any stochastic metric.
pub fn replicate(cfg: &RunConfig, n: usize) -> Vec<RunResult> {
    let configs: Vec<RunConfig> = (0..n as u64)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg
                .seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            c
        })
        .collect();
    sweep(&configs)
}

/// Mean ± population standard deviation of the headline metrics across
/// replications of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationSummary {
    pub runs: usize,
    pub normalized_deadlocks: (f64, f64),
    pub accepted_load: (f64, f64),
    pub avg_latency: (f64, f64),
    pub deadlock_set_mean: (f64, f64),
}

/// Aggregates [`replicate`] output.
pub fn replication_summary(results: &[RunResult]) -> ReplicationSummary {
    assert!(!results.is_empty(), "need at least one replication");
    let stat = |f: &dyn Fn(&RunResult) -> f64| {
        let mut m = icn_metrics::Mean::new();
        for r in results {
            let v = f(r);
            if v.is_finite() {
                m.record(v);
            }
        }
        (m.mean(), m.std_dev())
    };
    ReplicationSummary {
        runs: results.len(),
        normalized_deadlocks: stat(&|r| r.normalized_deadlocks()),
        accepted_load: stat(&|r| r.accepted_load()),
        avg_latency: stat(&|r| r.avg_latency()),
        deadlock_set_mean: stat(&|r| r.deadlock_set.mean()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoutingSpec;

    fn quick_cfg(load: f64) -> RunConfig {
        let mut c = RunConfig::small_default();
        c.warmup = 200;
        c.measure = 800;
        c.load = load;
        c.routing = RoutingSpec::Tfar;
        c.sim.vcs_per_channel = 2;
        c
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.6)];
        let par = sweep(&configs);
        assert_eq!(par.len(), 2);
        assert!(par[0].offered_load < par[1].offered_load);
        let serial: Vec<_> = configs.iter().map(run).collect();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert_eq!(p.delivered, s.delivered);
            assert_eq!(p.deadlocks, s.deadlocks);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[]).is_empty());
    }

    /// A deliberately panicking configuration (zero VCs fails
    /// `SimConfig::validate` on every attempt) must degrade to a
    /// per-slot error while its siblings complete normally.
    #[test]
    fn panicking_worker_degrades_to_error() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let configs = vec![quick_cfg(0.2), poison, quick_cfg(0.3)];
        let opts = SweepOptions {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let results = sweep_supervised(&configs, &opts);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "sibling before the poison must finish");
        assert!(results[2].is_ok(), "sibling after the poison must finish");
        match &results[1] {
            Err(SweepError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(*attempts, 2);
                assert!(
                    message.contains("vcs_per_channel"),
                    "panic message should surface: {message}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The healthy siblings are byte-identical to solo runs.
        assert_eq!(
            results[0].as_ref().unwrap().digest(),
            run(&configs[0]).digest()
        );
    }

    #[test]
    #[should_panic(expected = "sweep failed for 1 of 1")]
    fn strict_sweep_panics_after_completion() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let _ = sweep(&[poison]);
    }

    /// Interrupt-and-resume: a checkpoint written by one invocation is
    /// picked up by the next, which re-runs only the missing slots and
    /// reproduces the uninterrupted sweep byte-for-byte.
    #[test]
    fn checkpoint_resume_is_digest_exact() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        // First pass: only the first config, checkpointed.
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let first = sweep_supervised(&configs[..1], &opts);
        assert!(first[0].is_ok());

        // Resumed pass over the full sweep: slot 0 must come from disk.
        let resumed = sweep_supervised(&configs, &opts);
        let fresh = sweep(&configs);
        for (r, f) in resumed.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }

        // The checkpoint now covers both slots; a third pass restores
        // everything without running anything (workers see no pending
        // slots).
        let restored = sweep_supervised(&configs, &opts);
        for (r, f) in restored.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Retry-and-reseed: a runner that panics on the original seed but
    /// succeeds on any perturbed one must be rescued by the retry loop,
    /// and the rescue must use the documented perturbation scheme.
    #[test]
    fn retry_reseeds_after_injected_panic() {
        let cfg = quick_cfg(0.2);
        let original_seed = cfg.seed;
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let opts = SweepOptions {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let r = run_guarded_with(&cfg, &opts, |c| {
            attempts.fetch_add(1, Ordering::SeqCst);
            assert!(
                c.seed == original_seed
                    || c.seed
                        == original_seed.wrapping_add(1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
                "unexpected reseed value {:#x}",
                c.seed
            );
            if c.seed == original_seed {
                panic!("injected load-order-dependent panic");
            }
            run(c)
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "first try + one retry");
        let r = r.expect("perturbed seed should succeed");
        // The rescued result is the perturbed-seed run, byte-exactly.
        let mut reseeded = cfg.clone();
        reseeded.seed = original_seed.wrapping_add(0x9e37_79b9_7f4a_7c15 | 1);
        assert_eq!(r.digest(), run(&reseeded).digest());
    }

    /// A deterministic panic exhausts every attempt and reports the
    /// attempt count and final message.
    #[test]
    fn deterministic_panic_exhausts_all_attempts() {
        let cfg = quick_cfg(0.2);
        let attempts = std::sync::atomic::AtomicU32::new(0);
        let opts = SweepOptions {
            retries: 3,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let r = run_guarded_with(&cfg, &opts, |_| -> RunResult {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always broken")
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 4);
        match r {
            Err(SweepError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(attempts, 4);
                assert!(message.contains("always broken"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    /// Backoff ordering: doubles per retry, clamps at the cap, and never
    /// decreases.
    #[test]
    fn backoff_doubles_then_clamps() {
        let opts = SweepOptions {
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(350),
            ..SweepOptions::default()
        };
        let seq: Vec<Duration> = (1..=5).map(|a| backoff_for(a, &opts)).collect();
        assert_eq!(
            seq,
            vec![
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(350),
                Duration::from_millis(350),
            ]
        );
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "backoff must be monotone");
        }
        // The shift exponent saturates instead of overflowing on absurd
        // attempt counts.
        assert_eq!(backoff_for(64, &opts), Duration::from_millis(350));
    }

    /// Checkpoint-resume from a file whose final line was torn by a hard
    /// kill: the torn slot re-runs, the intact slot restores, accounting
    /// reports the tear, and the resumed sweep is digest-exact against an
    /// uninterrupted run.
    #[test]
    fn truncated_checkpoint_resumes_digest_exact() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let full = sweep_supervised_report(&configs, &opts);
        assert!(full.results.iter().all(Result::is_ok));
        let ck = full.checkpoint.expect("checkpoint accounting present");
        assert_eq!(
            ck,
            CheckpointRestore::default(),
            "fresh run restores nothing"
        );

        // Simulate the writer dying mid-append: cut the file mid-way
        // through its final line (no trailing newline).
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
        std::fs::write(&path, &torn).unwrap();

        let resumed = sweep_supervised_report(&configs, &opts);
        let ck = resumed.checkpoint.unwrap();
        assert_eq!(ck.restored, 1, "the intact line restores");
        assert!(ck.torn_tail, "the tear must be reported");
        assert_eq!(ck.skipped_lines, 0, "a torn tail is not counted as loss");

        let fresh = sweep(&configs);
        for (r, f) in resumed.results.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Interior garbage (a corrupted line in the middle of the file) is
    /// counted as skipped, not silently dropped.
    #[test]
    fn corrupted_interior_line_is_counted() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let _ = sweep_supervised(&configs, &opts);

        // Corrupt the first line in place, keep the second intact.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let corrupted = format!("{}XX\n{}\n", &lines[0][..lines[0].len() - 2], lines[1]);
        std::fs::write(&path, &corrupted).unwrap();

        let resumed = sweep_supervised_report(&configs, &opts);
        let ck = resumed.checkpoint.unwrap();
        assert_eq!(ck.restored, 1);
        assert_eq!(ck.skipped_lines, 1, "the corrupted line is accounted for");
        assert!(!ck.torn_tail);
        // The damaged slot re-ran; results still match a fresh sweep.
        let fresh = sweep(&configs);
        for (r, f) in resumed.results.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_uses_distinct_seeds_and_summarizes() {
        let mut cfg = RunConfig::small_default();
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let reps = replicate(&cfg, 3);
        assert_eq!(reps.len(), 3);
        // Different seeds should produce (at least slightly) different
        // traffic volumes.
        let gens: std::collections::HashSet<u64> = reps.iter().map(|r| r.generated).collect();
        assert!(gens.len() > 1, "replications look identical");
        let s = replication_summary(&reps);
        assert_eq!(s.runs, 3);
        assert!(s.accepted_load.0 > 0.0);
        assert!(s.avg_latency.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn empty_summary_rejected() {
        let _ = replication_summary(&[]);
    }
}
