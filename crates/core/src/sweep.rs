//! Parallel execution of simulation sweeps, with supervision.
//!
//! [`sweep_supervised`] is the hardened engine: worker panics are caught
//! and retried with perturbed seeds (bounded backoff between attempts),
//! a failing configuration degrades to a per-slot [`SweepError`] instead
//! of aborting its siblings, and long campaigns can checkpoint finished
//! results to disk so an interrupted sweep resumes where it stopped.
//! [`sweep`] is the historical strict wrapper: same execution, but any
//! failed slot panics *after* every sibling has completed.

use crate::checkpoint::{decode_result, encode_result};
use crate::{run, RunConfig, RunResult};
use icn_cwg::jsonio::{obj, parse, Json};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Why a sweep slot has no result.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// Every attempt at this configuration panicked.
    Panicked {
        /// Label of the failing configuration.
        label: String,
        /// Attempts made (first try plus retries).
        attempts: u32,
        /// Panic payload of the final attempt.
        message: String,
    },
    /// The worker delivering this slot disappeared without reporting —
    /// only possible if a thread died outside the panic guard.
    Missing {
        /// Label of the configuration that went unreported.
        label: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Panicked {
                label,
                attempts,
                message,
            } => write!(
                f,
                "`{label}` panicked on all {attempts} attempts: {message}"
            ),
            SweepError::Missing { label } => write!(f, "`{label}` was never reported"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Supervision knobs for [`sweep_supervised`].
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Extra attempts after a panicking first run (each with a perturbed
    /// seed, in case the panic was load-order dependent).
    pub retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
    /// When `Some`, finished results are appended to this file as JSON
    /// lines, and a rerun of the same sweep resumes from it: slots whose
    /// recorded label matches the configuration are restored instead of
    /// re-run. Checkpointed results are byte-exact (digest-identical to a
    /// fresh run).
    pub checkpoint: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            retries: 2,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            checkpoint: None,
        }
    }
}

/// One worker attempt cycle: run under a panic guard, retrying with a
/// perturbed seed and bounded backoff. Returns the result or the final
/// panic message.
fn run_guarded(cfg: &RunConfig, opts: &SweepOptions) -> Result<RunResult, SweepError> {
    let attempts = opts.retries + 1;
    let mut last_message = String::new();
    for attempt in 0..attempts {
        let mut c = cfg.clone();
        if attempt > 0 {
            // Same perturbation scheme as `replicate`: a reseed can clear
            // panics tied to a particular traffic realization, while a
            // deterministic bug fails every attempt and surfaces as Err.
            c.seed = cfg
                .seed
                .wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            let exp = (attempt - 1).min(20);
            std::thread::sleep(opts.backoff.saturating_mul(1 << exp).min(opts.max_backoff));
        }
        match catch_unwind(AssertUnwindSafe(|| run(&c))) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                last_message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
            }
        }
    }
    Err(SweepError::Panicked {
        label: cfg.label(),
        attempts,
        message: last_message,
    })
}

/// Restores completed slots from a checkpoint file. Lines that fail to
/// parse (e.g. a torn final line from an interrupted writer), name an
/// out-of-range index, or carry a label that no longer matches the
/// configuration are skipped — they belong to a different sweep.
fn restore_checkpoint(
    path: &std::path::Path,
    configs: &[RunConfig],
    slots: &mut [Option<Result<RunResult, SweepError>>],
) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for line in text.lines() {
        let Ok(v) = parse(line) else { continue };
        let Some(i) = v.get("index").and_then(Json::as_u64) else {
            continue;
        };
        let i = i as usize;
        if i >= configs.len() {
            continue;
        }
        let label_matches = v.get("label").and_then(Json::as_str) == Some(&configs[i].label());
        if !label_matches {
            continue;
        }
        let Some(r) = v.get("result").and_then(|r| decode_result(r).ok()) else {
            continue;
        };
        slots[i] = Some(Ok(r));
    }
}

fn checkpoint_line(index: usize, label: &str, result: &RunResult) -> String {
    obj(vec![
        ("index", Json::U64(index as u64)),
        ("label", Json::Str(label.to_string())),
        ("result", encode_result(result)),
    ])
    .to_string()
}

/// Runs every configuration across OS threads under supervision and
/// returns per-slot results in input order. A panicking configuration
/// never takes its siblings down: its slot becomes `Err` after the
/// retries are exhausted while every other run completes normally.
pub fn sweep_supervised(
    configs: &[RunConfig],
    opts: &SweepOptions,
) -> Vec<Result<RunResult, SweepError>> {
    let mut slots: Vec<Option<Result<RunResult, SweepError>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    if configs.is_empty() {
        return Vec::new();
    }

    if let Some(path) = &opts.checkpoint {
        restore_checkpoint(path, configs, &mut slots);
    }
    let pending: Vec<usize> = (0..configs.len()).filter(|&i| slots[i].is_none()).collect();

    if !pending.is_empty() {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(pending.len());

        // The checkpoint writer is the receiving thread — a single
        // appender, so interleaved half-lines cannot happen.
        let mut ckpt = opts.checkpoint.as_ref().and_then(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
        });

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunResult, SweepError>)>();
        std::thread::scope(|scope| {
            let next = &next;
            let pending = &pending;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= pending.len() {
                        break;
                    }
                    let i = pending[n];
                    // A dropped receiver just means nobody wants the
                    // result any more; finish the remaining work quietly.
                    if tx.send((i, run_guarded(&configs[i], opts))).is_err() {
                        break;
                    }
                });
            }
            // The workers hold the remaining senders; once they all
            // finish, the channel closes and this drain ends.
            drop(tx);
            for (i, r) in rx {
                if let (Some(file), Ok(result)) = (ckpt.as_mut(), &r) {
                    let _ = writeln!(file, "{}", checkpoint_line(i, &configs[i].label(), result));
                }
                slots[i] = Some(r);
            }
        });
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or(Err(SweepError::Missing {
                label: configs[i].label(),
            }))
        })
        .collect()
}

/// Runs every configuration, fanning out across OS threads (one run is
/// single-threaded and deterministic, so parallelism across points is
/// safe), and returns results in input order.
///
/// This is the strict interface: a configuration that still fails after
/// the default retries panics here — but only after every sibling has
/// completed, so no finished work is discarded mid-flight. Callers that
/// want per-slot errors instead use [`sweep_supervised`].
pub fn sweep(configs: &[RunConfig]) -> Vec<RunResult> {
    let mut failures: Vec<String> = Vec::new();
    let results: Vec<RunResult> = sweep_supervised(configs, &SweepOptions::default())
        .into_iter()
        .filter_map(|r| match r {
            Ok(r) => Some(r),
            Err(e) => {
                failures.push(e.to_string());
                None
            }
        })
        .collect();
    assert!(
        failures.is_empty(),
        "sweep failed for {} of {} configurations:\n  {}",
        failures.len(),
        configs.len(),
        failures.join("\n  ")
    );
    results
}

/// Runs one configuration under `n` distinct seeds (in parallel) and
/// returns the per-seed results — the raw material for replication
/// statistics on any stochastic metric.
pub fn replicate(cfg: &RunConfig, n: usize) -> Vec<RunResult> {
    let configs: Vec<RunConfig> = (0..n as u64)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg
                .seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            c
        })
        .collect();
    sweep(&configs)
}

/// Mean ± population standard deviation of the headline metrics across
/// replications of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationSummary {
    pub runs: usize,
    pub normalized_deadlocks: (f64, f64),
    pub accepted_load: (f64, f64),
    pub avg_latency: (f64, f64),
    pub deadlock_set_mean: (f64, f64),
}

/// Aggregates [`replicate`] output.
pub fn replication_summary(results: &[RunResult]) -> ReplicationSummary {
    assert!(!results.is_empty(), "need at least one replication");
    let stat = |f: &dyn Fn(&RunResult) -> f64| {
        let mut m = icn_metrics::Mean::new();
        for r in results {
            let v = f(r);
            if v.is_finite() {
                m.record(v);
            }
        }
        (m.mean(), m.std_dev())
    };
    ReplicationSummary {
        runs: results.len(),
        normalized_deadlocks: stat(&|r| r.normalized_deadlocks()),
        accepted_load: stat(&|r| r.accepted_load()),
        avg_latency: stat(&|r| r.avg_latency()),
        deadlock_set_mean: stat(&|r| r.deadlock_set.mean()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RoutingSpec;

    fn quick_cfg(load: f64) -> RunConfig {
        let mut c = RunConfig::small_default();
        c.warmup = 200;
        c.measure = 800;
        c.load = load;
        c.routing = RoutingSpec::Tfar;
        c.sim.vcs_per_channel = 2;
        c
    }

    #[test]
    fn sweep_preserves_order_and_matches_serial() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.6)];
        let par = sweep(&configs);
        assert_eq!(par.len(), 2);
        assert!(par[0].offered_load < par[1].offered_load);
        let serial: Vec<_> = configs.iter().map(run).collect();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert_eq!(p.delivered, s.delivered);
            assert_eq!(p.deadlocks, s.deadlocks);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(sweep(&[]).is_empty());
    }

    /// A deliberately panicking configuration (zero VCs fails
    /// `SimConfig::validate` on every attempt) must degrade to a
    /// per-slot error while its siblings complete normally.
    #[test]
    fn panicking_worker_degrades_to_error() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let configs = vec![quick_cfg(0.2), poison, quick_cfg(0.3)];
        let opts = SweepOptions {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..SweepOptions::default()
        };
        let results = sweep_supervised(&configs, &opts);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "sibling before the poison must finish");
        assert!(results[2].is_ok(), "sibling after the poison must finish");
        match &results[1] {
            Err(SweepError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(*attempts, 2);
                assert!(
                    message.contains("vcs_per_channel"),
                    "panic message should surface: {message}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The healthy siblings are byte-identical to solo runs.
        assert_eq!(
            results[0].as_ref().unwrap().digest(),
            run(&configs[0]).digest()
        );
    }

    #[test]
    #[should_panic(expected = "sweep failed for 1 of 1")]
    fn strict_sweep_panics_after_completion() {
        let mut poison = quick_cfg(0.2);
        poison.sim.vcs_per_channel = 0;
        let _ = sweep(&[poison]);
    }

    /// Interrupt-and-resume: a checkpoint written by one invocation is
    /// picked up by the next, which re-runs only the missing slots and
    /// reproduces the uninterrupted sweep byte-for-byte.
    #[test]
    fn checkpoint_resume_is_digest_exact() {
        let configs = vec![quick_cfg(0.2), quick_cfg(0.4)];
        let dir = std::env::temp_dir().join(format!(
            "icn-sweep-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        // First pass: only the first config, checkpointed.
        let opts = SweepOptions {
            checkpoint: Some(path.clone()),
            ..SweepOptions::default()
        };
        let first = sweep_supervised(&configs[..1], &opts);
        assert!(first[0].is_ok());

        // Resumed pass over the full sweep: slot 0 must come from disk.
        let resumed = sweep_supervised(&configs, &opts);
        let fresh = sweep(&configs);
        for (r, f) in resumed.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }

        // The checkpoint now covers both slots; a third pass restores
        // everything without running anything (workers see no pending
        // slots).
        let restored = sweep_supervised(&configs, &opts);
        for (r, f) in restored.iter().zip(fresh.iter()) {
            assert_eq!(r.as_ref().unwrap().digest(), f.digest());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_uses_distinct_seeds_and_summarizes() {
        let mut cfg = RunConfig::small_default();
        cfg.warmup = 200;
        cfg.measure = 800;
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let reps = replicate(&cfg, 3);
        assert_eq!(reps.len(), 3);
        // Different seeds should produce (at least slightly) different
        // traffic volumes.
        let gens: std::collections::HashSet<u64> = reps.iter().map(|r| r.generated).collect();
        assert!(gens.len() > 1, "replications look identical");
        let s = replication_summary(&reps);
        assert_eq!(s.runs, 3);
        assert!(s.accepted_load.0 > 0.0);
        assert!(s.avg_latency.0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn empty_summary_rejected() {
        let _ = replication_summary(&[]);
    }
}
