//! Deterministic incident replay.
//!
//! The simulation is a pure function of its [`RunConfig`] (the only
//! randomness is `StdRng` seeded from `cfg.seed`), so re-running the
//! incident's config halts at the incident epoch with — if the record is
//! faithful — the *same* blocked wait-state. The assertion is two-fold:
//! the order-independent 64-bit wait-state fingerprint must match, and so
//! must the deadlock sets (the message ids of each knot).

use std::ops::ControlFlow;

use crate::runner::{run_with, EpochView, RunObserver};

use super::DeadlockIncident;

/// Outcome of [`replay`].
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Epoch cycle the replay halted at.
    pub cycle: u64,
    /// Fingerprint recorded in the incident.
    pub expected_fingerprint: u64,
    /// Fingerprint observed at the replayed epoch (`None` when the run
    /// ended before reaching it — a non-reproduction).
    pub observed_fingerprint: Option<u64>,
    /// Deadlock sets recorded in the incident (sorted).
    pub expected_sets: Vec<Vec<u64>>,
    /// Deadlock sets observed at the replayed epoch (sorted).
    pub observed_sets: Vec<Vec<u64>>,
}

impl ReplayReport {
    /// Whether the wait-state fingerprint re-formed identically.
    pub fn fingerprint_match(&self) -> bool {
        self.observed_fingerprint == Some(self.expected_fingerprint)
    }

    /// Whether the same knots (same message ids per deadlock set)
    /// re-formed.
    pub fn sets_match(&self) -> bool {
        self.expected_sets == self.observed_sets
    }

    /// Full reproduction: fingerprint and deadlock sets both match.
    pub fn reproduced(&self) -> bool {
        self.fingerprint_match() && self.sets_match()
    }
}

struct HaltAtEpoch {
    target: u64,
    fingerprint: Option<u64>,
    sets: Vec<Vec<u64>>,
}

impl RunObserver for HaltAtEpoch {
    fn on_epoch(&mut self, view: &EpochView<'_>) -> ControlFlow<()> {
        if view.cycle == self.target {
            self.fingerprint = Some(view.arena.fingerprint());
            self.sets = view
                .analysis
                .deadlocks
                .iter()
                .map(|d| d.deadlock_set.clone())
                .collect();
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }
}

fn sorted(mut sets: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    sets.sort();
    sets
}

/// Re-runs the incident's config + seed up to the incident epoch and
/// reports whether the identical knot re-formed.
///
/// Forensic capture is disabled for the re-run — tracing never perturbs
/// the simulation, so the replay is cycle-identical either way; skipping
/// it just makes the replay cheaper.
pub fn replay(incident: &DeadlockIncident) -> ReplayReport {
    let mut cfg = incident.config.clone();
    cfg.forensics = None;
    // Make sure the run actually reaches the incident epoch even if it
    // was captured close to the configured end of the window.
    let total = cfg.warmup + cfg.measure;
    if total < incident.cycle {
        cfg.measure += incident.cycle - total;
    }
    let mut halt = HaltAtEpoch {
        target: incident.cycle,
        fingerprint: None,
        sets: Vec::new(),
    };
    run_with(&cfg, &mut halt);
    ReplayReport {
        cycle: incident.cycle,
        expected_fingerprint: incident.fingerprint,
        observed_fingerprint: halt.fingerprint,
        expected_sets: sorted(incident.deadlock_sets()),
        observed_sets: sorted(halt.sets),
    }
}
