//! Deadlock forensics: incident capture, deterministic replay, and
//! scenario minimization.
//!
//! The paper characterizes deadlocks statistically; this subsystem turns
//! each detected knot into a *debuggable artifact*. With
//! [`RunConfig::forensics`](crate::RunConfig::forensics) set, the runner
//! captures a self-contained [`DeadlockIncident`] per knot-bearing
//! detection epoch:
//!
//! * the **cycle, config and seed** that produced it — a forensic run is
//!   cycle-identical to a plain run, so the incident alone pins down the
//!   exact deadlock;
//! * the full **CWG snapshot** and its knot [`Analysis`](icn_cwg::Analysis)
//!   (deadlock sets, resource sets, cycle densities, dependents);
//! * a per-member **formation timeline** reconstructed from `icn-sim`
//!   trace events — injection, every VC acquisition, the final blocking
//!   episode with the candidate channels the header failed to acquire —
//!   showing *how* the knot assembled itself;
//! * the **recovery outcome** (policy and victims dispatched).
//!
//! Three consumers operate on incidents:
//!
//! * [`IncidentStore`] persists them as JSON plus a knot-highlighted DOT
//!   rendering, under an `index.json` catalogue.
//! * [`replay`] re-runs config + seed to the incident epoch and asserts
//!   the same blocked-wait-state fingerprint and deadlock sets re-form.
//! * [`minimize`] shrinks the incident to the knot-induced sub-CWG
//!   (provably still a knot) and bisects the run for the shortest cycle
//!   prefix that reproduces the deadlock.

mod incident;
mod minimize;
mod replay;
mod store;
mod timeline;

pub use incident::{
    config_from_json, config_to_json, incidents_equal, CwgMsg, CwgSnapshot, DeadlockIncident,
    MemberTimeline, RecoveryOutcome,
};
pub use minimize::{minimize, minimize_cwg, shortest_prefix, MinimizedIncident, ShortestPrefix};
pub use replay::{replay, ReplayReport};
pub use store::{IncidentStore, IndexEntry};
pub use timeline::timeline_table;

use icn_cwg::Analysis;
use icn_sim::SnapshotArena;

use crate::result::RunResult;
use crate::RunConfig;
use timeline::TimelineIndex;

/// Incident-capture settings ([`RunConfig::forensics`]).
///
/// [`RunConfig::forensics`]: crate::RunConfig::forensics
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForensicsConfig {
    /// Full [`DeadlockIncident`] records retained per run (formation
    /// statistics keep accumulating past the cap).
    pub max_incidents: usize,
    /// Engine trace-buffer capacity between per-cycle drains. Events
    /// beyond it are dropped (and counted in
    /// [`DeadlockIncident::trace_dropped`]); the default is far above
    /// anything a single cycle emits.
    pub trace_capacity: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        ForensicsConfig {
            max_incidents: 8,
            trace_capacity: 1 << 16,
        }
    }
}

/// Runner-side capture state: absorbs trace events each cycle and turns
/// knot-bearing epochs into incidents.
pub(crate) struct ForensicsState {
    cfg: ForensicsConfig,
    timeline: TimelineIndex,
    /// Trace events lost to the capacity bound so far (0 = complete).
    dropped: u64,
    seq: u32,
}

impl ForensicsState {
    pub fn new(cfg: ForensicsConfig) -> Self {
        ForensicsState {
            cfg,
            timeline: TimelineIndex::new(),
            dropped: 0,
            seq: 0,
        }
    }

    /// Folds one cycle's drained trace events into the timeline index.
    pub fn absorb(&mut self, events: Vec<icn_sim::TraceEvent>, dropped: u64) {
        self.dropped += dropped;
        self.timeline.absorb(events);
    }

    /// Records a detection epoch's knots: formation statistics always,
    /// plus a full [`DeadlockIncident`] while under the cap. Called after
    /// the recovery loop so the outcome (victims) is known.
    pub fn record_epoch(
        &mut self,
        run_cfg: &RunConfig,
        arena: &SnapshotArena,
        analysis: &Analysis,
        victims: &[u64],
        cycle: u64,
        formation: &[u64],
        res: &mut RunResult,
    ) {
        if analysis.deadlocks.is_empty() {
            return;
        }
        for d in &analysis.deadlocks {
            if let Some(stats) = self.timeline.formation_stats(&d.deadlock_set) {
                for latency in &stats.member_latencies {
                    res.formation_latency.record(*latency);
                }
                res.formation_spread.record(stats.spread);
            }
        }
        if res.forensic_incidents.len() < self.cfg.max_incidents {
            let inc = DeadlockIncident::capture(
                self.seq,
                cycle,
                formation.iter().copied().max().unwrap_or(cycle),
                run_cfg,
                arena,
                analysis,
                victims,
                &self.timeline,
                self.dropped,
            );
            res.forensic_incidents.push(inc);
        }
        self.seq += 1;
    }
}
