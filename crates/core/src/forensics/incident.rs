//! The self-contained incident record and its JSON form.

use icn_cwg::jsonio::{obj, parse, u64_arr, Json, ParseError};
use icn_cwg::{analyses_equal, Analysis, WaitGraph};
use icn_sim::{SimConfig, SnapshotArena, TraceEvent};
use icn_topology::{ChannelId, NodeId};
use icn_traffic::{MsgLenDist, Pattern};

use crate::spec::{DetectionMode, RecoveryPolicy, RoutingSpec, TopologySpec};
use crate::{ForensicsConfig, RunConfig};

use super::timeline::{final_block_cycle, injected_cycle, TimelineIndex};

/// One message of a [`CwgSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CwgMsg {
    /// Message id.
    pub id: u64,
    /// Vertices the message holds (acquisition order).
    pub chain: Vec<u32>,
    /// Vertices the message is blocked waiting for.
    pub requests: Vec<u32>,
}

/// An owned copy of one epoch's channel wait-for graph, as data. The
/// incident keeps this rather than a [`WaitGraph`] because recovery
/// mutates the live graph in place; the snapshot arena it was built from
/// is immutable, so the record is pre-recovery by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CwgSnapshot {
    /// Total vertex count (VCs plus reception channels).
    pub num_vertices: usize,
    /// Per-message ownership chains and request sets.
    pub messages: Vec<CwgMsg>,
}

impl CwgSnapshot {
    pub(crate) fn from_arena(arena: &SnapshotArena) -> Self {
        CwgSnapshot {
            num_vertices: arena.num_vertices(),
            messages: arena
                .messages()
                .map(|m| CwgMsg {
                    id: m.id,
                    chain: m.chain.to_vec(),
                    requests: m.requests.to_vec(),
                })
                .collect(),
        }
    }

    /// Rebuilds the live graph this snapshot describes, ready for
    /// re-analysis.
    pub fn build_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new(self.num_vertices);
        for m in &self.messages {
            g.add_chain(m.id, &m.chain);
        }
        for m in &self.messages {
            if !m.requests.is_empty() {
                g.add_requests(m.id, &m.requests);
            }
        }
        g
    }

    /// Serializes in the same shape as [`WaitGraph::to_json`].
    pub fn to_json(&self) -> Json {
        let messages: Vec<Json> = self
            .messages
            .iter()
            .map(|m| {
                obj(vec![
                    ("id", Json::U64(m.id)),
                    ("chain", u64_arr(m.chain.iter().map(|&v| v as u64))),
                    ("requests", u64_arr(m.requests.iter().map(|&v| v as u64))),
                ])
            })
            .collect();
        obj(vec![
            ("num_vertices", Json::U64(self.num_vertices as u64)),
            ("messages", Json::Arr(messages)),
        ])
    }

    /// Parses and re-validates a snapshot. Validation goes through
    /// [`WaitGraph::from_json`], so a parsed snapshot can never describe a
    /// graph the detector could not build.
    pub fn from_json(v: &Json) -> Result<Self, ParseError> {
        let g = WaitGraph::from_json(v)?;
        Ok(CwgSnapshot {
            num_vertices: g.num_vertices(),
            messages: g
                .messages()
                .map(|id| CwgMsg {
                    id,
                    chain: g.chain(id).unwrap_or(&[]).to_vec(),
                    requests: g.requests_of(id).unwrap_or(&[]).to_vec(),
                })
                .collect(),
        })
    }
}

/// The recorded event log of one deadlock-set member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberTimeline {
    /// Message id.
    pub id: u64,
    /// Lifecycle events in emission order: injection, VC acquisitions,
    /// blocking episodes (with failed candidates), recovery.
    pub events: Vec<TraceEvent>,
}

impl MemberTimeline {
    /// Cycle the message left its source queue.
    pub fn injected_at(&self) -> Option<u64> {
        injected_cycle(&self.events)
    }

    /// VCs acquired before the final block.
    pub fn hops(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Acquired { .. }))
            .count()
    }

    /// The final blocking episode: `(cycle, node, failed candidates)`.
    /// Empty candidates mean the message waits for a reception channel.
    pub fn final_block(&self) -> Option<(u64, u32, &[ChannelId])> {
        self.events.iter().rev().find_map(|ev| match ev {
            TraceEvent::Blocked {
                cycle,
                at,
                candidates,
                ..
            } => Some((*cycle, at.0, candidates.as_slice())),
            _ => None,
        })
    }
}

/// How the runner resolved the incident's knots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Victim-selection policy in force.
    pub policy: RecoveryPolicy,
    /// Messages dispatched to the recovery lane at this epoch, in
    /// dispatch order (empty under [`RecoveryPolicy::None`]).
    pub victims: Vec<u64>,
}

/// A self-contained record of one knot-bearing detection epoch: enough to
/// re-render, deterministically replay ([`replay`](super::replay)) and
/// minimize ([`minimize`](super::minimize)) the deadlock with no other
/// state.
#[derive(Clone, Debug)]
pub struct DeadlockIncident {
    /// Capture ordinal within the run (0-based, counts epochs with knots).
    pub seq: u32,
    /// Cycle of the detection epoch that found the knot(s).
    pub cycle: u64,
    /// Exact formation cycle: the latest block stamp across the epoch's
    /// deadlock-set members — when the last participant wedged. At most
    /// [`cycle`](Self::cycle); the gap is the detection lag the
    /// incremental detector eliminates from recovery dispatch.
    pub formation_cycle: u64,
    /// The exact configuration — including the seed — that produced it.
    pub config: RunConfig,
    /// Blocked-wait-state fingerprint of the capture epoch.
    pub fingerprint: u64,
    /// The full pre-recovery CWG.
    pub cwg: CwgSnapshot,
    /// The epoch's knot analysis (deadlock/resource sets, densities,
    /// dependents).
    pub analysis: Analysis,
    /// Formation timelines of every deadlock-set member, sorted by id.
    pub timelines: Vec<MemberTimeline>,
    /// Recovery outcome at this epoch.
    pub recovery: RecoveryOutcome,
    /// Trace events dropped before capture (0 = timelines complete).
    pub trace_dropped: u64,
}

impl DeadlockIncident {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        seq: u32,
        cycle: u64,
        formation_cycle: u64,
        cfg: &RunConfig,
        arena: &SnapshotArena,
        analysis: &Analysis,
        victims: &[u64],
        timeline: &TimelineIndex,
        trace_dropped: u64,
    ) -> Self {
        let mut members: Vec<u64> = analysis
            .deadlocks
            .iter()
            .flat_map(|d| d.deadlock_set.iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        let timelines = members
            .iter()
            .map(|&m| MemberTimeline {
                id: m,
                events: timeline.events_of(m).to_vec(),
            })
            .collect();
        DeadlockIncident {
            seq,
            cycle,
            formation_cycle,
            config: cfg.clone(),
            fingerprint: arena.fingerprint(),
            cwg: CwgSnapshot::from_arena(arena),
            analysis: analysis.clone(),
            timelines,
            recovery: RecoveryOutcome {
                policy: cfg.recovery,
                victims: victims.to_vec(),
            },
            trace_dropped,
        }
    }

    /// Every deadlock-set member across the epoch's knots, sorted.
    pub fn members(&self) -> Vec<u64> {
        self.timelines.iter().map(|t| t.id).collect()
    }

    /// The deadlock sets, one per knot.
    pub fn deadlock_sets(&self) -> Vec<Vec<u64>> {
        self.analysis
            .deadlocks
            .iter()
            .map(|d| d.deadlock_set.clone())
            .collect()
    }

    /// Cycle the knot closed — the first cycle boundary at which every
    /// member was blocked, i.e. the shortest run prefix that exhibits the
    /// knot. Trace events are stamped with the in-progress cycle (one
    /// less than the post-step cycle counter [`cycle`](Self::cycle) uses),
    /// so this is one past the last member's final `Blocked` event.
    /// Falls back to the detection cycle when timelines are empty.
    pub fn closure_cycle(&self) -> u64 {
        self.timelines
            .iter()
            .filter_map(|t| final_block_cycle(&t.events))
            .max()
            .map(|c| c + 1)
            .unwrap_or(self.cycle)
    }

    /// The timeline of member `id`.
    pub fn timeline_of(&self, id: u64) -> Option<&MemberTimeline> {
        self.timelines.iter().find(|t| t.id == id)
    }

    /// Knot-highlighted Graphviz rendering, titled with the config label
    /// and capture cycle.
    pub fn to_dot(&self) -> String {
        let g = self.cwg.build_graph();
        let title = format!("{} @ cycle {}", self.config.label(), self.cycle);
        g.to_dot_titled(&title, Some(&self.analysis))
    }

    /// Serializes the incident as a JSON value.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("seq", Json::U64(self.seq as u64)),
            ("cycle", Json::U64(self.cycle)),
            ("formation_cycle", Json::U64(self.formation_cycle)),
            ("fingerprint", Json::U64(self.fingerprint)),
            ("config", config_to_json(&self.config)),
            ("cwg", self.cwg.to_json()),
            ("analysis", self.analysis.to_json()),
            (
                "timelines",
                Json::Arr(
                    self.timelines
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("id", Json::U64(t.id)),
                                (
                                    "events",
                                    Json::Arr(t.events.iter().map(event_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "recovery",
                obj(vec![
                    (
                        "policy",
                        Json::Str(recovery_name(self.recovery.policy).to_string()),
                    ),
                    ("victims", u64_arr(self.recovery.victims.iter().copied())),
                ]),
            ),
            ("trace_dropped", Json::U64(self.trace_dropped)),
        ])
    }

    /// Compact JSON text of [`to_json`](Self::to_json).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Rebuilds an incident from its JSON form.
    pub fn from_json(v: &Json) -> Result<Self, ParseError> {
        let mut timelines = Vec::new();
        for t in get(v, "timelines")?
            .as_arr()
            .ok_or_else(|| bad("`timelines` must be an array"))?
        {
            let mut events = Vec::new();
            for e in get(t, "events")?
                .as_arr()
                .ok_or_else(|| bad("`events` must be an array"))?
            {
                events.push(event_from_json(e)?);
            }
            timelines.push(MemberTimeline {
                id: get_u64(t, "id")?,
                events,
            });
        }
        let rec = get(v, "recovery")?;
        let policy = match get(rec, "policy")?.as_str() {
            Some(s) => recovery_from_name(s)?,
            None => return Err(bad("`policy` must be a string")),
        };
        let cycle = get_u64(v, "cycle")?;
        Ok(DeadlockIncident {
            seq: get_u64(v, "seq")? as u32,
            cycle,
            // Records from before formation tracking default to the
            // detection cycle (zero measured lag).
            formation_cycle: match get_u64(v, "formation_cycle") {
                Ok(f) => f,
                Err(_) => cycle,
            },
            config: config_from_json(get(v, "config")?)?,
            fingerprint: get_u64(v, "fingerprint")?,
            cwg: CwgSnapshot::from_json(get(v, "cwg")?)?,
            analysis: Analysis::from_json(get(v, "analysis")?)?,
            timelines,
            recovery: RecoveryOutcome {
                policy,
                victims: get_u64_vec(rec, "victims")?,
            },
            trace_dropped: get_u64(v, "trace_dropped")?,
        })
    }

    /// Parses an incident from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ParseError> {
        Self::from_json(&parse(text)?)
    }
}

/// Structural equality of two incidents (the nested [`Analysis`] carries
/// no `PartialEq`; round-trip tests compare through this).
pub fn incidents_equal(a: &DeadlockIncident, b: &DeadlockIncident) -> bool {
    a.seq == b.seq
        && a.cycle == b.cycle
        && a.formation_cycle == b.formation_cycle
        && a.config == b.config
        && a.fingerprint == b.fingerprint
        && a.cwg == b.cwg
        && analyses_equal(&a.analysis, &b.analysis)
        && a.timelines == b.timelines
        && a.recovery == b.recovery
        && a.trace_dropped == b.trace_dropped
}

// ---------------------------------------------------------------------
// JSON helpers (shared with the rest of the orchestration layer).

use crate::jsonio::{bad, get, get_bool, get_f64, get_str, get_u64, get_u64_vec};

// ---------------------------------------------------------------------
// Trace-event serialization.

fn event_to_json(ev: &TraceEvent) -> Json {
    match ev {
        TraceEvent::Injected {
            cycle,
            id,
            src,
            dst,
            len,
        } => obj(vec![
            ("t", Json::Str("injected".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
            ("src", Json::U64(src.0 as u64)),
            ("dst", Json::U64(dst.0 as u64)),
            ("len", Json::U64(*len as u64)),
        ]),
        TraceEvent::Acquired {
            cycle,
            id,
            channel,
            vc,
        } => obj(vec![
            ("t", Json::Str("acquired".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
            ("channel", Json::U64(channel.0 as u64)),
            ("vc", Json::U64(*vc as u64)),
        ]),
        TraceEvent::Blocked {
            cycle,
            id,
            at,
            candidates,
        } => obj(vec![
            ("t", Json::Str("blocked".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
            ("at", Json::U64(at.0 as u64)),
            ("candidates", u64_arr(candidates.iter().map(|c| c.0 as u64))),
        ]),
        TraceEvent::EjectStart { cycle, id } => obj(vec![
            ("t", Json::Str("eject-start".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
        ]),
        TraceEvent::RecoveryStart { cycle, id } => obj(vec![
            ("t", Json::Str("recovery-start".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
        ]),
        TraceEvent::Delivered {
            cycle,
            id,
            recovered,
        } => obj(vec![
            ("t", Json::Str("delivered".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
            ("recovered", Json::Bool(*recovered)),
        ]),
        TraceEvent::FaultLoss { cycle, id } => obj(vec![
            ("t", Json::Str("fault-loss".into())),
            ("cycle", Json::U64(*cycle)),
            ("id", Json::U64(*id)),
        ]),
    }
}

fn event_from_json(v: &Json) -> Result<TraceEvent, ParseError> {
    let cycle = get_u64(v, "cycle")?;
    let id = get_u64(v, "id")?;
    Ok(match get_str(v, "t")? {
        "injected" => TraceEvent::Injected {
            cycle,
            id,
            src: NodeId(get_u64(v, "src")? as u32),
            dst: NodeId(get_u64(v, "dst")? as u32),
            len: get_u64(v, "len")? as u32,
        },
        "acquired" => TraceEvent::Acquired {
            cycle,
            id,
            channel: ChannelId(get_u64(v, "channel")? as u32),
            vc: get_u64(v, "vc")? as u8,
        },
        "blocked" => TraceEvent::Blocked {
            cycle,
            id,
            at: NodeId(get_u64(v, "at")? as u32),
            candidates: get_u64_vec(v, "candidates")?
                .into_iter()
                .map(|c| ChannelId(c as u32))
                .collect(),
        },
        "eject-start" => TraceEvent::EjectStart { cycle, id },
        "recovery-start" => TraceEvent::RecoveryStart { cycle, id },
        "fault-loss" => TraceEvent::FaultLoss { cycle, id },
        "delivered" => TraceEvent::Delivered {
            cycle,
            id,
            recovered: get_bool(v, "recovered")?,
        },
        other => return Err(bad(&format!("unknown trace event `{other}`"))),
    })
}

// ---------------------------------------------------------------------
// Config serialization. The incident must be replayable from disk, so
// the whole RunConfig — seed included — round-trips through JSON.

fn recovery_name(p: RecoveryPolicy) -> &'static str {
    match p {
        RecoveryPolicy::None => "none",
        RecoveryPolicy::RemoveOldest => "remove-oldest",
        RecoveryPolicy::RemoveYoungest => "remove-youngest",
    }
}

fn recovery_from_name(s: &str) -> Result<RecoveryPolicy, ParseError> {
    Ok(match s {
        "none" => RecoveryPolicy::None,
        "remove-oldest" => RecoveryPolicy::RemoveOldest,
        "remove-youngest" => RecoveryPolicy::RemoveYoungest,
        other => return Err(bad(&format!("unknown recovery policy `{other}`"))),
    })
}

fn routing_to_json(r: RoutingSpec) -> Json {
    let kind = |s: &str| vec![("kind", Json::Str(s.to_string()))];
    match r {
        RoutingSpec::Dor => obj(kind("dor")),
        RoutingSpec::Tfar => obj(kind("tfar")),
        RoutingSpec::DatelineDor => obj(kind("dateline-dor")),
        RoutingSpec::Duato => obj(kind("duato")),
        RoutingSpec::WestFirst => obj(kind("west-first")),
        RoutingSpec::NegativeFirst => obj(kind("negative-first")),
        RoutingSpec::Misroute { budget } => obj(vec![
            ("kind", Json::Str("misroute".to_string())),
            ("budget", Json::U64(budget as u64)),
        ]),
    }
}

fn routing_from_json(v: &Json) -> Result<RoutingSpec, ParseError> {
    Ok(match get_str(v, "kind")? {
        "dor" => RoutingSpec::Dor,
        "tfar" => RoutingSpec::Tfar,
        "dateline-dor" => RoutingSpec::DatelineDor,
        "duato" => RoutingSpec::Duato,
        "west-first" => RoutingSpec::WestFirst,
        "negative-first" => RoutingSpec::NegativeFirst,
        "misroute" => RoutingSpec::Misroute {
            budget: get_u64(v, "budget")? as u8,
        },
        other => return Err(bad(&format!("unknown routing `{other}`"))),
    })
}

fn pattern_to_json(p: &Pattern) -> Json {
    let kind = |s: &str| vec![("kind", Json::Str(s.to_string()))];
    match p {
        Pattern::Uniform => obj(kind("uniform")),
        Pattern::BitReversal => obj(kind("bit-reversal")),
        Pattern::Transpose => obj(kind("transpose")),
        Pattern::PerfectShuffle => obj(kind("perfect-shuffle")),
        Pattern::BitComplement => obj(kind("bit-complement")),
        Pattern::HotSpot { hot, fraction } => obj(vec![
            ("kind", Json::Str("hot-spot".to_string())),
            ("hot", Json::U64(hot.0 as u64)),
            ("fraction", Json::F64(*fraction)),
        ]),
    }
}

fn pattern_from_json(v: &Json) -> Result<Pattern, ParseError> {
    Ok(match get_str(v, "kind")? {
        "uniform" => Pattern::Uniform,
        "bit-reversal" => Pattern::BitReversal,
        "transpose" => Pattern::Transpose,
        "perfect-shuffle" => Pattern::PerfectShuffle,
        "bit-complement" => Pattern::BitComplement,
        "hot-spot" => Pattern::HotSpot {
            hot: NodeId(get_u64(v, "hot")? as u32),
            fraction: get_f64(v, "fraction")?,
        },
        other => return Err(bad(&format!("unknown pattern `{other}`"))),
    })
}

fn len_dist_to_json(d: &MsgLenDist) -> Json {
    match *d {
        MsgLenDist::Fixed(len) => obj(vec![
            ("kind", Json::Str("fixed".to_string())),
            ("len", Json::U64(len as u64)),
        ]),
        MsgLenDist::Bimodal {
            short,
            long,
            long_frac,
        } => obj(vec![
            ("kind", Json::Str("bimodal".to_string())),
            ("short", Json::U64(short as u64)),
            ("long", Json::U64(long as u64)),
            ("long_frac", Json::F64(long_frac)),
        ]),
    }
}

fn len_dist_from_json(v: &Json) -> Result<MsgLenDist, ParseError> {
    Ok(match get_str(v, "kind")? {
        "fixed" => MsgLenDist::Fixed(get_u64(v, "len")? as usize),
        "bimodal" => MsgLenDist::Bimodal {
            short: get_u64(v, "short")? as usize,
            long: get_u64(v, "long")? as usize,
            long_frac: get_f64(v, "long_frac")?,
        },
        other => return Err(bad(&format!("unknown length distribution `{other}`"))),
    })
}

/// Serializes a full [`RunConfig`] — the canonical machine-readable
/// config form, used inside incidents, campaign-server job submissions,
/// and cache keys.
pub fn config_to_json(cfg: &RunConfig) -> Json {
    obj(vec![
        (
            "topology",
            obj(vec![
                ("k", Json::U64(cfg.topology.k as u64)),
                ("n", Json::U64(cfg.topology.n as u64)),
                ("torus", Json::Bool(cfg.topology.torus)),
                ("bidirectional", Json::Bool(cfg.topology.bidirectional)),
            ]),
        ),
        ("routing", routing_to_json(cfg.routing)),
        (
            "sim",
            obj(vec![
                ("vcs_per_channel", Json::U64(cfg.sim.vcs_per_channel as u64)),
                ("buffer_depth", Json::U64(cfg.sim.buffer_depth as u64)),
                ("msg_len", Json::U64(cfg.sim.msg_len as u64)),
            ]),
        ),
        ("pattern", pattern_to_json(&cfg.pattern)),
        ("len_dist", len_dist_to_json(&cfg.len_dist)),
        ("load", Json::F64(cfg.load)),
        ("warmup", Json::U64(cfg.warmup)),
        ("measure", Json::U64(cfg.measure)),
        ("detection_interval", Json::U64(cfg.detection_interval)),
        ("detection", Json::Str(cfg.detection.name().to_string())),
        (
            "count_cycles_every",
            match cfg.count_cycles_every {
                Some(n) => Json::U64(n),
                None => Json::Null,
            },
        ),
        ("cycle_cap", Json::U64(cfg.cycle_cap)),
        ("density_cap", Json::U64(cfg.density_cap)),
        ("fingerprint_skip", Json::Bool(cfg.fingerprint_skip)),
        (
            "recovery",
            Json::Str(recovery_name(cfg.recovery).to_string()),
        ),
        ("seed", Json::U64(cfg.seed)),
        (
            "forensics",
            match cfg.forensics {
                Some(f) => obj(vec![
                    ("max_incidents", Json::U64(f.max_incidents as u64)),
                    ("trace_capacity", Json::U64(f.trace_capacity as u64)),
                ]),
                None => Json::Null,
            },
        ),
        ("faults", crate::faults::plan_to_json(&cfg.faults)),
        ("transfer_threads", Json::U64(cfg.transfer_threads as u64)),
        ("shards", Json::U64(cfg.shards as u64)),
        (
            "stall_threshold",
            match cfg.stall_threshold {
                Some(t) => Json::U64(t),
                None => Json::Null,
            },
        ),
    ])
}

/// Rebuilds a [`RunConfig`] from [`config_to_json`] output.
pub fn config_from_json(v: &Json) -> Result<RunConfig, ParseError> {
    let topo = get(v, "topology")?;
    let sim = get(v, "sim")?;
    let count_cycles_every = match get(v, "count_cycles_every")? {
        Json::Null => None,
        j => Some(
            j.as_u64()
                .ok_or_else(|| bad("`count_cycles_every` must be null or u64"))?,
        ),
    };
    let forensics = match get(v, "forensics")? {
        Json::Null => None,
        j => Some(ForensicsConfig {
            max_incidents: get_u64(j, "max_incidents")? as usize,
            trace_capacity: get_u64(j, "trace_capacity")? as usize,
        }),
    };
    Ok(RunConfig {
        topology: TopologySpec {
            k: get_u64(topo, "k")? as u16,
            n: get_u64(topo, "n")? as usize,
            torus: get_bool(topo, "torus")?,
            bidirectional: get_bool(topo, "bidirectional")?,
        },
        routing: routing_from_json(get(v, "routing")?)?,
        sim: SimConfig {
            vcs_per_channel: get_u64(sim, "vcs_per_channel")? as usize,
            buffer_depth: get_u64(sim, "buffer_depth")? as usize,
            msg_len: get_u64(sim, "msg_len")? as usize,
        },
        pattern: pattern_from_json(get(v, "pattern")?)?,
        len_dist: len_dist_from_json(get(v, "len_dist")?)?,
        load: get_f64(v, "load")?,
        warmup: get_u64(v, "warmup")?,
        measure: get_u64(v, "measure")?,
        detection_interval: get_u64(v, "detection_interval")?,
        // Absent in records written before the incremental detector;
        // snapshot is the semantic default either way.
        detection: match get(v, "detection") {
            Ok(j) => match j.as_str() {
                Some("snapshot") => DetectionMode::Snapshot,
                Some("incremental") => DetectionMode::Incremental,
                _ => return Err(bad("`detection` must be `snapshot` or `incremental`")),
            },
            Err(_) => DetectionMode::Snapshot,
        },
        count_cycles_every,
        cycle_cap: get_u64(v, "cycle_cap")?,
        density_cap: get_u64(v, "density_cap")?,
        fingerprint_skip: get_bool(v, "fingerprint_skip")?,
        recovery: recovery_from_name(get_str(v, "recovery")?)?,
        seed: get_u64(v, "seed")?,
        forensics,
        faults: crate::faults::plan_from_json(get(v, "faults")?)?,
        // Absent in records written before the knob existed; the serial
        // engine is the semantic default either way.
        transfer_threads: match get(v, "transfer_threads") {
            Ok(j) => {
                j.as_u64()
                    .ok_or_else(|| bad("`transfer_threads` must be u64"))? as usize
            }
            Err(_) => 1,
        },
        shards: match get(v, "shards") {
            Ok(j) => j.as_u64().ok_or_else(|| bad("`shards` must be u64"))? as usize,
            Err(_) => 1,
        },
        stall_threshold: match get(v, "stall_threshold")? {
            Json::Null => None,
            j => Some(
                j.as_u64()
                    .ok_or_else(|| bad("`stall_threshold` must be null or u64"))?,
            ),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_exactly() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::Misroute { budget: 3 };
        cfg.pattern = Pattern::HotSpot {
            hot: NodeId(5),
            fraction: 0.15,
        };
        cfg.len_dist = MsgLenDist::Bimodal {
            short: 4,
            long: 32,
            long_frac: 0.33,
        };
        cfg.load = 0.87;
        cfg.count_cycles_every = Some(7);
        cfg.forensics = Some(ForensicsConfig::default());
        cfg.faults.link_outage(2, 50, 90).node_stall(120, 9, 40);
        cfg.transfer_threads = 3;
        cfg.shards = 4;
        cfg.stall_threshold = Some(500);
        cfg.detection = DetectionMode::Incremental;
        let text = config_to_json(&cfg).to_string();
        let back = config_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn seeds_survive_the_full_u64_range() {
        let mut cfg = RunConfig::small_default();
        cfg.seed = u64::MAX;
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(back.seed, u64::MAX);
    }

    #[test]
    fn trace_events_round_trip() {
        let events = vec![
            TraceEvent::Injected {
                cycle: 3,
                id: 9,
                src: NodeId(1),
                dst: NodeId(6),
                len: 32,
            },
            TraceEvent::Acquired {
                cycle: 4,
                id: 9,
                channel: ChannelId(12),
                vc: 1,
            },
            TraceEvent::Blocked {
                cycle: 5,
                id: 9,
                at: NodeId(2),
                candidates: vec![ChannelId(3), ChannelId(7)],
            },
            TraceEvent::EjectStart { cycle: 8, id: 9 },
            TraceEvent::RecoveryStart { cycle: 9, id: 9 },
            TraceEvent::Delivered {
                cycle: 11,
                id: 9,
                recovered: true,
            },
        ];
        for ev in &events {
            let text = event_to_json(ev).to_string();
            let back = event_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(*ev, back);
        }
    }

    #[test]
    fn corrupt_incident_json_is_rejected() {
        for text in [
            "{}",
            "not json",
            "{\"seq\":0}",
            "{\"seq\":0,\"cycle\":1,\"fingerprint\":2,\"config\":{},\"cwg\":{},\
             \"analysis\":{},\"timelines\":[],\"recovery\":{},\"trace_dropped\":0}",
        ] {
            assert!(DeadlockIncident::from_json_str(text).is_err());
        }
    }
}
