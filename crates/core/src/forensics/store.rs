//! On-disk incident storage: one JSON + one DOT file per incident, under
//! an `index.json` catalogue.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use icn_cwg::jsonio::{obj, parse, u64_arr, Json};

use crate::jsonio::durable;

use super::DeadlockIncident;

/// A directory of persisted incidents.
///
/// Layout: `incident-NNNNN.json` (the full record), `incident-NNNNN.dot`
/// (knot-highlighted Graphviz rendering), and `index.json` summarizing
/// every stored incident. All files are written via
/// [`crate::jsonio::durable::write_atomic`], so a crash mid-save never
/// leaves a torn record or index behind.
pub struct IncidentStore {
    dir: PathBuf,
}

/// One `index.json` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// JSON file name within the store directory.
    pub file: String,
    /// Capture ordinal within its run.
    pub seq: u32,
    /// Detection-epoch cycle.
    pub cycle: u64,
    /// Config label of the producing run.
    pub label: String,
    /// Blocked-wait-state fingerprint.
    pub fingerprint: u64,
    /// Deadlock-set sizes, one per knot.
    pub set_sizes: Vec<u64>,
}

fn corrupt(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl IncidentStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(IncidentStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists an incident: writes its JSON record and DOT rendering,
    /// appends to the index. Returns the two file paths.
    pub fn save(&self, inc: &DeadlockIncident) -> io::Result<(PathBuf, PathBuf)> {
        let mut entries = self.list()?;
        let stem = format!("incident-{:05}", entries.len());
        let json_path = self.dir.join(format!("{stem}.json"));
        let dot_path = self.dir.join(format!("{stem}.dot"));
        durable::write_atomic(&json_path, inc.to_json_string().as_bytes())?;
        durable::write_atomic(&dot_path, inc.to_dot().as_bytes())?;
        entries.push(IndexEntry {
            file: format!("{stem}.json"),
            seq: inc.seq,
            cycle: inc.cycle,
            label: inc.config.label(),
            fingerprint: inc.fingerprint,
            set_sizes: inc.deadlock_sets().iter().map(|s| s.len() as u64).collect(),
        });
        self.write_index(&entries)?;
        Ok((json_path, dot_path))
    }

    /// Loads one incident by its index `file` name.
    pub fn load(&self, file: &str) -> io::Result<DeadlockIncident> {
        let text = fs::read_to_string(self.dir.join(file))?;
        DeadlockIncident::from_json_str(&text).map_err(corrupt)
    }

    /// Reads the index (empty when no incident has been stored yet).
    pub fn list(&self) -> io::Result<Vec<IndexEntry>> {
        let path = self.dir.join("index.json");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let v = parse(&text).map_err(corrupt)?;
        let arr = v
            .get("incidents")
            .and_then(Json::as_arr)
            .ok_or_else(|| corrupt("index.json lacks `incidents`"))?;
        let mut out = Vec::with_capacity(arr.len());
        for e in arr {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| corrupt(format!("index entry lacks `{k}`")))
            };
            out.push(IndexEntry {
                file: e
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or_else(|| corrupt("index entry lacks `file`"))?
                    .to_string(),
                seq: field("seq")? as u32,
                cycle: field("cycle")?,
                label: e
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| corrupt("index entry lacks `label`"))?
                    .to_string(),
                fingerprint: field("fingerprint")?,
                set_sizes: e
                    .get("set_sizes")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| corrupt("index entry lacks `set_sizes`"))?
                    .iter()
                    .map(|s| s.as_u64().ok_or_else(|| corrupt("bad set size")))
                    .collect::<io::Result<Vec<u64>>>()?,
            });
        }
        Ok(out)
    }

    fn write_index(&self, entries: &[IndexEntry]) -> io::Result<()> {
        let arr: Vec<Json> = entries
            .iter()
            .map(|e| {
                obj(vec![
                    ("file", Json::Str(e.file.clone())),
                    ("seq", Json::U64(e.seq as u64)),
                    ("cycle", Json::U64(e.cycle)),
                    ("label", Json::Str(e.label.clone())),
                    ("fingerprint", Json::U64(e.fingerprint)),
                    ("set_sizes", u64_arr(e.set_sizes.iter().copied())),
                ])
            })
            .collect();
        let index = obj(vec![("incidents", Json::Arr(arr))]);
        durable::write_atomic(&self.dir.join("index.json"), index.to_string().as_bytes())
    }
}
