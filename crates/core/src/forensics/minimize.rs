//! Scenario minimization: the smallest CWG and the shortest run that
//! still exhibit the captured deadlock.
//!
//! Two independent reductions:
//!
//! * **Knot-induced sub-CWG** ([`minimize_cwg`]): keep only the deadlock
//!   sets' messages. Knot terminality makes this sound — from any knot
//!   vertex the ownership chain and every request stay inside the knot,
//!   so all arcs closing the knot belong to deadlock-set messages, and
//!   dropping everything else (moving traffic, dependents) preserves each
//!   knot with its exact deadlock set. The reduction is verified by
//!   re-analysis rather than trusted.
//! * **Shortest cycle prefix** ([`shortest_prefix`]): the least number of
//!   cycles the config must run for the knot to exist. Once a knot
//!   closes, its members cannot move and recovery only targets them at
//!   the (first) detection epoch, so "knot present at cycle `t`" is
//!   monotone in `t` over the window between epochs — binary search
//!   applies, and only `O(log detection_interval)` deterministic probe
//!   runs are needed.

use std::ops::ControlFlow;

use icn_sim::Network;

use crate::runner::{build_wait_graph, run_with, RunObserver};

use super::incident::{CwgMsg, CwgSnapshot};
use super::DeadlockIncident;

/// Outcome of [`minimize`].
#[derive(Clone, Debug)]
pub struct MinimizedIncident {
    /// The knot-induced sub-CWG: only deadlock-set messages.
    pub cwg: CwgSnapshot,
    /// Whether re-analysis of the sub-CWG reproduced exactly the
    /// incident's deadlock sets.
    pub verified: bool,
    /// Messages in the original capture.
    pub original_messages: usize,
    /// Messages kept by the reduction (= deadlock-set members).
    pub kept_messages: usize,
    /// Shortest-prefix bisection result, when requested and reproducible.
    pub shortest_prefix: Option<ShortestPrefix>,
}

/// The shortest cycle-prefix of the run that reproduces the deadlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShortestPrefix {
    /// Least cycle count after which the knot exists (its closure cycle).
    pub cycle: u64,
    /// Probe runs the bisection spent.
    pub probes: u32,
    /// Cycles shaved off relative to the detection epoch.
    pub saved_cycles: u64,
}

fn sorted(mut sets: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    sets.sort();
    sets
}

/// Reduces the incident's CWG to its deadlock-set messages and verifies
/// (by re-running the detector) that every captured knot survives with an
/// identical deadlock set and nothing new appears.
pub fn minimize_cwg(incident: &DeadlockIncident) -> (CwgSnapshot, bool) {
    let members = incident.members();
    let sub = CwgSnapshot {
        num_vertices: incident.cwg.num_vertices,
        messages: incident
            .cwg
            .messages
            .iter()
            .filter(|m| members.binary_search(&m.id).is_ok())
            .cloned()
            .collect::<Vec<CwgMsg>>(),
    };
    let analysis = sub.build_graph().analyze(incident.config.density_cap);
    let observed = sorted(
        analysis
            .deadlocks
            .iter()
            .map(|d| d.deadlock_set.clone())
            .collect(),
    );
    let verified = observed == sorted(incident.deadlock_sets());
    (sub, verified)
}

struct ProbeAtCycle {
    target: u64,
    expected: Vec<Vec<u64>>,
    density_cap: u64,
    knot_present: bool,
}

impl RunObserver for ProbeAtCycle {
    fn on_cycle(&mut self, net: &Network, _ev: &icn_sim::StepEvents) -> ControlFlow<()> {
        if net.cycle() < self.target {
            return ControlFlow::Continue(());
        }
        let graph = build_wait_graph(&net.wait_snapshot());
        let analysis = graph.analyze(self.density_cap);
        let observed = sorted(
            analysis
                .deadlocks
                .iter()
                .map(|d| d.deadlock_set.clone())
                .collect(),
        );
        self.knot_present = self.expected.iter().all(|s| observed.contains(s));
        ControlFlow::Break(())
    }
}

/// Whether the incident's knots all exist after exactly `t` cycles of the
/// incident's config.
fn knot_present_at(incident: &DeadlockIncident, t: u64) -> bool {
    let mut cfg = incident.config.clone();
    cfg.forensics = None;
    let total = cfg.warmup + cfg.measure;
    if total < t {
        cfg.measure += t - total;
    }
    let mut probe = ProbeAtCycle {
        target: t,
        expected: sorted(incident.deadlock_sets()),
        density_cap: cfg.density_cap,
        knot_present: false,
    };
    run_with(&cfg, &mut probe);
    probe.knot_present
}

/// Bisects for the shortest cycle-prefix of the run after which the
/// incident's knots exist. `None` when even the full prefix up to the
/// detection epoch does not reproduce them (a non-reproducible record).
///
/// The search window is one detection interval: had the knot existed at
/// the *previous* epoch it would have been detected (and recovered) there,
/// so its closure lies strictly inside the final interval.
pub fn shortest_prefix(incident: &DeadlockIncident) -> Option<ShortestPrefix> {
    let hi = incident.cycle;
    let lo = hi
        .saturating_sub(incident.config.detection_interval.saturating_sub(1))
        .max(1);
    let mut probes = 1u32;
    if !knot_present_at(incident, hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if knot_present_at(incident, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(ShortestPrefix {
        cycle: hi,
        probes,
        saved_cycles: incident.cycle - hi,
    })
}

/// Runs both reductions. Pass `with_prefix: false` to skip the bisection
/// (it costs `O(log detection_interval)` re-runs of the simulation).
pub fn minimize(incident: &DeadlockIncident, with_prefix: bool) -> MinimizedIncident {
    let (cwg, verified) = minimize_cwg(incident);
    let kept_messages = cwg.messages.len();
    MinimizedIncident {
        cwg,
        verified,
        original_messages: incident.cwg.messages.len(),
        kept_messages,
        shortest_prefix: if with_prefix {
            shortest_prefix(incident)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forensics::{MemberTimeline, RecoveryOutcome};
    use crate::{RecoveryPolicy, RunConfig};

    /// An incident assembled by hand: Figure-1's three-message knot plus
    /// a dependent message (6) and a moving message (4) that the
    /// reduction must drop.
    fn hand_incident() -> DeadlockIncident {
        let cwg = CwgSnapshot {
            num_vertices: 10,
            messages: vec![
                CwgMsg {
                    id: 1,
                    chain: vec![1, 2],
                    requests: vec![3],
                },
                CwgMsg {
                    id: 2,
                    chain: vec![3, 4, 5],
                    requests: vec![6],
                },
                CwgMsg {
                    id: 3,
                    chain: vec![6, 7, 0],
                    requests: vec![1],
                },
                CwgMsg {
                    id: 4,
                    chain: vec![8],
                    requests: vec![],
                },
                CwgMsg {
                    id: 6,
                    chain: vec![9],
                    requests: vec![4],
                },
            ],
        };
        let analysis = cwg.build_graph().analyze(1000);
        assert_eq!(analysis.deadlocks.len(), 1);
        DeadlockIncident {
            seq: 0,
            cycle: 50,
            formation_cycle: 47,
            config: RunConfig::small_default(),
            fingerprint: 0,
            cwg,
            analysis,
            timelines: vec![
                MemberTimeline {
                    id: 1,
                    events: vec![],
                },
                MemberTimeline {
                    id: 2,
                    events: vec![],
                },
                MemberTimeline {
                    id: 3,
                    events: vec![],
                },
            ],
            recovery: RecoveryOutcome {
                policy: RecoveryPolicy::RemoveOldest,
                victims: vec![1],
            },
            trace_dropped: 0,
        }
    }

    #[test]
    fn sub_cwg_keeps_only_the_deadlock_set_and_still_knots() {
        let inc = hand_incident();
        let (sub, verified) = minimize_cwg(&inc);
        assert!(verified);
        assert_eq!(sub.messages.len(), 3);
        let ids: Vec<u64> = sub.messages.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // No larger than the original.
        assert!(sub.messages.len() <= inc.cwg.messages.len());
        // And the surviving analysis names the same deadlock set.
        let a = sub.build_graph().analyze(1000);
        assert_eq!(a.deadlocks.len(), 1);
        assert_eq!(a.deadlocks[0].deadlock_set, vec![1, 2, 3]);
    }

    #[test]
    fn minimize_reports_reduction_sizes() {
        let inc = hand_incident();
        let m = minimize(&inc, false);
        assert!(m.verified);
        assert_eq!(m.original_messages, 5);
        assert_eq!(m.kept_messages, 3);
        assert!(m.shortest_prefix.is_none());
    }
}
