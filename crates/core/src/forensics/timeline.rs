//! Per-message formation timelines, reconstructed from engine traces.

use std::collections::HashMap;

use icn_sim::TraceEvent;

use crate::report::Table;

use super::DeadlockIncident;

/// Per-message event log for every live message, fed by the runner's
/// per-cycle trace drain. Delivered messages are pruned immediately —
/// only messages that could still end up in a knot stay indexed.
pub(crate) struct TimelineIndex {
    events: HashMap<u64, Vec<TraceEvent>>,
}

/// Formation summary of one knot (see
/// [`TimelineIndex::formation_stats`]).
pub(crate) struct FormationStats {
    /// Injection → knot closure, for each member with a known injection.
    pub member_latencies: Vec<u64>,
    /// First member's final blocking episode → knot closure.
    pub spread: u64,
}

impl TimelineIndex {
    pub fn new() -> Self {
        TimelineIndex {
            events: HashMap::new(),
        }
    }

    /// Folds in one cycle's events, pruning messages on delivery.
    pub fn absorb(&mut self, events: Vec<TraceEvent>) {
        for ev in events {
            if matches!(ev, TraceEvent::Delivered { .. }) {
                self.events.remove(&ev.id());
            } else {
                self.events.entry(ev.id()).or_default().push(ev);
            }
        }
    }

    /// The recorded event log of `id` (empty if unknown or delivered).
    pub fn events_of(&self, id: u64) -> &[TraceEvent] {
        self.events.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Formation statistics for one deadlock set. The knot **closes** when
    /// its last member enters its final blocking episode; per-member
    /// formation latency is injection → closure, and the spread is how
    /// long the earliest-blocked member waited for the knot to complete.
    /// `None` when no member has a recorded blocking episode (tracing
    /// started mid-run).
    pub fn formation_stats(&self, members: &[u64]) -> Option<FormationStats> {
        let final_blocks: Vec<u64> = members
            .iter()
            .filter_map(|&m| final_block_cycle(self.events_of(m)))
            .collect();
        let closure = final_blocks.iter().copied().max()?;
        let first = final_blocks.iter().copied().min().unwrap_or(closure);
        let member_latencies = members
            .iter()
            .filter_map(|&m| injected_cycle(self.events_of(m)))
            .map(|inj| closure.saturating_sub(inj))
            .collect();
        Some(FormationStats {
            member_latencies,
            spread: closure - first,
        })
    }
}

/// Cycle of the last (= final, for a knot member) blocking episode.
pub(crate) fn final_block_cycle(events: &[TraceEvent]) -> Option<u64> {
    events.iter().rev().find_map(|ev| match ev {
        TraceEvent::Blocked { cycle, .. } => Some(*cycle),
        _ => None,
    })
}

/// Injection cycle, if recorded.
pub(crate) fn injected_cycle(events: &[TraceEvent]) -> Option<u64> {
    events.iter().find_map(|ev| match ev {
        TraceEvent::Injected { cycle, .. } => Some(*cycle),
        _ => None,
    })
}

/// Renders an incident's per-member formation timelines as a table: when
/// each deadlock-set member was injected, how many VCs it acquired, where
/// and when it entered its final blocking episode, how long it had been
/// waiting at capture, and which candidate channels it failed to acquire.
pub fn timeline_table(inc: &DeadlockIncident) -> Table {
    let mut t = Table::new([
        "msg",
        "injected",
        "hops",
        "final-block",
        "at",
        "waited",
        "wants",
    ]);
    for tl in &inc.timelines {
        let injected = tl
            .injected_at()
            .map_or_else(|| "-".to_string(), |c| c.to_string());
        let (block, at, waited, wants) = match tl.final_block() {
            Some((cycle, node, cands)) => {
                let wants = if cands.is_empty() {
                    "reception".to_string()
                } else {
                    cands
                        .iter()
                        .map(|c| format!("c{}", c.0))
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                (
                    cycle.to_string(),
                    format!("n{node}"),
                    inc.cycle.saturating_sub(cycle).to_string(),
                    wants,
                )
            }
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        t.row([
            format!("m{}", tl.id),
            injected,
            tl.hops().to_string(),
            block,
            at,
            waited,
            wants,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{ChannelId, NodeId};

    fn injected(cycle: u64, id: u64) -> TraceEvent {
        TraceEvent::Injected {
            cycle,
            id,
            src: NodeId(0),
            dst: NodeId(1),
            len: 4,
        }
    }

    fn blocked(cycle: u64, id: u64) -> TraceEvent {
        TraceEvent::Blocked {
            cycle,
            id,
            at: NodeId(0),
            candidates: vec![ChannelId(3)],
        }
    }

    #[test]
    fn delivery_prunes_the_log() {
        let mut ix = TimelineIndex::new();
        ix.absorb(vec![injected(1, 7), blocked(2, 7)]);
        assert_eq!(ix.events_of(7).len(), 2);
        ix.absorb(vec![TraceEvent::Delivered {
            cycle: 9,
            id: 7,
            recovered: false,
        }]);
        assert!(ix.events_of(7).is_empty());
    }

    #[test]
    fn formation_stats_use_last_blocking_episode() {
        let mut ix = TimelineIndex::new();
        // m1: injected at 1, blocked at 4, unblocked, blocked again at 10.
        ix.absorb(vec![injected(1, 1), blocked(4, 1), blocked(10, 1)]);
        // m2: injected at 3, blocked at 12 — the knot closes here.
        ix.absorb(vec![injected(3, 2), blocked(12, 2)]);
        let s = ix.formation_stats(&[1, 2]).unwrap();
        let mut lat = s.member_latencies.clone();
        lat.sort_unstable();
        assert_eq!(lat, vec![9, 11]); // closure 12 − injections 3, 1
        assert_eq!(s.spread, 2); // closure 12 − first final block 10
    }

    #[test]
    fn no_blocking_episode_yields_none() {
        let mut ix = TimelineIndex::new();
        ix.absorb(vec![injected(1, 5)]);
        assert!(ix.formation_stats(&[5]).is_none());
    }
}
