//! Fault-plan helpers at the orchestration layer.
//!
//! The fault model itself lives in [`icn_sim::faults`] (re-exported
//! here); this module adds what campaigns need on top of it: a JSON
//! round-trip so plans travel inside incident records and checkpoints,
//! and a seeded random-plan generator for robustness torture runs.

pub use icn_sim::{FaultEvent, FaultKind, FaultPlan};

use crate::jsonio::{bad, obj, Json, ParseError};
use crate::spec::TopologySpec;
use crate::validate::SplitMix64;

/// Serializes a plan as `{"events": [...]}`, each event tagged by kind.
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    let events = plan
        .events
        .iter()
        .map(|e| {
            let mut fields = vec![("cycle", Json::U64(e.cycle))];
            match e.kind {
                FaultKind::LinkDown { channel } => {
                    fields.push(("t", Json::Str("link-down".into())));
                    fields.push(("channel", Json::U64(channel as u64)));
                }
                FaultKind::LinkUp { channel } => {
                    fields.push(("t", Json::Str("link-up".into())));
                    fields.push(("channel", Json::U64(channel as u64)));
                }
                FaultKind::NodeStall { node, cycles } => {
                    fields.push(("t", Json::Str("node-stall".into())));
                    fields.push(("node", Json::U64(node as u64)));
                    fields.push(("cycles", Json::U64(cycles)));
                }
                FaultKind::InjectorDown { node, cycles } => {
                    fields.push(("t", Json::Str("injector-down".into())));
                    fields.push(("node", Json::U64(node as u64)));
                    fields.push(("cycles", Json::U64(cycles)));
                }
            }
            obj(fields)
        })
        .collect();
    obj(vec![("events", Json::Arr(events))])
}

fn field_u64(v: &Json, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(&format!("fault event needs u64 `{key}`")))
}

/// Rebuilds a plan from [`plan_to_json`] output. Event order is
/// preserved, so the round trip is exact (`PartialEq`), not merely
/// equivalent under normalization.
pub fn plan_from_json(v: &Json) -> Result<FaultPlan, ParseError> {
    let events = v
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("fault plan needs an `events` array"))?;
    let mut plan = FaultPlan::new();
    for e in events {
        let cycle = field_u64(e, "cycle")?;
        let tag = e
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("fault event needs a `t` tag"))?;
        let kind = match tag {
            "link-down" => FaultKind::LinkDown {
                channel: field_u64(e, "channel")? as u32,
            },
            "link-up" => FaultKind::LinkUp {
                channel: field_u64(e, "channel")? as u32,
            },
            "node-stall" => FaultKind::NodeStall {
                node: field_u64(e, "node")? as u32,
                cycles: field_u64(e, "cycles")?,
            },
            "injector-down" => FaultKind::InjectorDown {
                node: field_u64(e, "node")? as u32,
                cycles: field_u64(e, "cycles")?,
            },
            other => return Err(bad(&format!("unknown fault kind `{other}`"))),
        };
        plan.events.push(FaultEvent { cycle, kind });
    }
    Ok(plan)
}

/// A seeded random plan for robustness campaigns: one to three transient
/// link outages, one permanent link kill, one router stall, and one
/// injector outage, all inside `[horizon/10, horizon)` so the network has
/// warmed up before the first fault lands. Equal seeds give equal plans.
pub fn random_plan(topo: &TopologySpec, horizon: u64, seed: u64) -> FaultPlan {
    let built = topo.build();
    let channels = built.num_channels();
    let nodes = built.num_nodes();
    assert!(horizon >= 20, "horizon too short for a meaningful plan");
    let mut rng = SplitMix64::new(seed ^ 0xfa17_fa17_fa17_fa17);
    let lo = horizon / 10;
    let span = horizon - lo;
    let at = |rng: &mut SplitMix64| lo + rng.gen_range(span as usize) as u64;

    let mut plan = FaultPlan::new();
    for _ in 0..(1 + rng.gen_range(3)) {
        let ch = rng.gen_range(channels) as u32;
        let down = at(&mut rng);
        let dur = 1 + rng.gen_range((horizon / 10).max(1) as usize) as u64;
        plan.link_outage(ch, down, down + dur);
    }
    plan.link_kill(at(&mut rng), rng.gen_range(channels) as u32);
    plan.node_stall(
        at(&mut rng),
        rng.gen_range(nodes) as u32,
        1 + rng.gen_range((horizon / 20).max(1) as usize) as u64,
    );
    plan.injector_down(
        at(&mut rng),
        rng.gen_range(nodes) as u32,
        1 + rng.gen_range((horizon / 20).max(1) as usize) as u64,
    );
    plan.validate(channels, nodes);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_cwg::jsonio::parse;

    #[test]
    fn plan_round_trips_exactly() {
        let mut plan = FaultPlan::new();
        plan.link_outage(7, 100, 250)
            .link_kill(400, 3)
            .node_stall(150, 12, 60)
            .injector_down(200, 5, 80);
        let text = plan_to_json(&plan).to_string();
        let back = plan_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn empty_plan_round_trips() {
        let text = plan_to_json(&FaultPlan::new()).to_string();
        let back = plan_from_json(&parse(&text).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn random_plan_is_seed_deterministic_and_valid() {
        let topo = TopologySpec::torus(4, 2, true);
        let a = random_plan(&topo, 1_000, 42);
        let b = random_plan(&topo, 1_000, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = random_plan(&topo, 1_000, 43);
        assert_ne!(a, c, "different seeds should vary the plan");
    }
}
