//! FlexSim: the orchestrating simulator of the reproduction.
//!
//! The paper's methodology (§3) is: run a flit-level network simulation
//! with **no routing restrictions**, invoke a true deadlock detector every
//! 50 cycles, break each detected knot by removing one deadlock-set
//! message flit-by-flit (synthesized Disha recovery), and record deadlock
//! frequency and structure across parameter sweeps. This crate wires the
//! substrates together:
//!
//! * [`RunConfig`] — one simulation point (topology, routing, VCs, buffer
//!   depth, traffic pattern, normalized load, detection cadence, seeds).
//! * [`run`] — executes one point and produces a [`RunResult`] with the
//!   paper's metrics: normalized deadlocks, deadlock/resource set sizes,
//!   knot cycle densities, cyclic non-deadlock counts, congestion and
//!   throughput.
//! * [`sweep`] — runs many points across OS threads, deterministically.
//! * [`experiments`] — the per-figure sweep definitions (Figures 5–8,
//!   §3.5 node degree, §3.6 traffic patterns) used by the `repro` binary
//!   and the integration tests.
//! * [`report`] — plain-text table rendering of sweep results.
//!
//! # Example
//!
//! ```
//! use flexsim::{run, RunConfig, RoutingSpec, TopologySpec};
//!
//! let mut cfg = RunConfig::small_default();
//! cfg.topology = TopologySpec::torus(4, 2, true);
//! cfg.routing = RoutingSpec::Tfar;
//! cfg.sim.vcs_per_channel = 2;
//! cfg.load = 0.3;
//! cfg.warmup = 100;
//! cfg.measure = 400;
//!
//! let result = run(&cfg);
//! assert!(result.delivered > 0);
//! assert_eq!(result.deadlocks, 0); // TFAR with 2 VCs at low load
//! ```

pub mod ablations;
pub mod chart;
mod checkpoint;
pub mod experiments;
pub mod extensions;
pub mod faults;
pub mod forensics;
pub mod json;
pub mod jsonio;
pub mod report;
mod result;
mod runner;
mod spec;
mod sweep;
pub mod validate;

pub use checkpoint::{decode_result, encode_result};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use forensics::ForensicsConfig;
pub use result::{Incident, RunOutcome, RunResult, StallReport};
pub use runner::{
    build_wait_graph, run, run_reference, run_reference_with, run_with, EpochView, RunObserver,
};
pub use spec::{DetectionMode, RecoveryPolicy, RoutingSpec, TopologySpec};
pub use sweep::{
    backoff_for, checkpoint_line, checkpoint_status_line, replicate, replication_summary,
    restore_checkpoint, run_supervised, run_supervised_cancellable, sweep, sweep_supervised,
    sweep_supervised_report, CancelToken, CheckpointRestore, ReplicationSummary, SweepError,
    SweepOptions, SweepReport,
};

/// Version tag of the simulation semantics, baked into the campaign
/// server's content-addressed cache keys. Bump it whenever a change can
/// alter any [`RunResult`] digest for an unchanged configuration — a
/// perf refactor that stays byte-identical (the repo's differential
/// suites enforce this, including at any `transfer_threads` count) does
/// NOT need a bump, which is what makes cached results durable across
/// such PRs.
pub const ENGINE_VERSION: &str = "flexsim-engine-v2";

use icn_traffic::{MsgLenDist, Pattern};

/// One simulation point.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Network shape.
    pub topology: TopologySpec,
    /// Routing relation.
    pub routing: RoutingSpec,
    /// Flit-level parameters (VCs, buffer depth, default message length).
    pub sim: icn_sim::SimConfig,
    /// Spatial traffic pattern.
    pub pattern: Pattern,
    /// Message-length distribution. `Fixed` lengths reproduce the paper;
    /// `Bimodal` exercises its hybrid-length future-work item.
    pub len_dist: MsgLenDist,
    /// Offered load as a fraction of network capacity.
    pub load: f64,
    /// Cycles before measurement starts (reaching steady state).
    pub warmup: u64,
    /// Measured cycles (the paper uses 30,000 beyond steady state).
    pub measure: u64,
    /// Deadlock-detection cadence in cycles (paper: 50).
    pub detection_interval: u64,
    /// How knots are detected: epoch snapshots (the reference) or the
    /// event-driven incremental CWG checked every cycle. Digest-neutral —
    /// both modes produce byte-identical [`RunResult`]s.
    pub detection: DetectionMode,
    /// When `Some(n)`, count CWG resource-dependency cycles every `n`-th
    /// detection epoch (the cyclic non-deadlock metric; costs time).
    pub count_cycles_every: Option<u64>,
    /// Cap on whole-graph elementary-cycle enumeration.
    pub cycle_cap: u64,
    /// Cap on per-knot cycle-density enumeration.
    pub density_cap: u64,
    /// Skip knot re-analysis when an epoch's blocked wait-state hashes
    /// identically to the previous epoch's and that epoch was clean. Exact
    /// (knots are closed exclusively by blocked messages), modulo 64-bit
    /// hash collisions; disable to force a full analysis every epoch.
    pub fingerprint_skip: bool,
    /// How deadlocks are broken.
    pub recovery: RecoveryPolicy,
    /// RNG seed (traffic generation).
    pub seed: u64,
    /// When `Some`, capture full [`forensics::DeadlockIncident`] records
    /// (CWG, formation timelines, recovery outcome) for detected knots.
    /// Tracing never perturbs the simulation, so a forensic run is
    /// cycle-identical to a plain one under the same seed.
    pub forensics: Option<ForensicsConfig>,
    /// Scheduled fault injection (link outages, router stalls, injector
    /// failures). An empty plan is byte-identical to no plan.
    pub faults: FaultPlan,
    /// Decide partitions for the engine's transfer phase (see
    /// [`icn_sim::Network::set_transfer_threads`]). 1 = serial fused
    /// walk; values above 1 take effect only when the `parallel` cargo
    /// feature is enabled, and produce byte-identical results either way.
    pub transfer_threads: usize,
    /// Spatial shards for the cycle-barrier sharded engine (see
    /// [`icn_sim::Network::set_shards`]). 1 = the flat serial engine;
    /// values above 1 partition the network into contiguous node ranges
    /// that step concurrently inside each cycle, exchanging boundary
    /// traffic at the barrier in canonical order. Like `transfer_threads`
    /// this knob is digest-neutral — results are byte-identical at any
    /// shard count — and takes effect only with the `parallel` cargo
    /// feature (clamped to 1 otherwise).
    pub shards: usize,
    /// Progress watchdog: when `Some(t)`, a run that makes no progress
    /// (no injection, link movement, drain, delivery, recovery start, or
    /// fault accounting) for `t` consecutive cycles ends early with
    /// [`RunOutcome::Stalled`] and a [`StallReport`]. `None` disables the
    /// watchdog — required for configs that deliberately wedge forever
    /// (e.g. recovery disabled).
    pub stall_threshold: Option<u64>,
}

impl RunConfig {
    /// The paper's default setup (§3): bidirectional 16-ary 2-cube,
    /// 32-flit messages, 2-flit buffers, uniform traffic, detection every
    /// 50 cycles, victim-removal recovery.
    pub fn paper_default() -> Self {
        RunConfig {
            topology: TopologySpec::torus(16, 2, true),
            routing: RoutingSpec::Dor,
            sim: icn_sim::SimConfig::default(),
            pattern: Pattern::Uniform,
            len_dist: MsgLenDist::Fixed(icn_sim::SimConfig::default().msg_len),
            load: 0.5,
            warmup: 10_000,
            measure: 30_000,
            detection_interval: 50,
            detection: DetectionMode::Snapshot,
            count_cycles_every: None,
            cycle_cap: 150_000,
            density_cap: 2_000,
            fingerprint_skip: true,
            recovery: RecoveryPolicy::RemoveOldest,
            seed: 0x5ca1ab1e,
            forensics: None,
            faults: FaultPlan::new(),
            transfer_threads: 1,
            shards: 1,
            stall_threshold: None,
        }
    }

    /// A scaled-down variant for tests: an 8-ary 2-cube and short windows,
    /// exercising the same code paths in milliseconds.
    pub fn small_default() -> Self {
        RunConfig {
            topology: TopologySpec::torus(8, 2, true),
            warmup: 1_000,
            measure: 4_000,
            ..Self::paper_default()
        }
    }

    /// Human-readable label for reports. Fault-free configs keep the
    /// historical format; a fault plan appends its event count so faulted
    /// regimes are distinguishable in tables and sweeps.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{} {} vc={} buf={} load={:.2} {}",
            self.topology.label(),
            self.routing.name(),
            self.sim.vcs_per_channel,
            self.sim.buffer_depth,
            self.load,
            self.pattern.name(),
        );
        if !self.faults.is_empty() {
            s.push_str(&format!(" faults={}", self.faults.events.len()));
        }
        s
    }
}
