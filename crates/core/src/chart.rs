//! Terminal (ASCII) charts for the regenerated figures.
//!
//! The paper's results are line plots (normalized deadlocks vs load, set
//! sizes vs load, ...); the `repro` binary renders the same series as
//! scatter charts so the shape — who wins, where the knees fall — is
//! visible without leaving the terminal.

/// One plotted series: symbol, legend label, and (x, y) points.
type Series = (char, String, Vec<(f64, f64)>);

/// A fixed-size scatter chart with one symbol per series.
#[derive(Clone, Debug)]
pub struct AsciiChart {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl AsciiChart {
    /// A chart with default terminal dimensions (64×16 plot area).
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        AsciiChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 64,
            height: 16,
            series: Vec::new(),
        }
    }

    /// Overrides the plot-area size.
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "chart too small to render");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a named series drawn with `symbol`.
    pub fn series(
        &mut self,
        symbol: char,
        name: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push((symbol, name.into(), points));
        self
    }

    /// Number of series added.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Renders the chart, or a placeholder when no finite data exists.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, p)| p.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return format!("{} — (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        // Degenerate ranges widen to render a flat line mid-plot.
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (symbol, _, points) in &self.series {
            for &(x, y) in points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                let cell = &mut grid[row][cx];
                *cell = if *cell == ' ' || *cell == *symbol {
                    *symbol
                } else {
                    '#' // collision between series
                };
            }
        }

        let ylab_w = 10;
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{:>9.3}", y_max)
            } else if i == self.height - 1 {
                format!("{:>9.3}", y_min)
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(ylab_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<12.3}{:>w$.3}\n",
            " ".repeat(ylab_w),
            x_min,
            x_max,
            w = self.width.saturating_sub(12).max(1)
        ));
        out.push_str(&format!(
            "{}x: {}   y: {}\n",
            " ".repeat(ylab_w),
            self.x_label,
            self.y_label
        ));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|(s, name, _)| format!("{s} {name}"))
            .collect();
        out.push_str(&format!(
            "{}legend: {}\n",
            " ".repeat(ylab_w),
            legend.join("  ")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let mut c = AsciiChart::new("test", "load", "ndl");
        c.series('o', "bi", vec![(0.0, 0.0), (1.0, 1.0)]);
        c.series('+', "uni", vec![(0.5, 0.5)]);
        let s = c.render();
        assert!(s.contains("test"));
        assert!(s.contains('o'));
        assert!(s.contains('+'));
        assert!(s.contains("legend: o bi  + uni"));
        assert!(s.contains("x: load   y: ndl"));
    }

    #[test]
    fn empty_chart_is_placeholder() {
        let c = AsciiChart::new("empty", "x", "y");
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn constant_series_renders() {
        let mut c = AsciiChart::new("flat", "x", "y");
        c.series('*', "zero", vec![(0.0, 0.0), (1.0, 0.0)]);
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn collisions_marked() {
        let mut c = AsciiChart::new("overlap", "x", "y").with_size(8, 4);
        c.series('o', "a", vec![(0.0, 0.0)]);
        c.series('+', "b", vec![(0.0, 0.0)]);
        assert!(c.render().contains('#'));
    }

    #[test]
    fn infinite_values_ignored() {
        let mut c = AsciiChart::new("inf", "x", "y");
        c.series('o', "a", vec![(0.0, f64::INFINITY), (1.0, 2.0)]);
        let s = c.render();
        assert!(s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        let _ = AsciiChart::new("t", "x", "y").with_size(2, 2);
    }
}
