//! The simulation loop: traffic, stepping, detection, recovery.

use std::ops::ControlFlow;

use icn_cwg::{
    count_cycles, Analysis, CycleCount, DeadlockKind, DependentKind, DetectorScratch,
    DynamicWaitGraph, WaitGraph,
};
use icn_sim::{Network, SnapshotArena, SnapshotFragment, StepEvents, WaitSnapshot, WaitUpdate};
use icn_topology::NodeId;
use icn_traffic::BernoulliInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::forensics::ForensicsState;
use crate::result::{RunOutcome, RunResult, StallReport};
use crate::spec::{DetectionMode, RecoveryPolicy};
use crate::RunConfig;

/// Prints `msg()` to stderr the first time `key` is seen in this process
/// and never again; returns whether it printed. One shared registry for
/// every once-style notice (parallelism downgrades today), so a 10k-point
/// sweep emits each warning once, not 10k times.
pub(crate) fn log_once(key: &'static str, msg: impl FnOnce() -> String) -> bool {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static LOGGED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut seen = LOGGED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("log_once registry poisoned");
    if seen.insert(key) {
        eprintln!("{}", msg());
        true
    } else {
        false
    }
}

/// What [`RunObserver::on_epoch`] sees at a detection epoch: the snapshot,
/// its analysis, and the network — immediately after knot analysis and
/// before recovery mutates anything.
pub struct EpochView<'a> {
    /// Simulation cycle of this detection epoch.
    pub cycle: u64,
    /// 1-based detection-epoch ordinal.
    pub epoch: u64,
    /// The wait-for snapshot the analysis was computed from.
    pub arena: &'a SnapshotArena,
    /// The epoch's knot analysis (empty when `skipped`).
    pub analysis: &'a Analysis,
    /// Whether the fingerprint fast path skipped the full analysis (the
    /// epoch matched a previously verified clean wait-state).
    pub skipped: bool,
    /// Whether `arena` was (re)captured at this epoch. Incremental
    /// detection skips the snapshot capture entirely when the live
    /// wait-state fingerprint matches a verified-clean epoch, so on
    /// `captured == false` epochs the arena holds a stale earlier capture
    /// — auditors needing fresh state must take their own snapshot (the
    /// analysis and `skipped` remain exact either way).
    pub captured: bool,
    /// Incremental mode only: the cycle at which the dynamic CWG first
    /// reported the currently live knot (`None` when knot-free, and always
    /// `None` in snapshot mode). This is the exact first-true detection
    /// cycle, which can postdate the last member's block — a foreign
    /// message taking the final escape VC closes the knot later.
    pub knot_live_since: Option<u64>,
    /// The network, read-only.
    pub net: &'a Network,
}

/// Hooks into [`run_with`]: forensic replay and minimization probes use
/// these to halt a deterministic re-run at an exact cycle or epoch.
/// Returning `ControlFlow::Break` stops the run; the result reflects the
/// truncated window.
pub trait RunObserver {
    /// Called after every engine step (and trace drain), before any
    /// detection work at this cycle, with the step's events (deliveries,
    /// injections, link activity) — the validation harness audits flit
    /// conservation and routing minimality from these.
    fn on_cycle(&mut self, _net: &Network, _ev: &StepEvents) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }

    /// Called at every detection epoch, after analysis and before
    /// recovery.
    fn on_epoch(&mut self, _view: &EpochView<'_>) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// The no-op observer behind plain [`run`].
impl RunObserver for () {}

/// Converts a simulator wait-for snapshot into a channel wait-for graph.
///
/// Messages stranded by link faults can have empty request sets; they hold
/// resources but wait on nothing representable, so only their ownership
/// chains are recorded.
pub fn build_wait_graph(snap: &WaitSnapshot) -> WaitGraph {
    let mut g = WaitGraph::new(snap.num_vertices);
    for m in &snap.messages {
        g.add_chain(m.id, &m.chain);
    }
    for m in &snap.messages {
        if !m.requests.is_empty() {
            g.add_requests(m.id, &m.requests);
        }
    }
    g
}

/// Rebuilds `g` in place from an arena snapshot — the hot-path counterpart
/// of [`build_wait_graph`]; allocation-free once capacities have warmed up.
fn rebuild_wait_graph(arena: &SnapshotArena, g: &mut WaitGraph) {
    g.reset(arena.num_vertices());
    for m in arena.messages() {
        g.add_chain(m.id, m.chain);
    }
    for m in arena.messages() {
        if !m.requests.is_empty() {
            g.add_requests(m.id, m.requests);
        }
    }
}

/// Which simulation-engine stepper drives the run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stepper {
    /// The activity-driven engine ([`Network::step`]) — the default.
    Activity,
    /// The dense reference scan ([`Network::step_reference`]).
    Dense,
}

/// Executes one simulation point.
///
/// The loop per cycle: Bernoulli traffic generation at every node, one
/// engine step, and at every `detection_interval` boundary a CWG snapshot,
/// knot analysis, statistics recording (measurement window only) and
/// recovery of every detected knot. Detection and recovery also run during
/// warm-up so the network reaches a meaningful steady state.
pub fn run(cfg: &RunConfig) -> RunResult {
    run_impl(cfg, &mut (), Stepper::Activity)
}

/// [`run`], but driven by the dense reference stepper
/// ([`icn_sim::Network::step_reference`]) instead of the activity engine.
/// The two are differentially tested to be byte-identical
/// ([`RunResult::digest`] equality), so this exists as the semantic
/// baseline for those tests and for engine benchmarks — not for normal
/// use.
pub fn run_reference(cfg: &RunConfig) -> RunResult {
    run_impl(cfg, &mut (), Stepper::Dense)
}

/// [`run`] with observer hooks (see [`RunObserver`]). The observer never
/// influences traffic or routing, so an observed run is cycle-identical
/// to a plain one up to the point it breaks.
pub fn run_with(cfg: &RunConfig, obs: &mut dyn RunObserver) -> RunResult {
    run_impl(cfg, obs, Stepper::Activity)
}

/// [`run_reference`] with observer hooks — the torture harness audits
/// both steppers through the same observer.
pub fn run_reference_with(cfg: &RunConfig, obs: &mut dyn RunObserver) -> RunResult {
    run_impl(cfg, obs, Stepper::Dense)
}

fn run_impl(cfg: &RunConfig, obs: &mut dyn RunObserver, stepper: Stepper) -> RunResult {
    cfg.sim.validate();
    let topo = cfg.topology.build();
    if cfg.pattern.needs_pow2() {
        assert!(
            topo.num_nodes().is_power_of_two(),
            "{} requires a power-of-two node count",
            cfg.pattern.name()
        );
    }
    cfg.len_dist.validate();
    let mut net = Network::new(topo.clone(), cfg.routing.build(), cfg.sim);
    let eff_threads = net.set_transfer_threads(cfg.transfer_threads);
    if eff_threads < cfg.transfer_threads {
        // Parallelism knobs are digest-neutral, so a downgrade never
        // changes results — but sweeps and server configs that *asked* for
        // parallelism deserve to know they ran serial. Once per process,
        // not per run: a 10k-point sweep should not print 10k warnings.
        log_once("transfer_threads_downgraded", || {
            format!(
                "flexsim: transfer_threads={} requested but running with {} \
                 (build the `parallel` feature for more); results are identical",
                cfg.transfer_threads, eff_threads
            )
        });
    }
    let eff_shards = net.set_shards(cfg.shards);
    if eff_shards < cfg.shards {
        log_once("shards_downgraded", || {
            format!(
                "flexsim: shards={} requested but running with {} \
                 (build the `parallel` feature for more); results are identical",
                cfg.shards, eff_shards
            )
        });
    }
    if !cfg.faults.is_empty() {
        net.set_fault_plan(&cfg.faults);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Offered load normalizes by the *mean* message length so hybrid
    // workloads compare at equal flit pressure.
    let injector = BernoulliInjector::new(
        cfg.load * topo.capacity_flits_per_node_cycle() / cfg.len_dist.mean(),
    );

    let mut res = RunResult::new(
        cfg.label(),
        cfg.load,
        topo.num_nodes(),
        topo.capacity_flits_per_node_cycle(),
        cfg.sim.msg_len,
    );
    res.cycles = cfg.measure;

    let total = cfg.warmup + cfg.measure;
    let mut detection_epoch: u64 = 0;
    // Victim id -> cycle it entered the recovery lane.
    let mut victim_starts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    // Detection fast-path state, reused across epochs: the snapshot arena,
    // the rebuild-in-place wait graph, and the detector scratch make the
    // steady-state detection epoch allocation-free.
    let mut arena = SnapshotArena::new();
    let mut graph = WaitGraph::new(0);
    let mut scratch = DetectorScratch::new();
    // Sharded snapshot capture: with a multi-shard plan installed, each
    // detection epoch captures per-shard wait-state fragments (on scoped
    // threads when cores allow) and stitches them into `arena` — exactly
    // reproducing the serial capture, fragment reuse included.
    let snapshot_shards = net.shard_plan().map_or(1, |p| p.shards());
    let mut frags: Vec<SnapshotFragment> = (0..snapshot_shards)
        .filter(|_| snapshot_shards > 1)
        .map(|_| SnapshotFragment::new())
        .collect();
    let snap_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(snapshot_shards);
    // Blocked-wait-state fingerprint of the previous epoch, kept only when
    // that epoch was verified knot-free. Knots (and resource cycles) are
    // closed exclusively by blocked messages — moving chains are CWG sinks
    // — so an identical blocked wait-state implies an identical verdict.
    let mut clean_fingerprint: Option<u64> = None;

    // Forensic capture: enable engine tracing and index events per live
    // message, so a detected knot's formation can be reconstructed.
    let mut forensic = cfg.forensics.map(ForensicsState::new);
    if let Some(f) = cfg.forensics {
        net.enable_trace(f.trace_capacity);
    }

    // Incremental detection: the event-patched dynamic CWG, kept current
    // every cycle from the engine's block/acquire/release stream, plus the
    // live-knot episode tracker (the exact first-true detection cycle).
    let incremental = cfg.detection == DetectionMode::Incremental;
    let mut dwg = incremental.then(|| DynamicWaitGraph::new(net.wait_vertex_count()));
    let mut knot_live_since: Option<u64> = None;
    if incremental {
        net.enable_wait_tracking();
    }

    // Progress watchdog state: the last cycle that showed any forward
    // motion, and the stall report if the watchdog fires.
    let mut last_progress: u64 = 0;
    let mut stalled: Option<StallReport> = None;

    'run: for cycle in 0..total {
        let measuring = cycle >= cfg.warmup;

        // Traffic generation.
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = cfg.pattern.dest(&topo, NodeId(node), &mut rng) {
                    let len = cfg.len_dist.sample(&mut rng);
                    net.enqueue_with_len(NodeId(node), dst, len);
                    if measuring {
                        res.generated += 1;
                    }
                }
            }
        }

        // One cycle of the engine.
        let ev = match stepper {
            Stepper::Activity => net.step(),
            Stepper::Dense => net.step_reference(),
        };
        if let Some(f) = forensic.as_mut() {
            let (events, dropped) = net.take_trace();
            f.absorb(events, dropped);
        }
        // Incremental CWG maintenance: fold this cycle's wait-state events
        // into the dynamic graph and refresh the knot verdict. The verdict
        // is fingerprint-cached and S0-certified, so an unchanged (or
        // provably knot-free) blocked population costs O(changes).
        if let Some(d) = dwg.as_mut() {
            net.drain_wait_updates(|id, up| match up {
                WaitUpdate::Blocked { chain, requests } => d.stage_blocked(id, chain, requests),
                WaitUpdate::Clear => d.stage_clear(id),
            });
            d.commit();
            if d.has_knot() {
                knot_live_since.get_or_insert(net.cycle());
            } else {
                knot_live_since = None;
            }
        }
        for d in &ev.delivered {
            if d.recovered {
                if let Some(start) = victim_starts.remove(&d.id) {
                    if measuring {
                        res.resolution_latency.record(net.cycle() - start);
                    }
                }
            }
        }
        if measuring {
            res.injected += ev.injected as u64;
            res.link_flits += ev.link_flits as u64;
            for d in &ev.delivered {
                res.delivered += 1;
                res.delivered_flits += d.len as u64;
                if d.recovered {
                    res.recovered += 1;
                }
                res.latency.record(d.latency);
            }
        }

        if obs.on_cycle(&net, &ev).is_break() {
            break 'run;
        }

        // Progress signals from this engine step; recovery starts at a
        // detection epoch below also count.
        let mut progressed = ev.injected > 0
            || ev.link_flits > 0
            || ev.drained_flits > 0
            || ev.fault_losses > 0
            || ev.fault_rejected > 0
            || !ev.delivered.is_empty();

        // Detection epoch.
        if net.cycle().is_multiple_of(cfg.detection_interval) {
            detection_epoch += 1;
            let census_due = cfg
                .count_cycles_every
                .is_some_and(|every| measuring && detection_epoch.is_multiple_of(every));

            // Incremental mode can prove this epoch identical to a
            // previously verified clean one straight from the live
            // fingerprint — skip the snapshot capture entirely (the real
            // per-epoch saving; snapshot mode must capture to learn the
            // same thing). Census epochs always capture: the cycle census
            // reads the rebuilt graph.
            let captured = match dwg.as_ref() {
                Some(d) => {
                    !(cfg.fingerprint_skip
                        && !census_due
                        && clean_fingerprint == Some(d.fingerprint()))
                }
                None => true,
            };
            if captured {
                if snapshot_shards > 1 {
                    if snap_workers > 1 {
                        std::thread::scope(|scope| {
                            let net = &net;
                            let mut rest: &mut [SnapshotFragment] = &mut frags;
                            let mut base = 0usize;
                            for w in 0..snap_workers {
                                let n = (w + 1) * snapshot_shards / snap_workers
                                    - w * snapshot_shards / snap_workers;
                                let (chunk, tail) = rest.split_at_mut(n);
                                rest = tail;
                                let start = base;
                                base += n;
                                scope.spawn(move || {
                                    for (k, frag) in chunk.iter_mut().enumerate() {
                                        net.wait_snapshot_fragment(start + k, frag);
                                    }
                                });
                            }
                        });
                    } else {
                        for (s, frag) in frags.iter_mut().enumerate() {
                            net.wait_snapshot_fragment(s, frag);
                        }
                    }
                    arena.assemble(&frags);
                } else {
                    net.wait_snapshot_into(&mut arena);
                }
                if let Some(d) = dwg.as_ref() {
                    // The lockstep invariant behind every incremental skip:
                    // the event-patched state hashes identically to a fresh
                    // capture, at any shard count.
                    debug_assert_eq!(
                        d.fingerprint(),
                        arena.fingerprint(),
                        "incremental wait-state diverged from the snapshot"
                    );
                }
            }

            // Fast paths: with nothing blocked there are no dashed arcs, so
            // neither knots nor resource cycles can exist; and when the
            // blocked wait-state fingerprint matches a previous verified
            // clean epoch, the verdict carries over unchanged. An
            // uncaptured epoch already proved the latter.
            let skip = !captured
                || arena.num_blocked() == 0
                || (cfg.fingerprint_skip && clean_fingerprint == Some(arena.fingerprint()));

            // The graph is needed for a full analysis, and also when a
            // census falls on a skipped epoch with blocked messages (the
            // cycle count itself is not cached).
            let need_graph = !skip || (census_due && arena.num_blocked() != 0);
            if need_graph {
                rebuild_wait_graph(&arena, &mut graph);
            }

            let analysis = if skip {
                Analysis {
                    deadlocks: Vec::new(),
                    dependent: Vec::new(),
                    num_blocked: match dwg.as_ref() {
                        Some(d) if !captured => d.num_blocked(),
                        _ => arena.num_blocked(),
                    },
                }
            } else {
                graph.analyze_with(cfg.density_cap, &mut scratch)
            };
            if captured {
                clean_fingerprint = if analysis.has_deadlock() {
                    None
                } else {
                    Some(arena.fingerprint())
                };
            }
            // (On an uncaptured epoch the fingerprint matched
            // `clean_fingerprint` by construction — nothing to update.)

            // Exact formation cycle per knot, identical in both detection
            // modes: a knot exists only once every member is blocked, so
            // its formation is the latest member block stamp. (The dynamic
            // CWG's first-true cycle can be later still — a foreign message
            // taking the last escape VC closes the knot without any member
            // re-blocking — which is why `knot_live_since` is reported to
            // observers but kept out of the digest.)
            let formation: Vec<u64> = analysis
                .deadlocks
                .iter()
                .map(|d| {
                    d.deadlock_set
                        .iter()
                        .filter_map(|&m| net.blocked_since(m))
                        .max()
                        .unwrap_or(net.cycle())
                })
                .collect();

            // Cyclic non-deadlock census count, taken before recovery
            // mutates the graph. On a full-analysis epoch the scratch CSR
            // is the graph's adjacency, so the count reuses it.
            let census_count = if census_due {
                Some(if arena.num_blocked() == 0 {
                    CycleCount::Exact(0)
                } else if skip {
                    graph.count_cycles(cfg.cycle_cap)
                } else {
                    count_cycles(scratch.csr(), cfg.cycle_cap)
                })
            } else {
                None
            };

            {
                let view = EpochView {
                    cycle: net.cycle(),
                    epoch: detection_epoch,
                    arena: &arena,
                    analysis: &analysis,
                    skipped: skip,
                    captured,
                    knot_live_since,
                    net: &net,
                };
                if obs.on_epoch(&view).is_break() {
                    break 'run;
                }
            }

            // Recovery: resolve every knot in this snapshot. Removing one
            // victim breaks *a* knot, but the residual wait-for graph may
            // still contain knots among the remaining messages (large
            // multi-cycle wedges), so iterate — pick a victim per knot,
            // drop its requests in place (the victim's chain becomes a CWG
            // sink, exactly how in-progress recovery breaks a knot), and
            // re-run the slim knot decomposition — until the snapshot is
            // knot-free. This synthesizes Disha-Concurrent recovery, where
            // deadlocked packets keep claiming the recovery lane until the
            // deadlock is fully resolved. Only the first pass's knots are
            // *counted* as detected deadlocks.
            let mut epoch_victims: Vec<u64> = Vec::new();
            if cfg.recovery != RecoveryPolicy::None && analysis.has_deadlock() {
                let mut victims: std::collections::HashSet<u64> = std::collections::HashSet::new();
                let mut sets: Vec<Vec<u64>> = analysis
                    .deadlocks
                    .iter()
                    .map(|d| d.deadlock_set.clone())
                    .collect();
                for _round in 0..64 {
                    let mut progressed = false;
                    for dset in &sets {
                        let candidates = dset.iter().filter(|m| !victims.contains(m));
                        let victim = match cfg.recovery {
                            RecoveryPolicy::RemoveOldest => candidates.min().copied(),
                            RecoveryPolicy::RemoveYoungest => candidates.max().copied(),
                            RecoveryPolicy::None => unreachable!(),
                        };
                        if let Some(v) = victim {
                            victims.insert(v);
                            epoch_victims.push(v);
                            graph.remove_requests(v);
                            let ok = net.start_recovery(v);
                            debug_assert!(ok, "victim must be an active routing message");
                            victim_starts.insert(v, net.cycle());
                            if measuring {
                                res.victims_started += 1;
                            }
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                    sets = graph.knot_deadlock_sets(&mut scratch);
                    if sets.is_empty() {
                        break;
                    }
                }
            }

            progressed |= !epoch_victims.is_empty();

            // Forensic incident capture — after recovery so the outcome is
            // part of the record; the CWG comes from the immutable arena,
            // so it is the pre-recovery graph.
            if let Some(f) = forensic.as_mut() {
                f.record_epoch(
                    cfg,
                    &arena,
                    &analysis,
                    &epoch_victims,
                    net.cycle(),
                    &formation,
                    &mut res,
                );
            }

            if measuring {
                res.blocked.record(net.blocked_count() as f64);
                res.in_network.record(net.in_network() as f64);
                res.source_queued.record(net.source_queued() as f64);
                for (i, d) in analysis.deadlocks.iter().enumerate() {
                    res.deadlocks += 1;
                    match d.kind() {
                        DeadlockKind::SingleCycle => res.single_cycle_deadlocks += 1,
                        DeadlockKind::MultiCycle => res.multi_cycle_deadlocks += 1,
                    }
                    res.deadlock_set.record(d.deadlock_set.len() as u64);
                    res.resource_set.record(d.resource_set.len() as u64);
                    res.knot_density.record(d.cycle_density.value());
                    res.detection_lag.record(net.cycle() - formation[i]);
                    if d.cycle_density.is_capped() {
                        res.cycles_capped = true;
                    }
                    if res.incidents.len() < RunResult::MAX_INCIDENTS {
                        res.incidents.push(crate::result::Incident {
                            cycle: net.cycle(),
                            formation_cycle: formation[i],
                            deadlock_set_size: d.deadlock_set.len(),
                            resource_set_size: d.resource_set.len(),
                            knot_cycle_density: d.cycle_density.value(),
                            dependents: analysis.dependent.len(),
                        });
                    }
                }
                for &(_, kind) in &analysis.dependent {
                    match kind {
                        DependentKind::Committed => res.dependent_committed += 1,
                        DependentKind::Transient => res.dependent_transient += 1,
                    }
                }
            }

            // Cyclic non-deadlock census.
            if let Some(count) = census_count {
                if count.is_capped() {
                    res.cycles_capped = true;
                }
                res.counting_epochs += 1;
                if count.value() > 0 && analysis.deadlocks.is_empty() {
                    res.cyclic_nondeadlock_epochs += 1;
                }
                res.cwg_cycles.push(net.cycle(), count.value() as f64);
                let inn = net.in_network();
                let frac = if inn == 0 {
                    0.0
                } else {
                    net.blocked_count() as f64 / inn as f64
                };
                res.blocked_frac.push(net.cycle(), frac);
            }
        }

        // Progress watchdog. An idle network (nothing in flight or
        // queued) is never a stall — it is simply waiting for traffic.
        if let Some(threshold) = cfg.stall_threshold {
            if progressed || (net.in_network() == 0 && net.source_queued() == 0) {
                last_progress = net.cycle();
            } else if net.cycle() - last_progress >= threshold {
                stalled = Some(StallReport {
                    cycle: net.cycle(),
                    last_progress_cycle: last_progress,
                    in_network: net.in_network(),
                    blocked: net.blocked_count(),
                    source_queued: net.source_queued(),
                });
                break 'run;
            }
        }
    }

    let (fault_losses, fault_rejected) = net.fault_totals();
    res.fault_losses = fault_losses;
    res.fault_rejected = fault_rejected;
    res.stall = stalled;
    res.outcome = if stalled.is_some() {
        RunOutcome::Stalled
    } else if fault_losses + fault_rejected > 0 {
        RunOutcome::Faulted
    } else if net.in_network() == 0 && net.source_queued() == 0 {
        RunOutcome::Drained
    } else {
        RunOutcome::CyclesExhausted
    };

    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RoutingSpec, TopologySpec};
    use icn_traffic::Pattern;

    fn quick(cfg: &RunConfig) -> RunResult {
        run(cfg)
    }

    #[test]
    fn log_once_fires_once_per_key() {
        let calls = std::cell::Cell::new(0u32);
        let msg = || {
            calls.set(calls.get() + 1);
            String::from("notice")
        };
        assert!(log_once("test-key-log-once-a", msg));
        assert!(!log_once("test-key-log-once-a", msg));
        assert!(!log_once("test-key-log-once-a", msg));
        assert_eq!(calls.get(), 1, "message must be rendered only on first use");
        // Distinct keys are independent.
        assert!(log_once("test-key-log-once-b", msg));
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn low_load_delivers_everything_cleanly() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.2;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        let r = quick(&cfg);
        assert!(r.delivered > 0);
        assert_eq!(r.deadlocks, 0, "TFAR2 at 20% load must be deadlock-free");
        assert!(r.accepted_load() > 0.15, "accepted {}", r.accepted_load());
        assert!(r.avg_latency() > 0.0);
    }

    #[test]
    fn dor1_uni_torus_deadlocks_at_high_load() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        let r = quick(&cfg);
        assert!(r.deadlocks > 0, "uni-torus DOR1 at capacity must deadlock");
        assert!(r.recovered > 0, "victims must drain through recovery");
        assert!(r.single_cycle_deadlocks > 0);
        assert!(r.deadlock_set.mean() >= 2.0);
        // Incident reporting and recovery bookkeeping.
        assert!(r.victims_started >= r.deadlocks);
        assert!(!r.incidents.is_empty());
        assert!(r.incidents.len() <= RunResult::MAX_INCIDENTS);
        assert!(r.resolution_latency.count() > 0);
        // A 32-flit victim takes at least 32 cycles to drain.
        assert!(r.resolution_latency.min() >= 32);
        for inc in &r.incidents {
            assert!(inc.deadlock_set_size >= 2);
            assert!(inc.resource_set_size >= inc.deadlock_set_size);
            assert!(inc.knot_cycle_density >= 1);
        }
    }

    #[test]
    fn dateline_avoidance_never_deadlocks() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::DatelineDor;
        cfg.sim.vcs_per_channel = 2;
        cfg.load = 1.0;
        let r = quick(&cfg);
        assert_eq!(r.deadlocks, 0);
        assert!(r.delivered > 0);
    }

    #[test]
    fn cycle_counting_records_series() {
        let mut cfg = RunConfig::small_default();
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.count_cycles_every = Some(2);
        let r = quick(&cfg);
        assert!(!r.cwg_cycles.is_empty());
        assert_eq!(r.cwg_cycles.len(), r.blocked_frac.len());
    }

    /// Every counter that feeds the paper's tables, as one comparable list.
    fn counters(r: &RunResult) -> Vec<u64> {
        vec![
            r.generated,
            r.injected,
            r.delivered,
            r.delivered_flits,
            r.recovered,
            r.deadlocks,
            r.single_cycle_deadlocks,
            r.multi_cycle_deadlocks,
            r.victims_started,
            r.dependent_committed,
            r.dependent_transient,
            r.counting_epochs,
            r.cyclic_nondeadlock_epochs,
            r.cwg_cycles.len() as u64,
            r.incidents.len() as u64,
            r.cycles_capped as u64,
        ]
    }

    /// The fingerprint skip is an exact optimization: every measured
    /// counter must be byte-identical with it on and off, both on a
    /// deadlock-free point (where the skip fires constantly) and on a
    /// deadlock-heavy one (where clean stretches between knots still skip).
    #[test]
    fn fingerprint_skip_preserves_all_counters() {
        let mut clean = RunConfig::small_default();
        clean.load = 0.2;
        clean.routing = RoutingSpec::Tfar;
        clean.sim.vcs_per_channel = 2;
        clean.count_cycles_every = Some(3);

        let mut heavy = RunConfig::small_default();
        heavy.topology = TopologySpec::torus(8, 2, false);
        heavy.routing = RoutingSpec::Dor;
        heavy.sim.vcs_per_channel = 1;
        heavy.load = 1.0;
        heavy.count_cycles_every = Some(3);

        for mut cfg in [clean, heavy] {
            cfg.fingerprint_skip = true;
            let on = quick(&cfg);
            cfg.fingerprint_skip = false;
            let off = quick(&cfg);
            assert_eq!(counters(&on), counters(&off), "{}", cfg.label());
            assert_eq!(on.latency.count(), off.latency.count());
            assert_eq!(
                on.resolution_latency.count(),
                off.resolution_latency.count()
            );
            assert_eq!(on.deadlock_set.count(), off.deadlock_set.count());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let a = quick(&cfg);
        let b = quick(&cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.deadlocks, b.deadlocks);
        assert_eq!(a.generated, b.generated);
    }

    /// A construct-a-livelock config: recovery disabled on a wedging
    /// regime, so the network deadlocks and stays deadlocked forever. The
    /// watchdog must cut the run with a coherent stall report instead of
    /// burning the whole cycle budget on a frozen network.
    #[test]
    fn watchdog_cuts_a_wedged_run() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(4, 2, false);
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.1;
        cfg.recovery = crate::RecoveryPolicy::None;
        cfg.warmup = 500;
        cfg.measure = 100_000; // never reached: the watchdog fires first
        cfg.stall_threshold = Some(300);
        let r = quick(&cfg);
        assert_eq!(r.outcome, crate::RunOutcome::Stalled);
        let st = r.stall.expect("stalled run carries a report");
        assert!(st.cycle >= st.last_progress_cycle + 300);
        assert!(st.cycle < cfg.warmup + cfg.measure, "cut early");
        assert!(st.in_network > 0, "a stall has traffic stuck in flight");
        assert_eq!(st.blocked, st.in_network, "a total wedge blocks everyone");
        // Both steppers agree byte-for-byte on the truncated run.
        assert_eq!(r.digest(), run_reference(&cfg).digest());
    }

    /// The watchdog must NOT fire on a healthy recovering run: recovery
    /// starts and drains count as progress even deep in saturation.
    #[test]
    fn watchdog_spares_a_recovering_run() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.warmup = 200;
        cfg.measure = 2_000;
        cfg.stall_threshold = Some(300);
        let r = quick(&cfg);
        assert!(r.deadlocks > 0, "regime must deadlock for the test to bite");
        assert_ne!(r.outcome, crate::RunOutcome::Stalled);
        assert!(r.stall.is_none());
    }

    /// A fault plan classifies the run as Faulted, counts its losses, and
    /// stays byte-identical across both steppers.
    #[test]
    fn fault_plan_run_is_deterministic_and_classified() {
        let mut cfg = RunConfig::small_default();
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        cfg.load = 0.6;
        cfg.warmup = 300;
        cfg.measure = 1_500;
        cfg.faults.link_outage(3, 400, 700).link_kill(900, 17);
        let a = quick(&cfg);
        let b = run_reference(&cfg);
        assert_eq!(a.digest(), b.digest(), "steppers diverged under faults");
        assert_eq!(a.outcome, crate::RunOutcome::Faulted);
        assert!(
            a.fault_losses + a.fault_rejected > 0,
            "a killed channel at 60% load must catch some traffic"
        );
    }

    /// A drained run (finite traffic via zero load after warmup is not
    /// expressible, so use a tiny load and a long window) reports Drained
    /// when the network empties.
    #[test]
    fn outcome_reflects_emptiness() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.05;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        cfg.warmup = 100;
        cfg.measure = 500;
        let r = quick(&cfg);
        // At 5% load the network is essentially always near-empty; either
        // ending is legal but it must be fault-free and unstalled.
        assert!(matches!(
            r.outcome,
            crate::RunOutcome::Drained | crate::RunOutcome::CyclesExhausted
        ));
        assert_eq!(r.fault_losses, 0);
        assert_eq!(r.stall, None);
    }

    #[test]
    fn transpose_pattern_runs() {
        let mut cfg = RunConfig::small_default();
        cfg.pattern = Pattern::Transpose;
        cfg.load = 0.3;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        let r = quick(&cfg);
        assert!(r.delivered > 0);
    }
}
