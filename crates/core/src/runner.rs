//! The simulation loop: traffic, stepping, detection, recovery.

use icn_cwg::{DeadlockKind, DependentKind, WaitGraph};
use icn_sim::{Network, WaitSnapshot};
use icn_topology::NodeId;
use icn_traffic::BernoulliInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::result::RunResult;
use crate::spec::RecoveryPolicy;
use crate::RunConfig;

/// Converts a simulator wait-for snapshot into a channel wait-for graph.
///
/// Messages stranded by link faults can have empty request sets; they hold
/// resources but wait on nothing representable, so only their ownership
/// chains are recorded.
pub fn build_wait_graph(snap: &WaitSnapshot) -> WaitGraph {
    build_wait_graph_excluding(snap, &std::collections::HashSet::new())
}

/// As [`build_wait_graph`], but drops the *requests* of messages named in
/// `recovering`: a recovery victim still owns its chain until the drain
/// completes, but no longer waits for anything — its chain becomes a CWG
/// sink, which is exactly how in-progress recovery breaks a knot.
fn build_wait_graph_excluding(
    snap: &WaitSnapshot,
    recovering: &std::collections::HashSet<u64>,
) -> WaitGraph {
    let mut g = WaitGraph::new(snap.num_vertices);
    for m in &snap.messages {
        g.add_chain(m.id, &m.chain);
    }
    for m in &snap.messages {
        if !m.requests.is_empty() && !recovering.contains(&m.id) {
            g.add_requests(m.id, &m.requests);
        }
    }
    g
}

/// Executes one simulation point.
///
/// The loop per cycle: Bernoulli traffic generation at every node, one
/// engine step, and at every `detection_interval` boundary a CWG snapshot,
/// knot analysis, statistics recording (measurement window only) and
/// recovery of every detected knot. Detection and recovery also run during
/// warm-up so the network reaches a meaningful steady state.
pub fn run(cfg: &RunConfig) -> RunResult {
    cfg.sim.validate();
    let topo = cfg.topology.build();
    if cfg.pattern.needs_pow2() {
        assert!(
            topo.num_nodes().is_power_of_two(),
            "{} requires a power-of-two node count",
            cfg.pattern.name()
        );
    }
    cfg.len_dist.validate();
    let mut net = Network::new(topo.clone(), cfg.routing.build(), cfg.sim);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Offered load normalizes by the *mean* message length so hybrid
    // workloads compare at equal flit pressure.
    let injector = BernoulliInjector::new(
        cfg.load * topo.capacity_flits_per_node_cycle() / cfg.len_dist.mean(),
    );

    let mut res = RunResult::new(
        cfg.label(),
        cfg.load,
        topo.num_nodes(),
        topo.capacity_flits_per_node_cycle(),
        cfg.sim.msg_len,
    );
    res.cycles = cfg.measure;

    let total = cfg.warmup + cfg.measure;
    let mut detection_epoch: u64 = 0;
    // Victim id -> cycle it entered the recovery lane.
    let mut victim_starts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    for cycle in 0..total {
        let measuring = cycle >= cfg.warmup;

        // Traffic generation.
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = cfg.pattern.dest(&topo, NodeId(node), &mut rng) {
                    let len = cfg.len_dist.sample(&mut rng);
                    net.enqueue_with_len(NodeId(node), dst, len);
                    if measuring {
                        res.generated += 1;
                    }
                }
            }
        }

        // One cycle of the engine.
        let ev = net.step();
        for d in &ev.delivered {
            if d.recovered {
                if let Some(start) = victim_starts.remove(&d.id) {
                    if measuring {
                        res.resolution_latency.record(net.cycle() - start);
                    }
                }
            }
        }
        if measuring {
            res.injected += ev.injected as u64;
            res.link_flits += ev.link_flits as u64;
            for d in &ev.delivered {
                res.delivered += 1;
                res.delivered_flits += d.len as u64;
                if d.recovered {
                    res.recovered += 1;
                }
                res.latency.record(d.latency);
            }
        }

        // Detection epoch.
        if net.cycle().is_multiple_of(cfg.detection_interval) {
            detection_epoch += 1;
            let snap = net.wait_snapshot();
            let graph = build_wait_graph(&snap);
            let analysis = graph.analyze(cfg.density_cap);

            // Recovery: resolve every knot in this snapshot. Removing one
            // victim breaks *a* knot, but the residual wait-for graph may
            // still contain knots among the remaining messages (large
            // multi-cycle wedges), so iterate — pick a victim per knot,
            // drop its requests, re-analyze — until the snapshot is
            // knot-free. This synthesizes Disha-Concurrent recovery, where
            // deadlocked packets keep claiming the recovery lane until the
            // deadlock is fully resolved. Only the first pass's knots are
            // *counted* as detected deadlocks.
            if cfg.recovery != RecoveryPolicy::None && analysis.has_deadlock() {
                let mut victims: std::collections::HashSet<u64> =
                    std::collections::HashSet::new();
                let mut current = analysis.clone();
                for _round in 0..64 {
                    let mut progressed = false;
                    for d in &current.deadlocks {
                        let candidates =
                            d.deadlock_set.iter().filter(|m| !victims.contains(m));
                        let victim = match cfg.recovery {
                            RecoveryPolicy::RemoveOldest => candidates.min().copied(),
                            RecoveryPolicy::RemoveYoungest => candidates.max().copied(),
                            RecoveryPolicy::None => unreachable!(),
                        };
                        if let Some(v) = victim {
                            victims.insert(v);
                            let ok = net.start_recovery(v);
                            debug_assert!(ok, "victim must be an active routing message");
                            victim_starts.insert(v, net.cycle());
                            if measuring {
                                res.victims_started += 1;
                            }
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                    current = build_wait_graph_excluding(&snap, &victims)
                        .analyze(cfg.density_cap);
                    if !current.has_deadlock() {
                        break;
                    }
                }
            }

            if measuring {
                res.blocked.record(net.blocked_count() as f64);
                res.in_network.record(net.in_network() as f64);
                res.source_queued.record(net.source_queued() as f64);
                for d in &analysis.deadlocks {
                    res.deadlocks += 1;
                    match d.kind() {
                        DeadlockKind::SingleCycle => res.single_cycle_deadlocks += 1,
                        DeadlockKind::MultiCycle => res.multi_cycle_deadlocks += 1,
                    }
                    res.deadlock_set.record(d.deadlock_set.len() as u64);
                    res.resource_set.record(d.resource_set.len() as u64);
                    res.knot_density.record(d.cycle_density.value());
                    if d.cycle_density.is_capped() {
                        res.cycles_capped = true;
                    }
                    if res.incidents.len() < RunResult::MAX_INCIDENTS {
                        res.incidents.push(crate::result::Incident {
                            cycle: net.cycle(),
                            deadlock_set_size: d.deadlock_set.len(),
                            resource_set_size: d.resource_set.len(),
                            knot_cycle_density: d.cycle_density.value(),
                            dependents: analysis.dependent.len(),
                        });
                    }
                }
                for &(_, kind) in &analysis.dependent {
                    match kind {
                        DependentKind::Committed => res.dependent_committed += 1,
                        DependentKind::Transient => res.dependent_transient += 1,
                    }
                }
            }

            // Cyclic non-deadlock census.
            if let Some(every) = cfg.count_cycles_every {
                if measuring && detection_epoch.is_multiple_of(every) {
                    let count = graph.count_cycles(cfg.cycle_cap);
                    if count.is_capped() {
                        res.cycles_capped = true;
                    }
                    res.counting_epochs += 1;
                    if count.value() > 0 && analysis.deadlocks.is_empty() {
                        res.cyclic_nondeadlock_epochs += 1;
                    }
                    res.cwg_cycles.push(net.cycle(), count.value() as f64);
                    let inn = net.in_network();
                    let frac = if inn == 0 {
                        0.0
                    } else {
                        net.blocked_count() as f64 / inn as f64
                    };
                    res.blocked_frac.push(net.cycle(), frac);
                }
            }
        }
    }

    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RoutingSpec, TopologySpec};
    use icn_traffic::Pattern;

    fn quick(cfg: &RunConfig) -> RunResult {
        run(cfg)
    }

    #[test]
    fn low_load_delivers_everything_cleanly() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.2;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        let r = quick(&cfg);
        assert!(r.delivered > 0);
        assert_eq!(r.deadlocks, 0, "TFAR2 at 20% load must be deadlock-free");
        assert!(r.accepted_load() > 0.15, "accepted {}", r.accepted_load());
        assert!(r.avg_latency() > 0.0);
    }

    #[test]
    fn dor1_uni_torus_deadlocks_at_high_load() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::Dor;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        let r = quick(&cfg);
        assert!(r.deadlocks > 0, "uni-torus DOR1 at capacity must deadlock");
        assert!(r.recovered > 0, "victims must drain through recovery");
        assert!(r.single_cycle_deadlocks > 0);
        assert!(r.deadlock_set.mean() >= 2.0);
        // Incident reporting and recovery bookkeeping.
        assert!(r.victims_started >= r.deadlocks);
        assert!(!r.incidents.is_empty());
        assert!(r.incidents.len() <= RunResult::MAX_INCIDENTS);
        assert!(r.resolution_latency.count() > 0);
        // A 32-flit victim takes at least 32 cycles to drain.
        assert!(r.resolution_latency.min() >= 32);
        for inc in &r.incidents {
            assert!(inc.deadlock_set_size >= 2);
            assert!(inc.resource_set_size >= inc.deadlock_set_size);
            assert!(inc.knot_cycle_density >= 1);
        }
    }

    #[test]
    fn dateline_avoidance_never_deadlocks() {
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(8, 2, false);
        cfg.routing = RoutingSpec::DatelineDor;
        cfg.sim.vcs_per_channel = 2;
        cfg.load = 1.0;
        let r = quick(&cfg);
        assert_eq!(r.deadlocks, 0);
        assert!(r.delivered > 0);
    }

    #[test]
    fn cycle_counting_records_series() {
        let mut cfg = RunConfig::small_default();
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.0;
        cfg.count_cycles_every = Some(2);
        let r = quick(&cfg);
        assert!(!r.cwg_cycles.is_empty());
        assert_eq!(r.cwg_cycles.len(), r.blocked_frac.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = RunConfig::small_default();
        cfg.load = 0.9;
        cfg.routing = RoutingSpec::Dor;
        let a = quick(&cfg);
        let b = quick(&cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.deadlocks, b.deadlocks);
        assert_eq!(a.generated, b.generated);
    }

    #[test]
    fn transpose_pattern_runs() {
        let mut cfg = RunConfig::small_default();
        cfg.pattern = Pattern::Transpose;
        cfg.load = 0.3;
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 2;
        let r = quick(&cfg);
        assert!(r.delivered > 0);
    }
}
