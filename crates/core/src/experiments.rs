//! Per-figure experiment definitions (the paper's evaluation section).
//!
//! Each experiment is a list of [`RunConfig`] points; [`crate::sweep`]
//! executes them and [`results_table`] renders the series the paper plots.
//! [`shape_checks`] encodes the qualitative claims each figure makes
//! ("who wins, by roughly what factor, where crossovers fall") as
//! pass/fail assertions over the measured results — these are what the
//! integration tests and EXPERIMENTS.md verify.

use crate::report::{fnum, Table};
use crate::spec::{RoutingSpec, TopologySpec};
use crate::{RunConfig, RunResult};
use icn_topology::NodeId;
use icn_traffic::Pattern;

/// Experiment scale: `Paper` matches the publication's setup (16-ary
/// 2-cube, 30k measured cycles); `Small` shrinks the network and windows
/// so the full suite runs in seconds for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Small,
}

/// A named set of simulation points reproducing one figure/section.
#[derive(Clone, Debug)]
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub configs: Vec<RunConfig>,
}

fn base(scale: Scale) -> RunConfig {
    match scale {
        Scale::Paper => RunConfig::paper_default(),
        Scale::Small => RunConfig::small_default(),
    }
}

fn loads(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.2],
        Scale::Small => vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2],
    }
}

fn with_seed(mut cfg: RunConfig, salt: u64) -> RunConfig {
    cfg.seed = cfg
        .seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    cfg
}

/// Figure 5: effect of physical-link bidirectionality. DOR, one VC, uni-
/// vs bidirectional 16-ary 2-cube tori under uniform traffic.
pub fn fig5(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 0;
    for bidirectional in [true, false] {
        for &load in &loads(scale) {
            let mut c = base(scale);
            c.topology = TopologySpec {
                bidirectional,
                ..c.topology
            };
            c.routing = RoutingSpec::Dor;
            c.sim.vcs_per_channel = 1;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "fig5",
        title: "Fig 5: deadlocks vs load, uni- vs bidirectional torus (DOR, 1 VC)",
        configs,
    }
}

/// Figure 6: effect of routing adaptivity. DOR vs minimal TFAR, one VC,
/// bidirectional torus; cycle counting enabled (TFAR's cyclic
/// non-deadlocks are part of the story).
pub fn fig6(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 100;
    for routing in [RoutingSpec::Dor, RoutingSpec::Tfar] {
        for &load in &loads(scale) {
            let mut c = base(scale);
            c.routing = routing;
            c.sim.vcs_per_channel = 1;
            c.load = load;
            c.count_cycles_every = Some(5);
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "fig6",
        title: "Fig 6: deadlocks and cycles vs load, DOR vs TFAR (1 VC)",
        configs,
    }
}

/// Figure 7: effect of virtual channels. DOR and TFAR with 1–4 VCs per
/// physical channel, unrestricted VC use.
pub fn fig7(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 200;
    for routing in [RoutingSpec::Dor, RoutingSpec::Tfar] {
        for vcs in 1..=4usize {
            for &load in &loads(scale) {
                let mut c = base(scale);
                c.routing = routing;
                c.sim.vcs_per_channel = vcs;
                c.load = load;
                // Counting is the expensive part of this 8-curve sweep;
                // sample it at a coarser cadence than fig6.
                c.count_cycles_every = Some(10);
                configs.push(with_seed(c, salt));
                salt += 1;
            }
        }
    }
    Experiment {
        id: "fig7",
        title: "Fig 7: deadlocks and cycles vs load, DOR/TFAR with 1-4 VCs",
        configs,
    }
}

/// Figure 8: effect of buffer depth. TFAR, one VC, edge buffers from 2
/// flits (wormhole) to 32 flits (virtual cut-through).
pub fn fig8(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 300;
    for depth in [2usize, 4, 6, 8, 16, 32] {
        for &load in &loads(scale) {
            let mut c = base(scale);
            c.routing = RoutingSpec::Tfar;
            c.sim.vcs_per_channel = 1;
            c.sim.buffer_depth = depth;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "fig8",
        title:
            "Fig 8: deadlocks vs load and vs in-network messages, buffer depth 2-32 (TFAR, 1 VC)",
        configs,
    }
}

/// §3.5: effect of node degree. TFAR with one VC on a 16-ary 2-cube vs a
/// 4-ary 4-cube (same 256 nodes, twice the links and dimensions).
pub fn node_degree(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 400;
    let topologies = match scale {
        Scale::Paper => vec![
            TopologySpec::torus(16, 2, true),
            TopologySpec::torus(4, 4, true),
        ],
        Scale::Small => vec![
            TopologySpec::torus(8, 2, true),
            TopologySpec::torus(3, 4, true),
        ],
    };
    for topo in topologies {
        for &load in &loads(scale) {
            let mut c = base(scale);
            c.topology = topo;
            c.routing = RoutingSpec::Tfar;
            c.sim.vcs_per_channel = 1;
            c.load = load;
            configs.push(with_seed(c, salt));
            salt += 1;
        }
    }
    Experiment {
        id: "degree",
        title: "Sec 3.5: deadlocks vs load, 2-D vs 4-D torus (TFAR, 1 VC)",
        configs,
    }
}

/// §3.6: non-uniform traffic. DOR and TFAR (one VC) under the four classic
/// non-uniform patterns, compared with uniform at matched loads.
pub fn traffic_patterns(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    let mut salt = 500;
    let probe_loads = match scale {
        Scale::Paper => vec![0.6, 0.9, 1.2],
        Scale::Small => vec![0.8, 1.2],
    };
    for routing in [RoutingSpec::Dor, RoutingSpec::Tfar] {
        for pattern in patterns_for(scale) {
            for &load in &probe_loads {
                let mut c = base(scale);
                c.routing = routing;
                c.sim.vcs_per_channel = 1;
                c.pattern = pattern.clone();
                c.load = load;
                configs.push(with_seed(c, salt));
                salt += 1;
            }
        }
    }
    Experiment {
        id: "traffic",
        title: "Sec 3.6: deadlock frequency under non-uniform traffic patterns (DOR/TFAR, 1 VC)",
        configs,
    }
}

fn patterns_for(scale: Scale) -> Vec<Pattern> {
    let hot = match scale {
        Scale::Paper => NodeId(16 * 8 + 8), // centre of the 16-ary 2-cube
        Scale::Small => NodeId(8 * 4 + 4),
    };
    vec![
        Pattern::Uniform,
        Pattern::BitReversal,
        Pattern::Transpose,
        Pattern::PerfectShuffle,
        Pattern::HotSpot { hot, fraction: 0.1 },
    ]
}

/// All experiments of the evaluation section, in paper order.
pub fn all(scale: Scale) -> Vec<Experiment> {
    vec![
        fig5(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        node_degree(scale),
        traffic_patterns(scale),
    ]
}

/// Renders the measured series for an experiment: one row per simulation
/// point with every column the paper's plots need.
pub fn results_table(results: &[RunResult]) -> Table {
    let mut t = Table::new([
        "config",
        "load",
        "accepted",
        "delivered",
        "lat",
        "blk%",
        "ndl",
        "dl/msg-in-net",
        "dls.avg",
        "dls.max",
        "rs.avg",
        "rs.max",
        "kcd.avg",
        "kcd.max",
        "cyc.max",
        "1cyc",
        "mcyc",
        "dep",
    ]);
    for r in results {
        t.row([
            r.label.clone(),
            format!("{:.2}", r.offered_load),
            fnum(r.accepted_load()),
            r.delivered.to_string(),
            fnum(r.avg_latency()),
            fnum(100.0 * r.blocked_fraction()),
            fnum(r.normalized_deadlocks()),
            fnum(r.deadlocks_per_in_network_msg()),
            fnum(r.deadlock_set.mean()),
            r.deadlock_set.max().to_string(),
            fnum(r.resource_set.mean()),
            r.resource_set.max().to_string(),
            fnum(r.knot_density.mean()),
            r.knot_density.max().to_string(),
            fnum(r.max_cwg_cycles()),
            r.single_cycle_deadlocks.to_string(),
            r.multi_cycle_deadlocks.to_string(),
            (r.dependent_committed + r.dependent_transient).to_string(),
        ]);
    }
    t
}

/// Identifies a curve within an experiment: everything except the load.
fn curve_key(c: &RunConfig) -> String {
    format!(
        "{} {} vc={} buf={} {}",
        c.topology.label(),
        c.routing.name(),
        c.sim.vcs_per_channel,
        c.sim.buffer_depth,
        c.pattern.name()
    )
}

/// Distinct curve keys in config order.
fn curve_keys(exp: &Experiment) -> Vec<String> {
    let mut keys: Vec<String> = Vec::new();
    for c in &exp.configs {
        let k = curve_key(c);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys
}

/// Charts the experiment's headline series — normalized deadlocks vs
/// offered load, one symbol per curve — in the terminal (the paper's
/// "(a)" panels).
pub fn figure_chart(exp: &Experiment, results: &[RunResult]) -> crate::chart::AsciiChart {
    assert_eq!(exp.configs.len(), results.len());
    let mut chart = crate::chart::AsciiChart::new(
        format!("{} — normalized deadlocks vs load", exp.id),
        "offered load (fraction of capacity)",
        "deadlocks per delivered message",
    );
    let symbols = ['o', '+', 'x', '*', '.', '@', '%', '&', '=', '~'];
    for (i, key) in curve_keys(exp).iter().enumerate() {
        let pts: Vec<(f64, f64)> = exp
            .configs
            .iter()
            .zip(results)
            .filter(|(c, _)| curve_key(c) == *key)
            .map(|(c, r)| (c.load, r.normalized_deadlocks()))
            .collect();
        chart.series(symbols[i % symbols.len()], key.clone(), pts);
    }
    chart
}

/// Summarizes each curve of an experiment: the measured saturation load
/// (where accepted throughput stops tracking offered load — the vertical
/// dashed lines in the paper's figures) and the deadlock-onset load.
pub fn saturation_summary(exp: &Experiment, results: &[RunResult]) -> Table {
    assert_eq!(exp.configs.len(), results.len());
    let keys = curve_keys(exp);

    let mut t = Table::new(["curve", "saturation", "deadlock-onset", "total-deadlocks"]);
    for key in keys {
        let mut pts: Vec<(&RunConfig, &RunResult)> = exp
            .configs
            .iter()
            .zip(results)
            .filter(|(c, _)| curve_key(c) == *key)
            .collect();
        pts.sort_by(|a, b| a.0.load.partial_cmp(&b.0.load).unwrap());
        let curve: Vec<(f64, f64)> = pts
            .iter()
            .map(|(c, r)| (c.load, r.accepted_load()))
            .collect();
        let sat = icn_metrics::saturation_point(&curve)
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "-".into());
        let onset = pts
            .iter()
            .filter(|(_, r)| r.deadlocks > 0)
            .map(|(c, _)| c.load)
            .fold(f64::INFINITY, f64::min);
        let onset = if onset.is_finite() {
            format!("{onset:.2}")
        } else {
            "-".into()
        };
        let total: u64 = pts.iter().map(|(_, r)| r.deadlocks).sum();
        t.row([key, sat, onset, total.to_string()]);
    }
    t
}

/// One qualitative claim from the paper checked against measurements.
#[derive(Clone, Debug)]
pub struct ShapeCheck {
    pub claim: String,
    pub pass: bool,
    pub detail: String,
}

fn check(claim: impl Into<String>, pass: bool, detail: String) -> ShapeCheck {
    ShapeCheck {
        claim: claim.into(),
        pass,
        detail,
    }
}

fn total_deadlocks<'a>(it: impl Iterator<Item = &'a RunResult>) -> u64 {
    it.map(|r| r.deadlocks).sum()
}

/// Evaluates the paper's qualitative claims for one experiment's results.
/// `configs` and `results` must be index-aligned (as produced by
/// [`crate::sweep`]).
pub fn shape_checks(exp: &Experiment, results: &[RunResult]) -> Vec<ShapeCheck> {
    assert_eq!(exp.configs.len(), results.len());
    let sel = |pred: &dyn Fn(&RunConfig) -> bool| -> Vec<&RunResult> {
        exp.configs
            .iter()
            .zip(results)
            .filter(|(c, _)| pred(c))
            .map(|(_, r)| r)
            .collect()
    };

    match exp.id {
        "fig5" => {
            let bi = sel(&|c| c.topology.bidirectional);
            let uni = sel(&|c| !c.topology.bidirectional);
            let bi_n: f64 = bi.iter().map(|r| r.normalized_deadlocks()).sum();
            let uni_n: f64 = uni.iter().map(|r| r.normalized_deadlocks()).sum();
            let bi_min = bi
                .iter()
                .filter(|r| r.deadlocks > 0)
                .map(|r| r.deadlock_set.min())
                .min()
                .unwrap_or(0);
            let uni_min = uni
                .iter()
                .filter(|r| r.deadlocks > 0)
                .map(|r| r.deadlock_set.min())
                .min()
                .unwrap_or(0);
            let multi: u64 = bi
                .iter()
                .chain(uni.iter())
                .map(|r| r.multi_cycle_deadlocks)
                .sum();
            vec![
                check(
                    "uni-torus has more normalized deadlocks than bi-torus",
                    uni_n > bi_n,
                    format!("uni={uni_n:.4} bi={bi_n:.4}"),
                ),
                check(
                    "minimal deadlock set: >=3 messages (bi), >=2 (uni)",
                    (bi_min == 0 || bi_min >= 3) && (uni_min == 0 || uni_min >= 2),
                    format!("bi.min={bi_min} uni.min={uni_min}"),
                ),
                check(
                    "DOR deadlocks are all single-cycle",
                    multi == 0,
                    format!("multi-cycle={multi}"),
                ),
            ]
        }
        "fig6" => {
            let dor = sel(&|c| c.routing == RoutingSpec::Dor);
            let tfar = sel(&|c| c.routing == RoutingSpec::Tfar);
            let dor_total = total_deadlocks(dor.iter().copied());
            let tfar_total = total_deadlocks(tfar.iter().copied());
            let dor_set: f64 = dor
                .iter()
                .map(|r| r.deadlock_set.mean())
                .fold(0.0, f64::max);
            let tfar_set: f64 = tfar
                .iter()
                .map(|r| r.deadlock_set.mean())
                .fold(0.0, f64::max);
            let dor_res: f64 = dor
                .iter()
                .map(|r| r.resource_set.mean())
                .fold(0.0, f64::max);
            let tfar_res: f64 = tfar
                .iter()
                .map(|r| r.resource_set.mean())
                .fold(0.0, f64::max);
            // Recovery keeps accepted throughput tracking offered load
            // right up to the knee (isolated deadlocks are repaired), so
            // the measurable form of "TFAR suffers no deadlocks below
            // saturation ... 1 per 100 delivered at saturation" is a knee
            // contrast: a negligible normalized rate wherever throughput
            // holds, orders of magnitude more once it collapses.
            let sat = icn_metrics::saturation_point(
                &tfar
                    .iter()
                    .map(|r| (r.offered_load, r.accepted_load()))
                    .collect::<Vec<_>>(),
            )
            .unwrap_or(f64::INFINITY);
            let pre_knee_ndl = tfar
                .iter()
                .filter(|r| r.offered_load < sat)
                .map(|r| r.normalized_deadlocks())
                .fold(0.0, f64::max);
            let post_knee_ndl = tfar
                .iter()
                .filter(|r| r.offered_load >= sat)
                .map(|r| r.normalized_deadlocks())
                .fold(0.0, f64::max);
            let knee_ok = pre_knee_ndl <= 1e-3
                && (post_knee_ndl == 0.0 || post_knee_ndl > 50.0 * pre_knee_ndl.max(1e-6));
            let cyclic_nondl: u64 = tfar.iter().map(|r| r.cyclic_nondeadlock_epochs).sum();
            vec![
                check(
                    "DOR suffers more actual deadlocks than TFAR",
                    dor_total > tfar_total,
                    format!("dor={dor_total} tfar={tfar_total}"),
                ),
                check(
                    "TFAR deadlock sets are larger than DOR's",
                    tfar_total == 0 || tfar_set > dor_set,
                    format!("tfar.max-mean={tfar_set:.1} dor.max-mean={dor_set:.1}"),
                ),
                check(
                    "TFAR resource sets are larger than DOR's",
                    tfar_total == 0 || tfar_res > dor_res,
                    format!("tfar={tfar_res:.1} dor={dor_res:.1}"),
                ),
                check(
                    "TFAR deadlocks negligible below the knee, dominant beyond",
                    knee_ok,
                    format!(
                        "knee at {sat}; worst ndl below={pre_knee_ndl:.5} beyond={post_knee_ndl:.3}"
                    ),
                ),
                check(
                    "TFAR forms cyclic non-deadlocks (cycles without a knot)",
                    cyclic_nondl > 0,
                    format!("epochs with cycles and no knot: {cyclic_nondl}"),
                ),
            ]
        }
        "fig7" => {
            let by = |routing: RoutingSpec, vcs: usize| -> Vec<&RunResult> {
                sel(&move |c: &RunConfig| c.routing == routing && c.sim.vcs_per_channel == vcs)
            };
            let dor1 = total_deadlocks(by(RoutingSpec::Dor, 1).into_iter());
            let dor2 = total_deadlocks(by(RoutingSpec::Dor, 2).into_iter());
            let tfar1 = total_deadlocks(by(RoutingSpec::Tfar, 1).into_iter());
            // "Highly improbable": zero deadlocks below the curve's own
            // measured saturation, and a vanishing normalized rate even
            // when overdriven deep past it.
            let improbable = |rs: &[&RunResult], ndl_cap: f64| -> (bool, f64) {
                let curve: Vec<(f64, f64)> = rs
                    .iter()
                    .map(|r| (r.offered_load, r.accepted_load()))
                    .collect();
                let sat = icn_metrics::saturation_point(&curve).unwrap_or(f64::INFINITY);
                let below_sat =
                    total_deadlocks(rs.iter().copied().filter(|r| r.offered_load < sat));
                let worst = rs
                    .iter()
                    .map(|r| r.normalized_deadlocks())
                    .fold(0.0, f64::max);
                (below_sat == 0 && worst <= ndl_cap, worst)
            };
            let (dor3_ok, dor3_ndl) = improbable(&by(RoutingSpec::Dor, 3), 0.005);
            let (dor4_ok, dor4_ndl) = improbable(&by(RoutingSpec::Dor, 4), 0.005);
            let (tfar2_ok, tfar2_ndl) = improbable(&by(RoutingSpec::Tfar, 2), 0.001);
            let (tfar3_ok, _) = improbable(&by(RoutingSpec::Tfar, 3), 0.001);
            let (tfar4_ok, _) = improbable(&by(RoutingSpec::Tfar, 4), 0.001);
            // Deadlock onset: lowest load with any deadlock.
            let onset = |rs: &[&RunResult]| -> f64 {
                rs.iter()
                    .filter(|r| r.deadlocks > 0)
                    .map(|r| r.offered_load)
                    .fold(f64::INFINITY, f64::min)
            };
            let onset1 = onset(&by(RoutingSpec::Dor, 1));
            let onset2 = onset(&by(RoutingSpec::Dor, 2));
            let blocked1: f64 = by(RoutingSpec::Tfar, 1)
                .iter()
                .map(|r| r.blocked_fraction())
                .fold(0.0, f64::max);
            let blocked2: f64 = by(RoutingSpec::Tfar, 2)
                .iter()
                .map(|r| r.blocked_fraction())
                .fold(0.0, f64::max);
            vec![
                check(
                    "a 2nd VC raises DOR's deadlock-onset load",
                    dor2 == 0 || onset2 > onset1,
                    format!("onset dor1={onset1} dor2={onset2}"),
                ),
                check(
                    "3+ VCs make DOR deadlock highly improbable",
                    dor3_ok && dor4_ok,
                    format!("worst ndl dor3={dor3_ndl:.5} dor4={dor4_ndl:.5}"),
                ),
                check(
                    "2+ VCs make TFAR deadlock highly improbable",
                    tfar2_ok && tfar3_ok && tfar4_ok,
                    format!("worst ndl tfar2={tfar2_ndl:.6}"),
                ),
                check(
                    "TFAR1 and DOR1 both deadlock",
                    tfar1 > 0 && dor1 > 0,
                    format!("tfar1={tfar1} dor1={dor1}"),
                ),
                check(
                    "extra VCs reduce peak congestion (TFAR)",
                    blocked2 < blocked1,
                    format!("blocked tfar1={blocked1:.2} tfar2={blocked2:.2}"),
                ),
            ]
        }
        "fig8" => {
            let by_depth = |d: usize| -> Vec<&RunResult> {
                sel(&move |c: &RunConfig| c.sim.buffer_depth == d)
            };
            let peak_accept = |d: usize| -> f64 {
                by_depth(d)
                    .iter()
                    .map(|r| r.accepted_load())
                    .fold(0.0, f64::max)
            };
            let per_msg = |d: usize| -> f64 {
                by_depth(d)
                    .iter()
                    .map(|r| r.deadlocks_per_in_network_msg())
                    .fold(0.0, f64::max)
            };
            let onset = |d: usize| -> f64 {
                by_depth(d)
                    .iter()
                    .filter(|r| r.deadlocks > 0)
                    .map(|r| r.offered_load)
                    .fold(f64::INFINITY, f64::min)
            };
            vec![
                check(
                    "deeper buffers raise the saturation (accepted) load",
                    peak_accept(32) > peak_accept(2),
                    format!("accept d2={:.3} d32={:.3}", peak_accept(2), peak_accept(32)),
                ),
                check(
                    "per-in-network-message deadlock rate falls with depth",
                    per_msg(32) < per_msg(2) || per_msg(2) == 0.0,
                    format!("d2={:.4} d32={:.4}", per_msg(2), per_msg(32)),
                ),
                check(
                    "deadlock onset load rises with buffer depth (VCT least deadlock-prone)",
                    onset(32) >= onset(2),
                    format!("onset d2={} d32={}", onset(2), onset(32)),
                ),
            ]
        }
        "degree" => {
            let n2 = sel(&|c| c.topology.n == 2);
            let n4 = sel(&|c| c.topology.n == 4);
            let d2 = total_deadlocks(n2.iter().copied());
            let d4 = total_deadlocks(n4.iter().copied());
            let multi4: u64 = n4.iter().map(|r| r.multi_cycle_deadlocks).sum();
            vec![
                check(
                    "4-D torus suffers far fewer deadlocks than 2-D",
                    d4 * 2 < d2.max(1),
                    format!("2D={d2} 4D={d4}"),
                ),
                check(
                    "the few 4-D deadlocks are single-cycle",
                    multi4 == 0,
                    format!("multi-cycle={multi4}"),
                ),
            ]
        }
        "traffic" => {
            let tfar_uniform =
                sel(&|c| c.routing == RoutingSpec::Tfar && c.pattern == Pattern::Uniform);
            let tfar_other =
                sel(&|c| c.routing == RoutingSpec::Tfar && c.pattern != Pattern::Uniform);
            let u: u64 = total_deadlocks(tfar_uniform.iter().copied());
            let o = total_deadlocks(tfar_other.iter().copied()) as f64
                / (tfar_other.len().max(1) as f64 / tfar_uniform.len().max(1) as f64);
            let dor_uniform = total_deadlocks(
                sel(&|c| c.routing == RoutingSpec::Dor && c.pattern == Pattern::Uniform)
                    .into_iter(),
            );
            let dor_transpose = total_deadlocks(
                sel(&|c| c.routing == RoutingSpec::Dor && c.pattern == Pattern::Transpose)
                    .into_iter(),
            );
            vec![
                check(
                    "TFAR deadlock frequency is similar across patterns",
                    u == 0 || (o > 0.1 * u as f64 && o < 10.0 * u as f64),
                    format!("uniform={u} others(avg-normalized)={o:.1}"),
                ),
                check(
                    "DOR under transpose avoids the circular overlap (<= uniform)",
                    dor_transpose <= dor_uniform,
                    format!("uniform={dor_uniform} transpose={dor_transpose}"),
                ),
            ]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_shapes() {
        let f5 = fig5(Scale::Small);
        assert_eq!(f5.configs.len(), 2 * loads(Scale::Small).len());
        let f7 = fig7(Scale::Small);
        assert_eq!(f7.configs.len(), 2 * 4 * loads(Scale::Small).len());
        let f8 = fig8(Scale::Small);
        assert_eq!(f8.configs.len(), 6 * loads(Scale::Small).len());
        assert_eq!(all(Scale::Small).len(), 6);
    }

    #[test]
    fn seeds_are_distinct() {
        let f5 = fig5(Scale::Small);
        let mut seeds: Vec<u64> = f5.configs.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), f5.configs.len());
    }

    #[test]
    fn paper_scale_uses_paper_topology() {
        let f5 = fig5(Scale::Paper);
        assert!(f5.configs.iter().all(|c| c.topology.k == 16));
        assert!(f5.configs.iter().all(|c| c.measure == 30_000));
    }

    #[test]
    fn figure_chart_has_one_series_per_curve() {
        let exp = fig5(Scale::Small);
        let results: Vec<crate::RunResult> = exp
            .configs
            .iter()
            .map(|c| crate::RunResult::new(c.label(), c.load, 64, 0.5, c.sim.msg_len))
            .collect();
        let chart = figure_chart(&exp, &results);
        assert_eq!(chart.num_series(), 2);
    }

    #[test]
    fn saturation_summary_one_row_per_curve() {
        let exp = fig5(Scale::Small);
        // Fabricate results: bi curve saturates at 0.8, uni never.
        let results: Vec<crate::RunResult> = exp
            .configs
            .iter()
            .map(|c| {
                let mut r = crate::RunResult::new(c.label(), c.load, 64, 0.5, c.sim.msg_len);
                r.cycles = 1000;
                let accepted = if c.topology.bidirectional && c.load >= 0.8 {
                    0.4
                } else {
                    c.load
                };
                r.delivered_flits = (accepted * 0.5 * 64.0 * 1000.0) as u64;
                r.delivered = r.delivered_flits / 32;
                if c.load >= 1.0 {
                    r.deadlocks = 5;
                }
                r
            })
            .collect();
        let t = saturation_summary(&exp, &results);
        assert_eq!(t.len(), 2, "one row per direction curve");
        let rendered = t.render();
        assert!(rendered.contains("bi-8ary2"));
        assert!(rendered.contains("uni-8ary2"));
        assert!(rendered.contains("0.80"), "bi saturation detected");
    }

    #[test]
    fn traffic_experiment_has_all_patterns() {
        let t = traffic_patterns(Scale::Small);
        let names: std::collections::HashSet<_> =
            t.configs.iter().map(|c| c.pattern.name()).collect();
        assert!(names.contains("uniform"));
        assert!(names.contains("bit-reversal"));
        assert!(names.contains("transpose"));
        assert!(names.contains("perfect-shuffle"));
        assert!(names.contains("hot-spot"));
    }
}
