//! Minimal JSON export of run results (for external plotting tools).
//!
//! Hand-rolled on purpose: the export is a flat summary of derived
//! metrics, so a serializer dependency would be pure weight.

use crate::jsonio::{esc, num};
use crate::RunResult;
use std::fmt::Write;

/// Serializes one result as a JSON object.
pub fn result_to_json(r: &RunResult) -> String {
    let mut o = String::from("{");
    let mut field = |key: &str, val: String| {
        if o.len() > 1 {
            o.push(',');
        }
        let _ = write!(o, "\"{key}\":{val}");
    };
    field("label", format!("\"{}\"", esc(&r.label)));
    field("offered_load", num(r.offered_load));
    field("accepted_load", num(r.accepted_load()));
    field("cycles", r.cycles.to_string());
    field("generated", r.generated.to_string());
    field("delivered", r.delivered.to_string());
    field("recovered", r.recovered.to_string());
    field("delivered_flits", r.delivered_flits.to_string());
    field("avg_latency", num(r.avg_latency()));
    field("p99_latency", r.latency.quantile(0.99).to_string());
    field("blocked_fraction", num(r.blocked_fraction()));
    field("in_network_avg", num(r.in_network.mean()));
    field("deadlocks", r.deadlocks.to_string());
    field("normalized_deadlocks", num(r.normalized_deadlocks()));
    field(
        "deadlocks_per_in_network_msg",
        num(r.deadlocks_per_in_network_msg()),
    );
    field("single_cycle", r.single_cycle_deadlocks.to_string());
    field("multi_cycle", r.multi_cycle_deadlocks.to_string());
    field("deadlock_set_mean", num(r.deadlock_set.mean()));
    field("deadlock_set_max", r.deadlock_set.max().to_string());
    field("resource_set_mean", num(r.resource_set.mean()));
    field("resource_set_max", r.resource_set.max().to_string());
    field("knot_density_mean", num(r.knot_density.mean()));
    field("knot_density_max", r.knot_density.max().to_string());
    field("dependent_committed", r.dependent_committed.to_string());
    field("dependent_transient", r.dependent_transient.to_string());
    field("max_cwg_cycles", num(r.max_cwg_cycles()));
    field("cycles_capped", r.cycles_capped.to_string());
    field(
        "cyclic_nondeadlock_epochs",
        r.cyclic_nondeadlock_epochs.to_string(),
    );
    field("victims_started", r.victims_started.to_string());
    field("resolution_latency_mean", num(r.resolution_latency.mean()));
    field("outcome", format!("\"{}\"", r.outcome.name()));
    field("fault_losses", r.fault_losses.to_string());
    field("fault_rejected", r.fault_rejected.to_string());
    field(
        "stall_cycle",
        match &r.stall {
            Some(st) => st.cycle.to_string(),
            None => "null".to_string(),
        },
    );
    o.push('}');
    o
}

/// Serializes a sweep as a JSON array.
pub fn sweep_to_json(results: &[RunResult]) -> String {
    let items: Vec<String> = results.iter().map(result_to_json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        let mut r = RunResult::new("bi \"q\" test".into(), 0.5, 64, 0.5, 32);
        r.cycles = 100;
        r.delivered = 10;
        r.delivered_flits = 320;
        r.deadlocks = 2;
        r.deadlock_set.record(3);
        r
    }

    #[test]
    fn object_is_balanced_and_escaped() {
        let j = result_to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"label\":\"bi \\\"q\\\" test\""));
        assert!(j.contains("\"deadlocks\":2"));
        assert!(j.contains("\"normalized_deadlocks\":0.2"));
    }

    #[test]
    fn infinity_becomes_null() {
        let mut r = sample();
        r.delivered = 0;
        r.delivered_flits = 0;
        let j = result_to_json(&r);
        assert!(j.contains("\"normalized_deadlocks\":null"));
    }

    #[test]
    fn array_form() {
        let j = sweep_to_json(&[sample(), sample()]);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches("\"label\"").count(), 2);
    }

    #[test]
    fn empty_sweep_is_empty_array() {
        assert_eq!(sweep_to_json(&[]), "[]");
    }
}
