//! Shared hand-rolled JSON plumbing for the orchestration layer.
//!
//! The value tree, parser, and writer live in [`icn_cwg::jsonio`] (the
//! lowest crate that needs them); this module re-exports that surface and
//! centralizes the helpers that used to be copy-pasted across
//! `json.rs`, `checkpoint.rs`, `forensics/incident.rs`, and `faults.rs`:
//! typed field accessors with uniform error messages, exact `f64`
//! bit-pattern transport, scalar formatting for the flat summary export,
//! and a JSON-lines scanner that understands torn final lines (the
//! signature of an interrupted appender). The campaign server reuses all
//! of it instead of growing a fourth copy.

pub use icn_cwg::jsonio::{obj, parse, u64_arr, Json, ParseError};

pub mod durable;

/// A parse error with no meaningful offset (field-level validation).
pub fn bad(message: &str) -> ParseError {
    ParseError {
        offset: 0,
        message: message.to_string(),
    }
}

/// Required object field.
pub fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ParseError> {
    v.get(key).ok_or_else(|| bad(&format!("missing `{key}`")))
}

/// Required `u64` field.
pub fn get_u64(v: &Json, key: &str) -> Result<u64, ParseError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("`{key}` must be an unsigned integer")))
}

/// Required numeric field (integers widen).
pub fn get_f64(v: &Json, key: &str) -> Result<f64, ParseError> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| bad(&format!("`{key}` must be a number")))
}

/// Required boolean field.
pub fn get_bool(v: &Json, key: &str) -> Result<bool, ParseError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| bad(&format!("`{key}` must be a bool")))
}

/// Required string field.
pub fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ParseError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| bad(&format!("`{key}` must be a string")))
}

/// Required array-of-`u64` field.
pub fn get_u64_vec(v: &Json, key: &str) -> Result<Vec<u64>, ParseError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| bad(&format!("`{key}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| bad(&format!("`{key}` holds a non-u64 element")))
        })
        .collect()
}

/// An `f64` as its `u64` bit pattern, so NaN payloads and signed zeros
/// survive a round trip exactly.
pub fn f64_bits(v: f64) -> Json {
    Json::U64(v.to_bits())
}

/// Reads a field written by [`f64_bits`].
pub fn get_f64_bits(v: &Json, key: &str) -> Result<f64, ParseError> {
    Ok(f64::from_bits(get_u64(v, key)?))
}

/// Escapes a string for direct embedding between quotes in hand-written
/// JSON (the flat-summary writer path).
pub fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats a float for a human-oriented export: finite values print
/// shortest-round-trip, non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Outcome of scanning a JSON-lines document (one value per line).
///
/// Checkpoint and result-stream files are written by a single appender,
/// so the only legitimate corruption is a *torn final line*: the writer
/// was killed mid-`writeln!`. The scanner distinguishes that case (a
/// non-empty last line with no trailing newline that fails to parse)
/// from interior garbage, which is counted as skipped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineScan {
    /// Values that parsed, in file order, with their 0-based line number.
    pub values: Vec<(usize, Json)>,
    /// Interior lines that failed to parse (data loss worth surfacing).
    pub skipped: usize,
    /// Whether the document ends in a torn (partially written) line.
    pub torn_tail: bool,
}

/// Scans a JSON-lines document. Empty lines are ignored entirely.
pub fn scan_lines(text: &str) -> LineScan {
    let mut scan = LineScan::default();
    let ends_with_newline = text.is_empty() || text.ends_with('\n');
    let last_line = text.lines().filter(|l| !l.trim().is_empty()).count();
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        seen += 1;
        match parse(line) {
            Ok(v) => scan.values.push((lineno, v)),
            Err(_) => {
                if seen == last_line && !ends_with_newline {
                    scan.torn_tail = true;
                } else {
                    scan.skipped += 1;
                }
            }
        }
    }
    scan
}

/// CRC-32 (IEEE, reflected) over `bytes` — the integrity check behind
/// framed checkpoint records. Bitwise (no table): record frames are a few
/// kilobytes written once per completed simulation, so throughput is
/// irrelevant and the zero-state implementation is the auditable one.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The sentinel that opens a framed record line.
pub const FRAME_MARK: char = '~';

/// Wraps one JSON-lines payload in a length-prefixed, CRC-guarded frame:
/// `~<len-hex>:<crc32-hex>:<payload>`. The payload stays readable text on
/// its own line; the header lets [`scan_records`] distinguish *verified*
/// records from silently corrupted ones — a flipped byte anywhere in a
/// bare JSON line can still parse (numbers, strings), but it cannot still
/// match the CRC.
pub fn frame_record(payload: &str) -> String {
    debug_assert!(
        !payload.contains('\n'),
        "a framed record is one line by construction"
    );
    format!(
        "{FRAME_MARK}{:x}:{:08x}:{payload}",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// What one line of a record stream turned out to be.
enum Frame<'a> {
    /// A framed record whose length and CRC both verify.
    Verified(&'a str),
    /// A line that opens like a frame but fails verification — length
    /// mismatch, CRC mismatch, or a mangled header.
    Corrupt,
    /// Not a frame at all: legacy bare-JSON checkpoint lines.
    Bare(&'a str),
}

fn unframe(line: &str) -> Frame<'_> {
    let Some(rest) = line.strip_prefix(FRAME_MARK) else {
        return Frame::Bare(line);
    };
    let parsed = (|| {
        let (len_hex, rest) = rest.split_once(':')?;
        let (crc_hex, payload) = rest.split_once(':')?;
        let len = usize::from_str_radix(len_hex, 16).ok()?;
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        (payload.len() == len && crc32(payload.as_bytes()) == crc).then_some(payload)
    })();
    match parsed {
        Some(payload) => Frame::Verified(payload),
        None => Frame::Corrupt,
    }
}

/// Extracts the streamable payload of one record line: the CRC-verified
/// payload of a framed line, or a bare line that parses as JSON (legacy
/// format). `None` for corrupt frames and garbage — a damaged line never
/// reaches a results-stream client.
pub fn record_payload(line: &str) -> Option<&str> {
    match unframe(line) {
        Frame::Verified(p) => Some(p),
        Frame::Bare(p) => parse(p).ok().map(|_| p),
        Frame::Corrupt => None,
    }
}

/// Outcome of scanning a checkpoint record stream: framed lines verified
/// against their CRC, legacy bare JSON lines parsed as before, and every
/// damaged line accounted for instead of silently dropped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordScan {
    /// Payload values that parsed (and, when framed, verified), in file
    /// order, with their 0-based line number.
    pub values: Vec<(usize, Json)>,
    /// Interior lines that were neither verifiable frames nor parseable
    /// bare JSON — data loss worth surfacing.
    pub skipped: usize,
    /// Interior framed lines whose length or CRC failed verification —
    /// *detected* corruption, distinct from `skipped` because the frame
    /// proves the writer intended a record there.
    pub corrupt_frames: usize,
    /// Raw text of each damaged interior line (corrupt frame or unparsable
    /// bare line), for quarantining by the caller.
    pub damaged_lines: Vec<String>,
    /// The document ends in a torn (partially written) line — the
    /// signature of a writer killed mid-append. Never counted as loss.
    pub torn_tail: bool,
}

/// Scans a JSON-lines record stream that may mix CRC-framed records (the
/// current append format) with bare JSON lines (legacy checkpoints).
/// Empty lines are ignored. A final non-empty line with no trailing
/// newline that fails to verify/parse is a torn tail; any interior
/// failure is counted (`corrupt_frames` for broken frames, `skipped` for
/// bare garbage) and captured in `damaged_lines`.
pub fn scan_records(text: &str) -> RecordScan {
    let mut scan = RecordScan::default();
    let ends_with_newline = text.is_empty() || text.ends_with('\n');
    let last_line = text.lines().filter(|l| !l.trim().is_empty()).count();
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        seen += 1;
        let is_tail = seen == last_line && !ends_with_newline;
        let (payload, framed) = match unframe(line) {
            Frame::Verified(p) => (Some(p), true),
            Frame::Bare(p) => (Some(p), false),
            Frame::Corrupt => (None, true),
        };
        match payload.and_then(|p| parse(p).ok()) {
            Some(v) => scan.values.push((lineno, v)),
            None if is_tail => scan.torn_tail = true,
            None => {
                if framed {
                    scan.corrupt_frames += 1;
                } else {
                    scan.skipped += 1;
                }
                scan.damaged_lines.push(line.to_string());
            }
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_report_missing_and_mistyped() {
        let v = parse("{\"n\": 3, \"s\": \"x\", \"b\": true, \"f\": 1.5}").unwrap();
        assert_eq!(get_u64(&v, "n").unwrap(), 3);
        assert_eq!(get_str(&v, "s").unwrap(), "x");
        assert!(get_bool(&v, "b").unwrap());
        assert_eq!(get_f64(&v, "f").unwrap(), 1.5);
        assert!(get(&v, "missing").is_err());
        assert!(get_u64(&v, "s").is_err());
    }

    #[test]
    fn f64_bits_round_trips_nan_and_negative_zero() {
        for x in [-0.0f64, f64::NAN, 1.5, f64::INFINITY] {
            let v = obj(vec![("x", f64_bits(x))]);
            let back = get_f64_bits(&v, "x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn esc_and_num() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn scan_clean_document() {
        let s = scan_lines("{\"a\":1}\n{\"a\":2}\n");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
    }

    #[test]
    fn scan_counts_interior_garbage() {
        let s = scan_lines("{\"a\":1}\nnot json\n{\"a\":2}\n");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 1);
        assert!(!s.torn_tail);
        // Line numbers point at the surviving lines.
        assert_eq!(s.values[0].0, 0);
        assert_eq!(s.values[1].0, 2);
    }

    #[test]
    fn scan_tolerates_torn_tail() {
        let s = scan_lines("{\"a\":1}\n{\"a\":2,\"tr");
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.skipped, 0);
        assert!(s.torn_tail);
    }

    #[test]
    fn torn_tail_requires_missing_newline() {
        // A complete (newline-terminated) bad line is interior garbage,
        // not a torn tail, even in final position.
        let s = scan_lines("{\"a\":1}\ngarbage\n");
        assert_eq!(s.skipped, 1);
        assert!(!s.torn_tail);
    }

    #[test]
    fn scan_lines_empty_file() {
        let s = scan_lines("");
        assert!(s.values.is_empty());
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
    }

    #[test]
    fn scan_lines_only_a_torn_line() {
        // A file holding nothing but a partial record (writer killed during
        // its very first append) is a torn tail, not interior loss.
        let s = scan_lines("{\"a\":1,\"tr");
        assert!(s.values.is_empty());
        assert_eq!(s.skipped, 0);
        assert!(s.torn_tail);
    }

    #[test]
    fn scan_lines_crlf_tails() {
        // CRLF-terminated records parse normally (`lines()` strips the \r
        // that precedes a \n)...
        let s = scan_lines("{\"a\":1}\r\n{\"a\":2}\r\n");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
        // ...and a final record cut after its \r but before its \n is a
        // torn tail: the bare \r stays attached to the last line and the
        // document does not end in \n.
        let s = scan_lines("{\"a\":1}\r\n{\"a\":2,\"tr\r");
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.skipped, 0);
        assert!(s.torn_tail);
    }

    #[test]
    fn scan_lines_multi_torn_append() {
        // Repeated kill-and-resume cycles: each dead writer leaves a torn
        // tail, each resumed writer guards with a newline and appends after
        // it. Only the *final* partial line is a torn tail; earlier torn
        // fragments became interior lines and count as skipped.
        let s = scan_lines("{\"a\":1}\n{\"a\":2,\"tr\n{\"a\":2}\n{\"a\":3,\"xy");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 1);
        assert!(s.torn_tail);
    }

    #[test]
    fn frame_round_trips_and_detects_flips() {
        let payload = "{\"index\":3,\"label\":\"s7\"}";
        let framed = frame_record(payload);
        assert!(framed.starts_with(FRAME_MARK));
        match unframe(&framed) {
            Frame::Verified(p) => assert_eq!(p, payload),
            _ => panic!("fresh frame must verify"),
        }
        // Any single-byte flip in the payload breaks the CRC.
        let garbled = framed.replace("s7", "s8");
        assert!(matches!(unframe(&garbled), Frame::Corrupt));
        // A truncated frame (torn append) fails the length check.
        let torn = &framed[..framed.len() - 4];
        assert!(matches!(unframe(torn), Frame::Corrupt));
        // Lines not starting with the mark are legacy bare records.
        assert!(matches!(unframe(payload), Frame::Bare(_)));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_records_mixes_framed_and_bare() {
        let mut doc = String::new();
        doc.push_str(&frame_record("{\"a\":1}"));
        doc.push('\n');
        doc.push_str("{\"a\":2}\n"); // legacy bare line
        let mut bad = frame_record("{\"a\":3}");
        bad.truncate(bad.len() - 2); // garbled interior frame
        doc.push_str(&bad);
        doc.push('\n');
        doc.push_str("plain garbage\n");
        doc.push_str(&frame_record("{\"a\":4}"));
        doc.push('\n');
        let s = scan_records(&doc);
        let vals: Vec<u64> = s
            .values
            .iter()
            .map(|(_, v)| get_u64(v, "a").unwrap())
            .collect();
        assert_eq!(vals, [1, 2, 4]);
        assert_eq!(s.corrupt_frames, 1);
        assert_eq!(s.skipped, 1);
        assert_eq!(s.damaged_lines.len(), 2);
        assert!(!s.torn_tail);
    }

    #[test]
    fn scan_records_torn_framed_tail() {
        let mut doc = format!("{}\n", frame_record("{\"a\":1}"));
        let tail = frame_record("{\"a\":2}");
        doc.push_str(&tail[..tail.len() - 3]); // killed mid-append
        let s = scan_records(&doc);
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.corrupt_frames, 0);
        assert_eq!(s.skipped, 0);
        assert!(s.torn_tail);
        assert!(s.damaged_lines.is_empty());
    }

    #[test]
    fn scan_records_empty_and_blank() {
        let s = scan_records("");
        assert_eq!(s, RecordScan::default());
        let s = scan_records("\n\n");
        assert_eq!(s, RecordScan::default());
    }

    #[test]
    fn empty_and_blank_lines_ignored() {
        let s = scan_lines("\n\n{\"a\":1}\n\n");
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
    }
}
