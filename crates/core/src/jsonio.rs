//! Shared hand-rolled JSON plumbing for the orchestration layer.
//!
//! The value tree, parser, and writer live in [`icn_cwg::jsonio`] (the
//! lowest crate that needs them); this module re-exports that surface and
//! centralizes the helpers that used to be copy-pasted across
//! `json.rs`, `checkpoint.rs`, `forensics/incident.rs`, and `faults.rs`:
//! typed field accessors with uniform error messages, exact `f64`
//! bit-pattern transport, scalar formatting for the flat summary export,
//! and a JSON-lines scanner that understands torn final lines (the
//! signature of an interrupted appender). The campaign server reuses all
//! of it instead of growing a fourth copy.

pub use icn_cwg::jsonio::{obj, parse, u64_arr, Json, ParseError};

/// A parse error with no meaningful offset (field-level validation).
pub fn bad(message: &str) -> ParseError {
    ParseError {
        offset: 0,
        message: message.to_string(),
    }
}

/// Required object field.
pub fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ParseError> {
    v.get(key).ok_or_else(|| bad(&format!("missing `{key}`")))
}

/// Required `u64` field.
pub fn get_u64(v: &Json, key: &str) -> Result<u64, ParseError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| bad(&format!("`{key}` must be an unsigned integer")))
}

/// Required numeric field (integers widen).
pub fn get_f64(v: &Json, key: &str) -> Result<f64, ParseError> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| bad(&format!("`{key}` must be a number")))
}

/// Required boolean field.
pub fn get_bool(v: &Json, key: &str) -> Result<bool, ParseError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| bad(&format!("`{key}` must be a bool")))
}

/// Required string field.
pub fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ParseError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| bad(&format!("`{key}` must be a string")))
}

/// Required array-of-`u64` field.
pub fn get_u64_vec(v: &Json, key: &str) -> Result<Vec<u64>, ParseError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| bad(&format!("`{key}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| bad(&format!("`{key}` holds a non-u64 element")))
        })
        .collect()
}

/// An `f64` as its `u64` bit pattern, so NaN payloads and signed zeros
/// survive a round trip exactly.
pub fn f64_bits(v: f64) -> Json {
    Json::U64(v.to_bits())
}

/// Reads a field written by [`f64_bits`].
pub fn get_f64_bits(v: &Json, key: &str) -> Result<f64, ParseError> {
    Ok(f64::from_bits(get_u64(v, key)?))
}

/// Escapes a string for direct embedding between quotes in hand-written
/// JSON (the flat-summary writer path).
pub fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats a float for a human-oriented export: finite values print
/// shortest-round-trip, non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Outcome of scanning a JSON-lines document (one value per line).
///
/// Checkpoint and result-stream files are written by a single appender,
/// so the only legitimate corruption is a *torn final line*: the writer
/// was killed mid-`writeln!`. The scanner distinguishes that case (a
/// non-empty last line with no trailing newline that fails to parse)
/// from interior garbage, which is counted as skipped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineScan {
    /// Values that parsed, in file order, with their 0-based line number.
    pub values: Vec<(usize, Json)>,
    /// Interior lines that failed to parse (data loss worth surfacing).
    pub skipped: usize,
    /// Whether the document ends in a torn (partially written) line.
    pub torn_tail: bool,
}

/// Scans a JSON-lines document. Empty lines are ignored entirely.
pub fn scan_lines(text: &str) -> LineScan {
    let mut scan = LineScan::default();
    let ends_with_newline = text.is_empty() || text.ends_with('\n');
    let last_line = text.lines().filter(|l| !l.trim().is_empty()).count();
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        seen += 1;
        match parse(line) {
            Ok(v) => scan.values.push((lineno, v)),
            Err(_) => {
                if seen == last_line && !ends_with_newline {
                    scan.torn_tail = true;
                } else {
                    scan.skipped += 1;
                }
            }
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_report_missing_and_mistyped() {
        let v = parse("{\"n\": 3, \"s\": \"x\", \"b\": true, \"f\": 1.5}").unwrap();
        assert_eq!(get_u64(&v, "n").unwrap(), 3);
        assert_eq!(get_str(&v, "s").unwrap(), "x");
        assert!(get_bool(&v, "b").unwrap());
        assert_eq!(get_f64(&v, "f").unwrap(), 1.5);
        assert!(get(&v, "missing").is_err());
        assert!(get_u64(&v, "s").is_err());
    }

    #[test]
    fn f64_bits_round_trips_nan_and_negative_zero() {
        for x in [-0.0f64, f64::NAN, 1.5, f64::INFINITY] {
            let v = obj(vec![("x", f64_bits(x))]);
            let back = get_f64_bits(&v, "x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn esc_and_num() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn scan_clean_document() {
        let s = scan_lines("{\"a\":1}\n{\"a\":2}\n");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
    }

    #[test]
    fn scan_counts_interior_garbage() {
        let s = scan_lines("{\"a\":1}\nnot json\n{\"a\":2}\n");
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.skipped, 1);
        assert!(!s.torn_tail);
        // Line numbers point at the surviving lines.
        assert_eq!(s.values[0].0, 0);
        assert_eq!(s.values[1].0, 2);
    }

    #[test]
    fn scan_tolerates_torn_tail() {
        let s = scan_lines("{\"a\":1}\n{\"a\":2,\"tr");
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.skipped, 0);
        assert!(s.torn_tail);
    }

    #[test]
    fn torn_tail_requires_missing_newline() {
        // A complete (newline-terminated) bad line is interior garbage,
        // not a torn tail, even in final position.
        let s = scan_lines("{\"a\":1}\ngarbage\n");
        assert_eq!(s.skipped, 1);
        assert!(!s.torn_tail);
    }

    #[test]
    fn empty_and_blank_lines_ignored() {
        let s = scan_lines("\n\n{\"a\":1}\n\n");
        assert_eq!(s.values.len(), 1);
        assert_eq!(s.skipped, 0);
        assert!(!s.torn_tail);
    }
}
