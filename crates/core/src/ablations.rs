//! Ablations over the reproduction's own design choices.
//!
//! The paper fixes two recovery-router parameters without exploring them:
//! the detection cadence (50 cycles) and which deadlock-set message the
//! recovery removes. Both matter to anyone building a recovery-based
//! router, so the harness exposes them as ablation experiments:
//!
//! * [`detection_interval`] — how stale detection can get before the
//!   network pays for it in latency and re-formed deadlocks.
//! * [`victim_policy`] — removing the oldest vs the youngest deadlock-set
//!   message (Disha's token arbitration is age-agnostic).

use crate::experiments::{Experiment, Scale};
use crate::spec::{RecoveryPolicy, RoutingSpec};
use crate::RunConfig;

fn base(scale: Scale) -> RunConfig {
    let mut c = match scale {
        Scale::Paper => RunConfig::paper_default(),
        Scale::Small => RunConfig::small_default(),
    };
    // A configuration where deadlocks are frequent enough to measure:
    // TFAR with one VC just past saturation.
    c.routing = RoutingSpec::Tfar;
    c.sim.vcs_per_channel = 1;
    c.load = 0.6;
    c
}

/// Sweeps the deadlock-detection interval.
pub fn detection_interval(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    for (i, interval) in [25u64, 50, 100, 200, 400].into_iter().enumerate() {
        let mut c = base(scale);
        c.detection_interval = interval;
        c.seed = c.seed.wrapping_add(i as u64 * 0x9e37_79b9);
        configs.push(c);
    }
    Experiment {
        id: "ablate-interval",
        title: "Ablation: deadlock-detection interval (TFAR, 1 VC, load 0.6)",
        configs,
    }
}

/// Compares recovery-victim selection policies.
pub fn victim_policy(scale: Scale) -> Experiment {
    let mut configs = Vec::new();
    for (i, policy) in [RecoveryPolicy::RemoveOldest, RecoveryPolicy::RemoveYoungest]
        .into_iter()
        .enumerate()
    {
        for (j, load) in [0.4f64, 0.6, 1.0].into_iter().enumerate() {
            let mut c = base(scale);
            c.recovery = policy;
            c.load = load;
            c.seed = c.seed.wrapping_add((i * 8 + j) as u64 * 0x9e37_79b9);
            configs.push(c);
        }
    }
    Experiment {
        id: "ablate-victim",
        title: "Ablation: recovery victim selection (oldest vs youngest)",
        configs,
    }
}

/// All ablations.
pub fn all(scale: Scale) -> Vec<Experiment> {
    vec![detection_interval(scale), victim_policy(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    #[test]
    fn ablations_have_points() {
        for exp in all(Scale::Small) {
            assert!(exp.configs.len() >= 2, "{} too small", exp.id);
            for c in &exp.configs {
                c.sim.validate();
            }
        }
    }

    #[test]
    fn victim_policy_changes_outcomes_deterministically() {
        let mut exp = victim_policy(Scale::Small);
        for c in &mut exp.configs {
            c.warmup = 500;
            c.measure = 2_000;
        }
        // Same seed + same policy => same result; different policy with
        // the same seed is allowed to differ (and usually does).
        let r1 = sweep(&exp.configs);
        let r2 = sweep(&exp.configs);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.deadlocks, b.deadlocks);
        }
    }

    #[test]
    fn interval_ablation_recovers_at_every_cadence() {
        let mut exp = detection_interval(Scale::Small);
        for c in &mut exp.configs {
            c.warmup = 500;
            c.measure = 2_500;
        }
        let results = sweep(&exp.configs);
        for (c, r) in exp.configs.iter().zip(&results) {
            assert!(
                r.delivered > 0,
                "interval {} delivered nothing",
                c.detection_interval
            );
        }
    }
}
