//! Flit-level interconnection-network simulator.
//!
//! This is the FlexSim-equivalent substrate of the reproduction: a
//! cycle-driven, flit-level model of a k-ary n-cube router network with
//!
//! * per-physical-channel **virtual channels** with edge buffers of
//!   configurable depth at the receiving router — depth 2 gives classic
//!   wormhole, depth ≥ message length gives virtual cut-through, anything
//!   between is buffered wormhole (§3.4);
//! * **exclusive VC ownership** from header acquisition to tail release,
//!   which is the resource discipline that makes channel-wait-for-graph
//!   knots meaningful;
//! * one-flit-per-cycle physical links, shared among their VCs by
//!   round-robin arbitration;
//! * one injection and one reception channel per node (§3);
//! * pluggable routing relations from `icn-routing`, consulted both for VC
//!   allocation and for the wait-for arcs of blocked headers;
//! * **recovery drains**: a message named as a deadlock victim is removed
//!   flit-by-flit through a synthesized Disha-style recovery lane;
//! * link-fault injection (the Figure 2 discussion) for tests and
//!   extension experiments.
//!
//! The engine is deterministic: identical call sequences produce identical
//! states. Traffic generation and deadlock detection are deliberately kept
//! *outside* (in `icn-traffic` / `icn-cwg`, orchestrated by `flexsim`) so
//! tests can build exact scenarios — including the paper's Figures 1–4 —
//! by enqueueing specific messages and stepping.
//!
//! # Example: wedging a unidirectional ring
//!
//! ```
//! use icn_sim::{Network, SimConfig};
//! use icn_routing::Dor;
//! use icn_topology::{KAryNCube, NodeId};
//!
//! let mut net = Network::new(
//!     KAryNCube::torus(4, 1, false),
//!     Box::new(Dor),
//!     SimConfig { vcs_per_channel: 1, buffer_depth: 2, msg_len: 8 },
//! );
//! for i in 0..4 {
//!     net.enqueue(NodeId(i), NodeId((i + 2) % 4));
//! }
//! for _ in 0..30 {
//!     net.step();
//! }
//! assert_eq!(net.blocked_count(), 4); // the classic ring deadlock
//!
//! // Disha-style recovery: drain one victim, the rest unblock.
//! let victim = net.active_ids()[0];
//! assert!(net.start_recovery(victim));
//! ```

mod config;
mod events;
pub mod faults;
mod message;
mod network;
mod snapshot;
mod trace;

pub use config::SimConfig;
pub use events::{DeliveredMsg, StepEvents};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use message::{MessageId, MessageInfo, MsgPhase};
pub use network::Network;
pub use snapshot::{
    ArenaMsg, SnapshotArena, SnapshotFragment, SnapshotMsg, WaitSnapshot, WaitUpdate,
};
pub use trace::TraceEvent;
