//! Wait-for snapshot extraction for true deadlock detection.
//!
//! The detector (`icn-cwg`, driven by `flexsim`) works on a snapshot of
//! *who owns what* and *who waits for what*. Two subtleties make the
//! snapshot faithful to the knot theory:
//!
//! * **Settled chains.** A blocked wormhole message still *compacts*: its
//!   flits keep advancing into the buffers of its chain suffix, releasing
//!   tail VCs as they empty. A VC that will be released this way is not a
//!   permanently held resource, so it must not appear in the CWG — with
//!   deep buffers (virtual cut-through) a blocked message eventually holds
//!   only the buffers around its header, which is precisely why the paper
//!   finds cut-through networks far less deadlock-prone (§3.4). For each
//!   blocked message we therefore report only the chain suffix that will
//!   still hold flits after compaction finishes.
//! * **Reception vertices.** A header waiting for a busy reception channel
//!   is waiting on a real resource, but one that always drains; reception
//!   channels appear as vertices owned by the ejecting message (a sink in
//!   the CWG), so such waits can never close a knot.
//!
//! Vertex numbering: VC `v` of channel `c` is vertex `c * V + v`; the
//! reception channel of node `n` is vertex `num_channels * V + n`.
//!
//! Snapshots are taken every detection epoch for the whole run, so the hot
//! entry point is [`Network::wait_snapshot_into`], which refills a
//! caller-owned [`SnapshotArena`] without allocating; the Vec-per-message
//! [`WaitSnapshot`] remains as a convenience wrapper for tests and tools.

use crate::message::MsgPhase;
use crate::network::{compute_candidates, ctx_of, Network, NO_OWNER};
use crate::MessageId;
use icn_routing::Candidate;
use icn_topology::{ChannelId, ShardPlan};

/// One drained wait-state change for a message id: its fresh blocked
/// record, or the fact that it is no longer blocked (delivered, moving,
/// recovering, or dropped). Produced by [`Network::drain_wait_updates`].
#[derive(Clone, Copy, Debug)]
pub enum WaitUpdate<'a> {
    /// The message is blocked with this `(settled chain, requests)` record
    /// (requests may be empty for a fault-stranded message).
    Blocked {
        /// Settled chain, acquisition order (tail-most first).
        chain: &'a [u32],
        /// Blocked request targets.
        requests: &'a [u32],
    },
    /// The message is not (or no longer) blocked.
    Clear,
}

/// One message's contribution to the wait-for snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotMsg {
    pub id: MessageId,
    /// Vertices this message will keep holding (acquisition order,
    /// tail-most first; includes the reception vertex while ejecting).
    pub chain: Vec<u32>,
    /// Vertices this message is blocked waiting for (empty if not blocked).
    pub requests: Vec<u32>,
}

/// A complete wait-for snapshot of the network at one instant.
#[derive(Clone, Debug)]
pub struct WaitSnapshot {
    /// Total vertex count (VCs plus reception channels).
    pub num_vertices: usize,
    /// Per-message ownership and requests.
    pub messages: Vec<SnapshotMsg>,
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
}

/// Per-message record inside a [`SnapshotArena`]: ranges into the shared
/// vertex pool (chain first, then requests, contiguously).
#[derive(Clone, Copy, Debug)]
struct ArenaRecord {
    id: MessageId,
    start: u32,
    chain_len: u32,
    req_len: u32,
}

/// Borrowed view of one message in a [`SnapshotArena`].
#[derive(Clone, Copy, Debug)]
pub struct ArenaMsg<'a> {
    /// Message identifier.
    pub id: MessageId,
    /// Vertices this message will keep holding (acquisition order).
    pub chain: &'a [u32],
    /// Vertices this message is blocked waiting for (empty if moving).
    pub requests: &'a [u32],
}

/// Reusable, flat wait-for snapshot storage.
///
/// One arena is allocated per run and refilled in place by
/// [`Network::wait_snapshot_into`] each detection epoch: a single vertex
/// pool plus per-message range records, so the steady-state snapshot path
/// performs no heap allocation once capacities have warmed up.
///
/// During the fill the arena also computes a 64-bit **fingerprint** of the
/// blocked wait-state (an order-independent hash over each blocked
/// message's `(id, settled chain, requests)`). Knots are closed exclusively
/// by blocked messages — moving chains are CWG sinks — so two epochs with
/// equal blocked wait-states have identical knot analyses; the runner uses
/// this to skip re-analysis entirely when nothing blocked has changed.
#[derive(Clone, Debug, Default)]
pub struct SnapshotArena {
    num_vertices: usize,
    cycle: u64,
    pool: Vec<u32>,
    records: Vec<ArenaRecord>,
    blocked: usize,
    fingerprint: u64,
    cand_buf: Vec<Candidate>,
    /// Scratch: active slots in id (age) order — the engine's active list
    /// is unordered (swap-remove), and snapshot/graph/analysis output must
    /// stay independent of that internal ordering.
    order_buf: Vec<u32>,
}

/// FNV-1a over a word stream.
#[inline]
fn fnv1a_words(mut h: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates per-message hashes before the
/// commutative combine.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SnapshotArena {
    /// An empty arena; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total vertex count (VCs plus reception channels) of the last fill.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Cycle at which the last fill was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of messages captured by the last fill.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the last fill captured no messages.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of blocked messages captured by the last fill.
    pub fn num_blocked(&self) -> usize {
        self.blocked
    }

    /// Order-independent 64-bit hash of the blocked wait-state: equal
    /// fingerprints (collisions aside) mean an identical set of blocked
    /// `(id, settled chain, requests)` triples and therefore an identical
    /// knot analysis.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Iterates the captured messages.
    pub fn messages(&self) -> impl Iterator<Item = ArenaMsg<'_>> {
        self.records.iter().map(move |r| {
            let s = r.start as usize;
            let c = s + r.chain_len as usize;
            ArenaMsg {
                id: r.id,
                chain: &self.pool[s..c],
                requests: &self.pool[c..c + r.req_len as usize],
            }
        })
    }

    /// Copies the arena out into the Vec-per-message snapshot form.
    pub fn to_snapshot(&self) -> WaitSnapshot {
        WaitSnapshot {
            num_vertices: self.num_vertices,
            messages: self
                .messages()
                .map(|m| SnapshotMsg {
                    id: m.id,
                    chain: m.chain.to_vec(),
                    requests: m.requests.to_vec(),
                })
                .collect(),
            cycle: self.cycle,
        }
    }

    fn clear(&mut self, num_vertices: usize, cycle: u64) {
        self.num_vertices = num_vertices;
        self.cycle = cycle;
        self.pool.clear();
        self.records.clear();
        self.blocked = 0;
        self.fingerprint = 0;
    }

    /// Rebuilds the arena from per-shard fragments, exactly as if
    /// [`Network::wait_snapshot_into`] had captured the whole network
    /// serially.
    ///
    /// Fragments partition the messages by the shard owning each header's
    /// router, and every fragment is internally id-sorted, so a k-way merge
    /// by id restores the global capture order while each record's pool
    /// slice is copied verbatim (rebased to the arena pool). The blocked
    /// fingerprint is a commutative sum of per-message hashes, so the
    /// fragments' partial sums combine in any order; the population fold —
    /// applied exactly once here — then matches the serial path bit for
    /// bit.
    pub fn assemble(&mut self, frags: &[SnapshotFragment]) {
        assert!(!frags.is_empty(), "assemble needs at least one fragment");
        debug_assert!(
            frags
                .iter()
                .all(|f| f.num_vertices == frags[0].num_vertices && f.cycle == frags[0].cycle),
            "fragments from different captures"
        );
        self.clear(frags[0].num_vertices, frags[0].cycle);
        let mut heads = vec![0usize; frags.len()];
        loop {
            let mut best: Option<(MessageId, usize)> = None;
            for (f, frag) in frags.iter().enumerate() {
                if let Some(r) = frag.records.get(heads[f]) {
                    if best.is_none_or(|(id, _)| r.id < id) {
                        best = Some((r.id, f));
                    }
                }
            }
            let Some((_, f)) = best else { break };
            let r = frags[f].records[heads[f]];
            heads[f] += 1;
            let s = r.start as usize;
            let e = s + (r.chain_len + r.req_len) as usize;
            let start = self.pool.len() as u32;
            self.pool.extend_from_slice(&frags[f].pool[s..e]);
            self.records.push(ArenaRecord { start, ..r });
        }
        for frag in frags {
            self.blocked += frag.blocked;
            self.fingerprint = self.fingerprint.wrapping_add(frag.partial_fingerprint);
        }
        self.fingerprint ^=
            mix((self.blocked as u64) << 32 ^ self.num_vertices as u64 ^ 0x9e37_79b9_7f4a_7c15);
    }
}

/// One shard's slice of a wait-for snapshot: the messages whose header
/// sits at a router owned by that shard, in id order, with the same
/// settled-chain/request semantics as the full arena.
///
/// Fragments are filled independently — [`Network::wait_snapshot_fragment`]
/// takes `&Network` — so the detection loop can capture all shards on
/// scoped threads and then stitch them back together with
/// [`SnapshotArena::assemble`]. `partial_fingerprint` is the shard's sum of
/// per-blocked-message hashes *without* the population fold, which only the
/// assembled arena can apply.
#[derive(Clone, Debug, Default)]
pub struct SnapshotFragment {
    num_vertices: usize,
    cycle: u64,
    shard: usize,
    pool: Vec<u32>,
    records: Vec<ArenaRecord>,
    blocked: usize,
    partial_fingerprint: u64,
    cand_buf: Vec<Candidate>,
    order_buf: Vec<u32>,
}

impl SnapshotFragment {
    /// An empty fragment; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages this fragment captured on its last fill.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the last fill captured no messages for this shard.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of blocked messages this fragment captured on its last fill.
    pub fn num_blocked(&self) -> usize {
        self.blocked
    }

    /// The shard this fragment was last filled for.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl Network {
    /// Vertex id of reception-channel slot `slot` at `node`.
    pub fn reception_vertex(&self, node: icn_topology::NodeId, slot: usize) -> u32 {
        debug_assert!(slot < self.reception_per_node);
        (self.topo.num_channels() * self.vcs_per() + node.idx() * self.reception_per_node + slot)
            as u32
    }

    /// Refills `arena` with a wait-for snapshot of the current state,
    /// reusing its storage (no allocation once capacities have warmed up).
    pub fn wait_snapshot_into(&self, arena: &mut SnapshotArena) {
        arena.clear(self.wait_vertex_count(), self.cycle);
        let mut cand_buf = std::mem::take(&mut arena.cand_buf);
        let mut order_buf = std::mem::take(&mut arena.order_buf);
        let (blocked, partial) = self.fill_wait_state(
            None,
            &mut arena.pool,
            &mut arena.records,
            &mut cand_buf,
            &mut order_buf,
        );
        arena.blocked = blocked;
        // Fold in the population so e.g. "no blocked messages" epochs at
        // different vertex counts never alias.
        arena.fingerprint = partial
            ^ mix((blocked as u64) << 32 ^ arena.num_vertices as u64 ^ 0x9e37_79b9_7f4a_7c15);
        arena.cand_buf = cand_buf;
        arena.order_buf = order_buf;
    }

    /// Refills `frag` with `shard`'s slice of the wait-for snapshot: the
    /// messages whose header sits at a router owned by `shard` under the
    /// network's current [`ShardPlan`].
    ///
    /// Takes `&self`, so all shards can be captured concurrently on scoped
    /// threads; [`SnapshotArena::assemble`] then reproduces the serial
    /// [`wait_snapshot_into`](Self::wait_snapshot_into) result exactly.
    /// Panics if no shard plan is installed (see `set_shards`).
    pub fn wait_snapshot_fragment(&self, shard: usize, frag: &mut SnapshotFragment) {
        let plan = self
            .shard_plan()
            .expect("wait_snapshot_fragment requires a shard plan");
        frag.num_vertices = self.wait_vertex_count();
        frag.cycle = self.cycle;
        frag.shard = shard;
        frag.pool.clear();
        frag.records.clear();
        let (blocked, partial) = self.fill_wait_state(
            Some((shard, plan)),
            &mut frag.pool,
            &mut frag.records,
            &mut frag.cand_buf,
            &mut frag.order_buf,
        );
        frag.blocked = blocked;
        frag.partial_fingerprint = partial;
    }

    /// Total CWG vertex count (VCs plus reception channels).
    pub fn wait_vertex_count(&self) -> usize {
        self.topo.num_channels() * self.vcs_per() + self.topo.num_nodes() * self.reception_per_node
    }

    /// Shared capture body for the serial arena fill and the per-shard
    /// fragment fill. Appends each captured message's chain+requests to
    /// `pool` with a matching record, in ascending id order; when `shard`
    /// is `Some`, only messages whose header router belongs to that shard
    /// are captured. Returns `(blocked count, partial fingerprint)` — the
    /// commutative per-message hash sum *without* the population fold.
    fn fill_wait_state(
        &self,
        shard: Option<(usize, &ShardPlan)>,
        pool: &mut Vec<u32>,
        records: &mut Vec<ArenaRecord>,
        cand_buf: &mut Vec<Candidate>,
        order_buf: &mut Vec<u32>,
    ) -> (usize, u64) {
        let vcs_per = self.vcs_per();
        order_buf.clear();
        match shard {
            None => order_buf.extend_from_slice(&self.active),
            Some((s, plan)) => {
                // A message belongs to the shard owning its header's
                // router — the same ownership rule the sharded scheduler
                // allocates by. Chainless (fully draining) messages own no
                // CWG vertex and are skipped in the main loop anyway.
                order_buf.extend(self.active.iter().copied().filter(|&slot| {
                    self.messages[slot as usize]
                        .as_ref()
                        .expect("active slot")
                        .chain
                        .back()
                        .is_some_and(|&vc| {
                            plan.shard_of_chan_dst(ChannelId(vc / vcs_per as u32)) == s
                        })
                }));
            }
        }
        order_buf.sort_unstable_by_key(|&s| self.slot_id[s as usize]);

        let mut blocked_count = 0usize;
        let mut partial = 0u64;
        for &slot in order_buf.iter() {
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            if msg.chain.is_empty() {
                // A recovering message can momentarily hold nothing while
                // its last flits drain; it owns no CWG vertex.
                continue;
            }

            let blocked = msg.phase == MsgPhase::Routing && msg.blocked;
            let start = pool.len() as u32;

            // Settled chain: the suffix still holding flits once compaction
            // finishes (blocked messages only; draining messages are CWG
            // sinks either way, so their full chain is fine and cheaper).
            let chain_len = if blocked {
                self.blocked_wait_record(slot, cand_buf, pool)
                    .expect("routing+blocked message has a wait record") as u32
            } else {
                pool.extend(msg.chain.iter().copied());
                if msg.phase == MsgPhase::Ejecting {
                    pool.push(self.reception_vertex(msg.dst, msg.reception_slot as usize));
                }
                pool.len() as u32 - start
            };
            let req_len = pool.len() as u32 - start - chain_len;

            records.push(ArenaRecord {
                id: msg.id,
                start,
                chain_len,
                req_len,
            });

            if blocked {
                blocked_count += 1;
                // Per-message FNV-1a over (id, chain, separator, requests),
                // finalized and combined commutatively so the fingerprint
                // is independent of `active` iteration order.
                let s = start as usize;
                let c = s + chain_len as usize;
                let mut h = fnv1a_words(0xcbf2_9ce4_8422_2325, [msg.id]);
                h = fnv1a_words(h, pool[s..c].iter().map(|&v| v as u64));
                h = fnv1a_words(h, [u64::MAX]);
                h = fnv1a_words(h, pool[c..c + req_len as usize].iter().map(|&v| v as u64));
                partial = partial.wrapping_add(mix(h));
            }
        }
        (blocked_count, partial)
    }

    /// Appends the wait record of the (routing, blocked) message in `slot`
    /// to `out` — settled chain first, then request targets — and returns
    /// the chain length, or `None` when the message is not blocked (or
    /// holds nothing). Shared by the snapshot fill and the incremental
    /// drain, so both extract byte-identical records by construction.
    fn blocked_wait_record(
        &self,
        slot: u32,
        cand_buf: &mut Vec<Candidate>,
        out: &mut Vec<u32>,
    ) -> Option<usize> {
        let msg = self.messages[slot as usize].as_ref().expect("live slot");
        if msg.chain.is_empty() || msg.phase != MsgPhase::Routing || !msg.blocked {
            return None;
        }
        let vcs_per = self.vcs_per();
        let start = out.len();
        let remaining = (msg.len - msg.delivered) as usize;
        let keep = remaining
            .div_ceil(self.cfg.buffer_depth)
            .min(msg.chain.len());
        out.extend(msg.chain.iter().skip(msg.chain.len() - keep).copied());
        let chain_len = out.len() - start;
        let &head_vc = msg.chain.back().unwrap();
        let here = self.topo.channel(ChannelId(head_vc / vcs_per as u32)).dst;
        if here == msg.dst {
            // Waiting on the destination's (all busy) reception channels.
            out.extend((0..self.reception_per_node).map(|r| self.reception_vertex(here, r)));
        } else {
            compute_candidates(
                &self.topo,
                &*self.routing,
                vcs_per,
                &self.failed,
                &ctx_of(msg, here),
                cand_buf,
            );
            for cand in cand_buf.iter() {
                let base = cand.channel.idx() * vcs_per;
                out.extend(cand.vcs.iter().map(|v| (base + v) as u32));
            }
        }
        Some(chain_len)
    }

    /// Turns on wait-state event tracking: from now on every transition
    /// that can change a blocked message's `(settled chain, requests)`
    /// record marks the message dirty, and
    /// [`drain_wait_updates`](Self::drain_wait_updates) replays the
    /// net effect. The currently blocked population (if any) is marked
    /// wholesale so the first drain starts from ground truth.
    pub fn enable_wait_tracking(&mut self) {
        self.wait_tracking = true;
        self.wait_dirty_all = true;
    }

    /// The cycle at which `id` last became blocked, if it is currently
    /// blocked.
    pub fn blocked_since(&self, id: MessageId) -> Option<u64> {
        let slot = self.id_map.get(id)?;
        self.messages[slot as usize]
            .as_ref()
            .expect("live slot")
            .blocked_since
    }

    /// Replays the net effect of every wait-state change since the last
    /// drain, in ascending id order: for each possibly-changed message the
    /// sink receives either its current `(settled chain, requests)` record
    /// (same extraction as [`wait_snapshot_into`](Self::wait_snapshot_into))
    /// or [`WaitUpdate::Clear`]. Marking is conservative — a sink must
    /// treat a re-sent unchanged record or a `Clear` for an untracked id
    /// as a no-op (both are, for [`icn_cwg::DynamicWaitGraph`]'s
    /// stage/commit API).
    ///
    /// Sharded runs need no special handling: allocation (the only phase
    /// that toggles `blocked`) runs serially at the cycle barrier even when
    /// transfers are sharded, so one global dirty list sees every event in
    /// canonical order.
    pub fn drain_wait_updates(&mut self, mut sink: impl FnMut(MessageId, WaitUpdate<'_>)) {
        debug_assert!(self.wait_tracking, "drain without enable_wait_tracking");
        if self.wait_dirty_all {
            self.wait_dirty_all = false;
            // Re-extract every active message; ids that left the network
            // keep their individual dirty marks from `finish_slot`.
            let slot_id = &self.slot_id;
            self.wait_dirty
                .extend(self.active.iter().map(|&s| slot_id[s as usize]));
        }
        if self.wait_dirty.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.wait_dirty);
        let mut cand_buf = std::mem::take(&mut self.wait_cand);
        let mut out = std::mem::take(&mut self.wait_buf);
        dirty.sort_unstable();
        dirty.dedup();
        for &id in &dirty {
            match self.id_map.get(id) {
                None => sink(id, WaitUpdate::Clear),
                Some(slot) => {
                    out.clear();
                    match self.blocked_wait_record(slot, &mut cand_buf, &mut out) {
                        Some(chain_len) => sink(
                            id,
                            WaitUpdate::Blocked {
                                chain: &out[..chain_len],
                                requests: &out[chain_len..],
                            },
                        ),
                        None => sink(id, WaitUpdate::Clear),
                    }
                }
            }
        }
        dirty.clear();
        self.wait_dirty = dirty;
        self.wait_cand = cand_buf;
        self.wait_buf = out;
    }

    /// Takes a wait-for snapshot of the current state.
    ///
    /// Convenience wrapper over [`wait_snapshot_into`](Self::wait_snapshot_into)
    /// that allocates a fresh Vec-per-message snapshot; the detection loop
    /// uses the arena form directly.
    pub fn wait_snapshot(&self) -> WaitSnapshot {
        let mut arena = SnapshotArena::new();
        self.wait_snapshot_into(&mut arena);
        arena.to_snapshot()
    }

    /// Whether any VC of `ch` is currently owned (test helper).
    pub fn channel_busy(&self, ch: ChannelId) -> bool {
        let base = ch.idx() * self.vcs_per();
        (0..self.vcs_per()).any(|v| self.vc_owner[base + v] != NO_OWNER)
    }
}
