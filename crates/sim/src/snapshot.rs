//! Wait-for snapshot extraction for true deadlock detection.
//!
//! The detector (`icn-cwg`, driven by `flexsim`) works on a snapshot of
//! *who owns what* and *who waits for what*. Two subtleties make the
//! snapshot faithful to the knot theory:
//!
//! * **Settled chains.** A blocked wormhole message still *compacts*: its
//!   flits keep advancing into the buffers of its chain suffix, releasing
//!   tail VCs as they empty. A VC that will be released this way is not a
//!   permanently held resource, so it must not appear in the CWG — with
//!   deep buffers (virtual cut-through) a blocked message eventually holds
//!   only the buffers around its header, which is precisely why the paper
//!   finds cut-through networks far less deadlock-prone (§3.4). For each
//!   blocked message we therefore report only the chain suffix that will
//!   still hold flits after compaction finishes.
//! * **Reception vertices.** A header waiting for a busy reception channel
//!   is waiting on a real resource, but one that always drains; reception
//!   channels appear as vertices owned by the ejecting message (a sink in
//!   the CWG), so such waits can never close a knot.
//!
//! Vertex numbering: VC `v` of channel `c` is vertex `c * V + v`; the
//! reception channel of node `n` is vertex `num_channels * V + n`.

use crate::message::MsgPhase;
use crate::network::{compute_candidates, ctx_of, Network, NO_OWNER};
use crate::MessageId;
use icn_topology::ChannelId;

/// One message's contribution to the wait-for snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotMsg {
    pub id: MessageId,
    /// Vertices this message will keep holding (acquisition order,
    /// tail-most first; includes the reception vertex while ejecting).
    pub chain: Vec<u32>,
    /// Vertices this message is blocked waiting for (empty if not blocked).
    pub requests: Vec<u32>,
}

/// A complete wait-for snapshot of the network at one instant.
#[derive(Clone, Debug)]
pub struct WaitSnapshot {
    /// Total vertex count (VCs plus reception channels).
    pub num_vertices: usize,
    /// Per-message ownership and requests.
    pub messages: Vec<SnapshotMsg>,
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
}

impl Network {
    /// Vertex id of reception-channel slot `slot` at `node`.
    pub fn reception_vertex(&self, node: icn_topology::NodeId, slot: usize) -> u32 {
        debug_assert!(slot < self.reception_per_node);
        (self.topo.num_channels() * self.vcs_per()
            + node.idx() * self.reception_per_node
            + slot) as u32
    }

    /// Takes a wait-for snapshot of the current state.
    pub fn wait_snapshot(&self) -> WaitSnapshot {
        let vcs_per = self.vcs_per();
        let num_vertices = self.topo.num_channels() * vcs_per
            + self.topo.num_nodes() * self.reception_per_node;
        let mut messages = Vec::with_capacity(self.active.len());
        let mut cand_buf = Vec::new();

        for &slot in &self.active {
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            if msg.chain.is_empty() {
                // A recovering message can momentarily hold nothing while
                // its last flits drain; it owns no CWG vertex.
                continue;
            }

            let blocked = msg.phase == MsgPhase::Routing && msg.blocked;

            // Settled chain: the suffix still holding flits once compaction
            // finishes (blocked messages only; draining messages are CWG
            // sinks either way, so their full chain is fine and cheaper).
            let chain: Vec<u32> = if blocked {
                let remaining = (msg.len - msg.delivered) as usize;
                let depth = self.cfg.buffer_depth;
                let keep = remaining.div_ceil(depth).min(msg.chain.len());
                msg.chain.iter().skip(msg.chain.len() - keep).copied().collect()
            } else {
                let mut c: Vec<u32> = msg.chain.iter().copied().collect();
                if msg.phase == MsgPhase::Ejecting {
                    c.push(self.reception_vertex(msg.dst, msg.reception_slot as usize));
                }
                c
            };

            let requests = if blocked {
                let &head_vc = msg.chain.back().unwrap();
                let here = self
                    .topo
                    .channel(ChannelId(head_vc / vcs_per as u32))
                    .dst;
                if here == msg.dst {
                    // Waiting on the destination's (all busy) reception
                    // channels.
                    (0..self.reception_per_node)
                        .map(|r| self.reception_vertex(here, r))
                        .collect()
                } else {
                    compute_candidates(
                        &self.topo,
                        &*self.routing,
                        vcs_per,
                        &self.failed,
                        &ctx_of(msg, here),
                        &mut cand_buf,
                    );
                    let mut reqs = Vec::new();
                    for cand in &cand_buf {
                        let base = cand.channel.idx() * vcs_per;
                        for v in cand.vcs.iter() {
                            reqs.push((base + v) as u32);
                        }
                    }
                    reqs
                }
            } else {
                Vec::new()
            };

            messages.push(SnapshotMsg {
                id: msg.id,
                chain,
                requests,
            });
        }

        WaitSnapshot {
            num_vertices,
            messages,
            cycle: self.cycle,
        }
    }

    /// Whether any VC of `ch` is currently owned (test helper).
    pub fn channel_busy(&self, ch: ChannelId) -> bool {
        let base = ch.idx() * self.vcs_per();
        (0..self.vcs_per()).any(|v| self.vcs[base + v].owner != NO_OWNER)
    }
}
