//! Wait-for snapshot extraction for true deadlock detection.
//!
//! The detector (`icn-cwg`, driven by `flexsim`) works on a snapshot of
//! *who owns what* and *who waits for what*. Two subtleties make the
//! snapshot faithful to the knot theory:
//!
//! * **Settled chains.** A blocked wormhole message still *compacts*: its
//!   flits keep advancing into the buffers of its chain suffix, releasing
//!   tail VCs as they empty. A VC that will be released this way is not a
//!   permanently held resource, so it must not appear in the CWG — with
//!   deep buffers (virtual cut-through) a blocked message eventually holds
//!   only the buffers around its header, which is precisely why the paper
//!   finds cut-through networks far less deadlock-prone (§3.4). For each
//!   blocked message we therefore report only the chain suffix that will
//!   still hold flits after compaction finishes.
//! * **Reception vertices.** A header waiting for a busy reception channel
//!   is waiting on a real resource, but one that always drains; reception
//!   channels appear as vertices owned by the ejecting message (a sink in
//!   the CWG), so such waits can never close a knot.
//!
//! Vertex numbering: VC `v` of channel `c` is vertex `c * V + v`; the
//! reception channel of node `n` is vertex `num_channels * V + n`.
//!
//! Snapshots are taken every detection epoch for the whole run, so the hot
//! entry point is [`Network::wait_snapshot_into`], which refills a
//! caller-owned [`SnapshotArena`] without allocating; the Vec-per-message
//! [`WaitSnapshot`] remains as a convenience wrapper for tests and tools.

use crate::message::MsgPhase;
use crate::network::{compute_candidates, ctx_of, Network, NO_OWNER};
use crate::MessageId;
use icn_routing::Candidate;
use icn_topology::ChannelId;

/// One message's contribution to the wait-for snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotMsg {
    pub id: MessageId,
    /// Vertices this message will keep holding (acquisition order,
    /// tail-most first; includes the reception vertex while ejecting).
    pub chain: Vec<u32>,
    /// Vertices this message is blocked waiting for (empty if not blocked).
    pub requests: Vec<u32>,
}

/// A complete wait-for snapshot of the network at one instant.
#[derive(Clone, Debug)]
pub struct WaitSnapshot {
    /// Total vertex count (VCs plus reception channels).
    pub num_vertices: usize,
    /// Per-message ownership and requests.
    pub messages: Vec<SnapshotMsg>,
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
}

/// Per-message record inside a [`SnapshotArena`]: ranges into the shared
/// vertex pool (chain first, then requests, contiguously).
#[derive(Clone, Copy, Debug)]
struct ArenaRecord {
    id: MessageId,
    start: u32,
    chain_len: u32,
    req_len: u32,
}

/// Borrowed view of one message in a [`SnapshotArena`].
#[derive(Clone, Copy, Debug)]
pub struct ArenaMsg<'a> {
    /// Message identifier.
    pub id: MessageId,
    /// Vertices this message will keep holding (acquisition order).
    pub chain: &'a [u32],
    /// Vertices this message is blocked waiting for (empty if moving).
    pub requests: &'a [u32],
}

/// Reusable, flat wait-for snapshot storage.
///
/// One arena is allocated per run and refilled in place by
/// [`Network::wait_snapshot_into`] each detection epoch: a single vertex
/// pool plus per-message range records, so the steady-state snapshot path
/// performs no heap allocation once capacities have warmed up.
///
/// During the fill the arena also computes a 64-bit **fingerprint** of the
/// blocked wait-state (an order-independent hash over each blocked
/// message's `(id, settled chain, requests)`). Knots are closed exclusively
/// by blocked messages — moving chains are CWG sinks — so two epochs with
/// equal blocked wait-states have identical knot analyses; the runner uses
/// this to skip re-analysis entirely when nothing blocked has changed.
#[derive(Clone, Debug, Default)]
pub struct SnapshotArena {
    num_vertices: usize,
    cycle: u64,
    pool: Vec<u32>,
    records: Vec<ArenaRecord>,
    blocked: usize,
    fingerprint: u64,
    cand_buf: Vec<Candidate>,
    /// Scratch: active slots in id (age) order — the engine's active list
    /// is unordered (swap-remove), and snapshot/graph/analysis output must
    /// stay independent of that internal ordering.
    order_buf: Vec<u32>,
}

/// FNV-1a over a word stream.
#[inline]
fn fnv1a_words(mut h: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates per-message hashes before the
/// commutative combine.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SnapshotArena {
    /// An empty arena; capacities grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total vertex count (VCs plus reception channels) of the last fill.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Cycle at which the last fill was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of messages captured by the last fill.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the last fill captured no messages.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of blocked messages captured by the last fill.
    pub fn num_blocked(&self) -> usize {
        self.blocked
    }

    /// Order-independent 64-bit hash of the blocked wait-state: equal
    /// fingerprints (collisions aside) mean an identical set of blocked
    /// `(id, settled chain, requests)` triples and therefore an identical
    /// knot analysis.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Iterates the captured messages.
    pub fn messages(&self) -> impl Iterator<Item = ArenaMsg<'_>> {
        self.records.iter().map(move |r| {
            let s = r.start as usize;
            let c = s + r.chain_len as usize;
            ArenaMsg {
                id: r.id,
                chain: &self.pool[s..c],
                requests: &self.pool[c..c + r.req_len as usize],
            }
        })
    }

    /// Copies the arena out into the Vec-per-message snapshot form.
    pub fn to_snapshot(&self) -> WaitSnapshot {
        WaitSnapshot {
            num_vertices: self.num_vertices,
            messages: self
                .messages()
                .map(|m| SnapshotMsg {
                    id: m.id,
                    chain: m.chain.to_vec(),
                    requests: m.requests.to_vec(),
                })
                .collect(),
            cycle: self.cycle,
        }
    }

    fn clear(&mut self, num_vertices: usize, cycle: u64) {
        self.num_vertices = num_vertices;
        self.cycle = cycle;
        self.pool.clear();
        self.records.clear();
        self.blocked = 0;
        self.fingerprint = 0;
    }
}

impl Network {
    /// Vertex id of reception-channel slot `slot` at `node`.
    pub fn reception_vertex(&self, node: icn_topology::NodeId, slot: usize) -> u32 {
        debug_assert!(slot < self.reception_per_node);
        (self.topo.num_channels() * self.vcs_per() + node.idx() * self.reception_per_node + slot)
            as u32
    }

    /// Refills `arena` with a wait-for snapshot of the current state,
    /// reusing its storage (no allocation once capacities have warmed up).
    pub fn wait_snapshot_into(&self, arena: &mut SnapshotArena) {
        let vcs_per = self.vcs_per();
        let num_vertices =
            self.topo.num_channels() * vcs_per + self.topo.num_nodes() * self.reception_per_node;
        arena.clear(num_vertices, self.cycle);
        let mut cand_buf = std::mem::take(&mut arena.cand_buf);
        let mut order_buf = std::mem::take(&mut arena.order_buf);
        order_buf.clear();
        order_buf.extend_from_slice(&self.active);
        order_buf.sort_unstable_by_key(|&s| self.slot_id[s as usize]);

        for &slot in &order_buf {
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            if msg.chain.is_empty() {
                // A recovering message can momentarily hold nothing while
                // its last flits drain; it owns no CWG vertex.
                continue;
            }

            let blocked = msg.phase == MsgPhase::Routing && msg.blocked;
            let start = arena.pool.len() as u32;

            // Settled chain: the suffix still holding flits once compaction
            // finishes (blocked messages only; draining messages are CWG
            // sinks either way, so their full chain is fine and cheaper).
            if blocked {
                let remaining = (msg.len - msg.delivered) as usize;
                let depth = self.cfg.buffer_depth;
                let keep = remaining.div_ceil(depth).min(msg.chain.len());
                arena
                    .pool
                    .extend(msg.chain.iter().skip(msg.chain.len() - keep).copied());
            } else {
                arena.pool.extend(msg.chain.iter().copied());
                if msg.phase == MsgPhase::Ejecting {
                    arena
                        .pool
                        .push(self.reception_vertex(msg.dst, msg.reception_slot as usize));
                }
            }
            let chain_len = arena.pool.len() as u32 - start;

            if blocked {
                let &head_vc = msg.chain.back().unwrap();
                let here = self.topo.channel(ChannelId(head_vc / vcs_per as u32)).dst;
                if here == msg.dst {
                    // Waiting on the destination's (all busy) reception
                    // channels.
                    arena.pool.extend(
                        (0..self.reception_per_node).map(|r| self.reception_vertex(here, r)),
                    );
                } else {
                    compute_candidates(
                        &self.topo,
                        &*self.routing,
                        vcs_per,
                        &self.failed,
                        &ctx_of(msg, here),
                        &mut cand_buf,
                    );
                    for cand in &cand_buf {
                        let base = cand.channel.idx() * vcs_per;
                        arena
                            .pool
                            .extend(cand.vcs.iter().map(|v| (base + v) as u32));
                    }
                }
            }
            let req_len = arena.pool.len() as u32 - start - chain_len;

            arena.records.push(ArenaRecord {
                id: msg.id,
                start,
                chain_len,
                req_len,
            });

            if blocked {
                arena.blocked += 1;
                // Per-message FNV-1a over (id, chain, separator, requests),
                // finalized and combined commutatively so the fingerprint
                // is independent of `active` iteration order.
                let s = start as usize;
                let c = s + chain_len as usize;
                let mut h = fnv1a_words(0xcbf2_9ce4_8422_2325, [msg.id]);
                h = fnv1a_words(h, arena.pool[s..c].iter().map(|&v| v as u64));
                h = fnv1a_words(h, [u64::MAX]);
                h = fnv1a_words(
                    h,
                    arena.pool[c..c + req_len as usize]
                        .iter()
                        .map(|&v| v as u64),
                );
                arena.fingerprint = arena.fingerprint.wrapping_add(mix(h));
            }
        }
        // Fold in the population so e.g. "no blocked messages" epochs at
        // different vertex counts never alias.
        arena.fingerprint ^=
            mix((arena.blocked as u64) << 32 ^ arena.num_vertices as u64 ^ 0x9e37_79b9_7f4a_7c15);
        arena.cand_buf = cand_buf;
        arena.order_buf = order_buf;
    }

    /// Takes a wait-for snapshot of the current state.
    ///
    /// Convenience wrapper over [`wait_snapshot_into`](Self::wait_snapshot_into)
    /// that allocates a fresh Vec-per-message snapshot; the detection loop
    /// uses the arena form directly.
    pub fn wait_snapshot(&self) -> WaitSnapshot {
        let mut arena = SnapshotArena::new();
        self.wait_snapshot_into(&mut arena);
        arena.to_snapshot()
    }

    /// Whether any VC of `ch` is currently owned (test helper).
    pub fn channel_busy(&self, ch: ChannelId) -> bool {
        let base = ch.idx() * self.vcs_per();
        (0..self.vcs_per()).any(|v| self.vc_owner[base + v] != NO_OWNER)
    }
}
