//! Message state.

use std::collections::VecDeque;

use icn_topology::NodeId;

/// Globally unique message identifier (monotonic per network).
pub type MessageId = u64;

/// What a message is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgPhase {
    /// Header still needs to acquire its next resource (VC or reception).
    Routing,
    /// Header reached the destination and owns the reception channel;
    /// flits drain at one per cycle.
    Ejecting,
    /// Named a deadlock victim: flits drain through the recovery lane from
    /// wherever the header sits, releasing VCs as the tail passes.
    Recovering,
}

/// Internal per-message record.
#[derive(Clone, Debug)]
pub(crate) struct Message {
    pub id: MessageId,
    pub src: NodeId,
    pub dst: NodeId,
    pub len: u32,
    /// Cycle the message was generated (entered the source queue).
    pub born: u64,
    /// Cycle the header acquired its first VC.
    pub injected_at: u64,
    /// Owned VC chain in acquisition order: front = tail-most.
    pub chain: VecDeque<u32>,
    /// Acquisition sequence number of `chain.front()`.
    pub front_seq: u32,
    /// Next acquisition sequence number (total acquisitions so far).
    pub next_seq: u32,
    /// Flits ejected (reception or recovery lane).
    pub delivered: u32,
    pub phase: MsgPhase,
    /// Header attempted an acquisition this cycle and failed.
    pub blocked: bool,
    /// Cycle the current blocking episode began.
    pub blocked_since: Option<u64>,
    /// Dimension of the last hop (selection-policy state).
    pub last_dim: Option<u8>,
    /// Per-dimension dateline-crossing bits (avoidance-baseline state).
    pub crossed: u8,
    /// Non-minimal hops taken (misrouting-relation state).
    pub misroutes: u8,
    /// Still holds one of its source's injection channels.
    pub holds_injection: bool,
    /// Reception-channel slot held at the destination (valid while
    /// `phase == Ejecting`).
    pub reception_slot: u8,
}

impl Message {
    /// Flit-conservation check: source + in-network + delivered = length.
    /// `uninjected` lives in the network's hot-state vectors (it is read
    /// every transfer cycle), so the caller passes it in.
    pub fn flits_in_network(&self, uninjected: u32) -> u32 {
        self.len - uninjected - self.delivered
    }
}

/// Read-only view of a message, for callers and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageInfo {
    pub id: MessageId,
    pub src: NodeId,
    pub dst: NodeId,
    pub len: u32,
    pub born: u64,
    pub phase: MsgPhase,
    pub blocked: bool,
    /// VCs currently owned.
    pub chain_len: usize,
    /// Total VC acquisitions so far (hops taken by the header).
    pub hops: u32,
    pub uninjected: u32,
    pub delivered: u32,
}

impl MessageInfo {
    pub(crate) fn of(m: &Message, uninjected: u32) -> Self {
        MessageInfo {
            id: m.id,
            src: m.src,
            dst: m.dst,
            len: m.len,
            born: m.born,
            phase: m.phase,
            blocked: m.blocked,
            chain_len: m.chain.len(),
            hops: m.next_seq,
            uninjected,
            delivered: m.delivered,
        }
    }
}
