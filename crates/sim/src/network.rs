//! The cycle-driven network engine.

use std::collections::VecDeque;

use icn_routing::{Candidate, RoutingAlgorithm, RoutingCtx};
use icn_topology::{ChannelId, KAryNCube, NodeId};

use crate::config::SimConfig;
use crate::events::{DeliveredMsg, StepEvents};
use crate::message::{Message, MessageId, MessageInfo, MsgPhase};

/// Sentinel for "no owning message" in per-resource tables.
pub(crate) const NO_OWNER: u32 = u32::MAX;

/// One virtual channel's dynamic state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Vc {
    /// Slot of the owning message, or [`NO_OWNER`].
    pub owner: u32,
    /// Flits currently in this VC's edge buffer.
    pub occupancy: u16,
    /// Acquisition sequence number within the owner's chain.
    pub seq: u32,
}

/// A message waiting in a source queue (not yet holding any resource).
#[derive(Clone, Copy, Debug)]
struct Pending {
    dst: NodeId,
    born: u64,
    len: u32,
}

/// Dense id→slot map. Message ids are allocated monotonically, so the live
/// ids always fall in a window `[base, base + slots.len())` mapped by a
/// deque indexed with `id - base`; retired ids at the front of the window
/// compact away by advancing `base`. Lookup, insert, and removal are O(1)
/// (amortized), with no hashing on the injection hot path.
#[derive(Debug, Default)]
struct IdMap {
    base: MessageId,
    slots: VecDeque<u32>,
}

impl IdMap {
    fn get(&self, id: MessageId) -> Option<u32> {
        let idx = id.checked_sub(self.base)?;
        self.slots
            .get(usize::try_from(idx).ok()?)
            .copied()
            .filter(|&s| s != NO_OWNER)
    }

    /// Registers the next allocated id (ids arrive in order, gap-free).
    fn push(&mut self, id: MessageId, slot: u32) {
        debug_assert_eq!(id, self.base + self.slots.len() as u64);
        debug_assert_ne!(slot, NO_OWNER);
        self.slots.push_back(slot);
    }

    fn remove(&mut self, id: MessageId) {
        if let Some(idx) = id.checked_sub(self.base) {
            if let Some(s) = self.slots.get_mut(idx as usize) {
                *s = NO_OWNER;
            }
        }
        while self.slots.front() == Some(&NO_OWNER) {
            self.slots.pop_front();
            self.base += 1;
        }
    }
}

/// The simulated network: topology + routing relation + all dynamic state.
///
/// Each [`step`](Network::step) simulates one cycle in three phases:
///
/// 1. **Allocation** — headers acquire their next virtual channel (or the
///    reception channel at the destination), oldest message first; blocked
///    headers are flagged.
/// 2. **Transfer** — one flit per physical link moves into a downstream VC
///    buffer (round-robin among the link's VCs), decided entirely from
///    start-of-cycle occupancies so flits advance at most one hop per
///    cycle; ejection and recovery lanes drain one flit per cycle.
/// 3. **Release** — VCs emptied behind the tail are freed; completed
///    messages are retired and reported.
pub struct Network {
    pub(crate) topo: KAryNCube,
    pub(crate) routing: Box<dyn RoutingAlgorithm>,
    pub(crate) cfg: SimConfig,
    pub(crate) cycle: u64,

    /// `channel * vcs_per_channel + vc`.
    pub(crate) vcs: Vec<Vc>,
    /// Owned-VC count per physical channel (lets the transfer phase skip
    /// idle links).
    owned_per_channel: Vec<u16>,
    /// Round-robin pointer per physical channel.
    link_rr: Vec<u8>,
    /// Reception channels per node (paper default: 1).
    pub(crate) reception_per_node: usize,
    /// Injection channels per node (paper default: 1).
    injection_per_node: usize,
    /// Reception-channel owner slots: `node * reception_per_node + slot`.
    pub(crate) reception: Vec<u32>,
    /// Active injectors per node (each holds one injection channel).
    injecting_count: Vec<u8>,
    /// Per-node source queues.
    source_q: Vec<VecDeque<Pending>>,
    /// Failed physical channels (never offered to headers).
    pub(crate) failed: Vec<bool>,

    /// Message slab + free list.
    pub(crate) messages: Vec<Option<Message>>,
    free_slots: Vec<u32>,
    /// Active message slots. Unordered: completion removes by swap-remove
    /// through [`active_idx`](Self::active_idx), so consumers that need
    /// age (id) order sort on demand.
    pub(crate) active: Vec<u32>,
    /// Slot → index in [`active`](Self::active), or [`NO_OWNER`].
    active_idx: Vec<u32>,
    id_map: IdMap,
    next_id: MessageId,
    /// Scratch: active slots sorted by id (age order), rebuilt per step.
    step_order: Vec<u32>,

    /// Scratch: start-of-cycle occupancies.
    occ_start: Vec<u16>,
    /// Scratch: routing candidates.
    cand_buf: Vec<Candidate>,
    /// Optional event recorder.
    tracer: Option<crate::trace::Tracer>,

    /// Lifetime counters.
    pub(crate) total_generated: u64,
    pub(crate) total_injected: u64,
    pub(crate) total_delivered: u64,
    pub(crate) total_recovered: u64,
}

/// Builds the routing context for a message whose header sits at `current`.
pub(crate) fn ctx_of(msg: &Message, current: NodeId) -> RoutingCtx {
    RoutingCtx {
        src: msg.src,
        dst: msg.dst,
        current,
        last_dim: msg.last_dim,
        crossed_dateline: msg.crossed,
        misroutes: msg.misroutes,
    }
}

/// Fills `buf` with the (fault-filtered) candidates for `ctx`.
pub(crate) fn compute_candidates(
    topo: &KAryNCube,
    routing: &dyn RoutingAlgorithm,
    vcs_per: usize,
    failed: &[bool],
    ctx: &RoutingCtx,
    buf: &mut Vec<Candidate>,
) {
    buf.clear();
    routing.candidates(topo, vcs_per, ctx, buf);
    buf.retain(|c| !failed[c.channel.idx()]);
}

impl Network {
    /// A new, empty network.
    pub fn new(topo: KAryNCube, routing: Box<dyn RoutingAlgorithm>, cfg: SimConfig) -> Self {
        cfg.validate();
        assert!(
            cfg.vcs_per_channel >= routing.min_vcs(),
            "{} requires at least {} VCs",
            routing.name(),
            routing.min_vcs()
        );
        let n_vcs = topo.num_channels() * cfg.vcs_per_channel;
        let n_nodes = topo.num_nodes();
        Network {
            vcs: vec![
                Vc {
                    owner: NO_OWNER,
                    occupancy: 0,
                    seq: 0,
                };
                n_vcs
            ],
            owned_per_channel: vec![0; topo.num_channels()],
            link_rr: vec![0; topo.num_channels()],
            reception_per_node: 1,
            injection_per_node: 1,
            reception: vec![NO_OWNER; n_nodes],
            injecting_count: vec![0; n_nodes],
            source_q: vec![VecDeque::new(); n_nodes],
            failed: vec![false; topo.num_channels()],
            messages: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            active_idx: Vec::new(),
            id_map: IdMap::default(),
            next_id: 0,
            step_order: Vec::new(),
            occ_start: vec![0; n_vcs],
            cand_buf: Vec::new(),
            tracer: None,
            total_generated: 0,
            total_injected: 0,
            total_delivered: 0,
            total_recovered: 0,
            topo,
            routing,
            cfg,
            cycle: 0,
        }
    }

    /// The network's topology.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The routing relation in use.
    pub fn routing(&self) -> &dyn RoutingAlgorithm {
        &*self.routing
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Virtual channels per physical channel.
    #[inline]
    pub(crate) fn vcs_per(&self) -> usize {
        self.cfg.vcs_per_channel
    }

    /// Queues a message for injection at `src` with the configured default
    /// length. It holds no resource until its header acquires a first VC
    /// during a later [`step`](Self::step).
    pub fn enqueue(&mut self, src: NodeId, dst: NodeId) {
        self.enqueue_with_len(src, dst, self.cfg.msg_len);
    }

    /// Queues a message with an explicit length in flits — hybrid-length
    /// workloads (the paper's §5 future-work item) mix short and long
    /// messages in one run.
    pub fn enqueue_with_len(&mut self, src: NodeId, dst: NodeId, len: usize) {
        assert_ne!(src, dst, "messages must leave their source");
        assert!(src.idx() < self.topo.num_nodes());
        assert!(dst.idx() < self.topo.num_nodes());
        assert!(len >= 1 && len <= u32::MAX as usize, "bad message length");
        self.source_q[src.idx()].push_back(Pending {
            dst,
            born: self.cycle,
            len: len as u32,
        });
        self.total_generated += 1;
    }

    /// Gives every node `injection` injection channels and `reception`
    /// reception channels (the paper's §3 default is one of each).
    /// Must be called before any traffic enters the network.
    pub fn with_endpoint_channels(mut self, injection: usize, reception: usize) -> Self {
        assert!(injection >= 1 && injection <= u8::MAX as usize);
        assert!(reception >= 1);
        assert_eq!(self.cycle, 0, "configure endpoints before stepping");
        assert!(self.active.is_empty() && self.source_queued() == 0);
        self.injection_per_node = injection;
        self.reception_per_node = reception;
        self.reception = vec![NO_OWNER; self.topo.num_nodes() * reception];
        self
    }

    /// Turns on event tracing with a bounded buffer; see
    /// [`TraceEvent`](crate::TraceEvent). Replaces any previous trace.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(crate::trace::Tracer::new(capacity));
    }

    /// Drains recorded events; the second value counts events dropped at
    /// capacity. Panics if tracing was never enabled.
    pub fn take_trace(&mut self) -> (Vec<crate::TraceEvent>, u64) {
        self.tracer.as_mut().expect("tracing not enabled").take()
    }

    /// Marks a physical channel as failed: it is filtered from every
    /// routing candidate set from now on. Panics if the channel currently
    /// carries traffic.
    pub fn fail_channel(&mut self, ch: ChannelId) {
        let base = ch.idx() * self.vcs_per();
        for v in 0..self.vcs_per() {
            assert!(
                self.vcs[base + v].owner == NO_OWNER,
                "cannot fail a channel in use"
            );
        }
        self.failed[ch.idx()] = true;
    }

    /// Switches a blocked message onto the recovery lane (synthesized Disha
    /// recovery): its flits drain one per cycle from wherever the header
    /// sits, releasing VCs as the tail passes, and it counts as delivered
    /// (recovered) when the last flit exits. Returns `false` when the
    /// message is not active or not in the `Routing` phase.
    pub fn start_recovery(&mut self, id: MessageId) -> bool {
        let Some(slot) = self.id_map.get(id) else {
            return false;
        };
        let msg = self.messages[slot as usize].as_mut().expect("slot live");
        if msg.phase != MsgPhase::Routing {
            return false;
        }
        msg.phase = MsgPhase::Recovering;
        msg.blocked = false;
        msg.blocked_since = None;
        if let Some(t) = self.tracer.as_mut() {
            t.push(crate::TraceEvent::RecoveryStart {
                cycle: self.cycle,
                id,
            });
        }
        true
    }

    /// Messages currently holding network resources.
    pub fn in_network(&self) -> usize {
        self.active.len()
    }

    /// Active messages whose header acquisition failed this cycle.
    pub fn blocked_count(&self) -> usize {
        self.active
            .iter()
            .map(|&s| self.messages[s as usize].as_ref().unwrap())
            .filter(|m| m.blocked)
            .count()
    }

    /// Messages waiting in source queues.
    pub fn source_queued(&self) -> usize {
        self.source_q.iter().map(|q| q.len()).sum()
    }

    /// Lifetime (generated, injected, delivered, recovered) counters.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.total_generated,
            self.total_injected,
            self.total_delivered,
            self.total_recovered,
        )
    }

    /// Ids of active messages, oldest first.
    pub fn active_ids(&self) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = self
            .active
            .iter()
            .map(|&s| self.messages[s as usize].as_ref().unwrap().id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Read-only view of an active message.
    pub fn message_info(&self, id: MessageId) -> Option<MessageInfo> {
        let slot = self.id_map.get(id)?;
        self.messages[slot as usize].as_ref().map(MessageInfo::of)
    }

    /// Rebuilds the per-step age-order view of `active` (oldest id first).
    /// Messages injected later this cycle are deliberately absent: on their
    /// injection cycle they are no-ops in every later phase (header flit
    /// not yet buffered, `uninjected > 0`).
    fn rebuild_step_order(&mut self) {
        self.step_order.clear();
        self.step_order.extend_from_slice(&self.active);
        let messages = &self.messages;
        self.step_order
            .sort_unstable_by_key(|&s| messages[s as usize].as_ref().expect("active slot").id);
    }

    /// Simulates one cycle.
    pub fn step(&mut self) -> StepEvents {
        let mut events = StepEvents::default();
        self.rebuild_step_order();
        self.phase_allocation(&mut events);
        self.phase_transfer(&mut events);
        self.phase_release(&mut events);
        self.cycle += 1;
        events
    }

    // ------------------------------------------------------------------
    // Phase 1: allocation
    // ------------------------------------------------------------------

    fn phase_allocation(&mut self, events: &mut StepEvents) {
        self.try_injections(events);
        self.try_next_hops();
    }

    /// Source-queue heads try to acquire their first VC (which implicitly
    /// claims the node's single injection channel).
    fn try_injections(&mut self, events: &mut StepEvents) {
        for node in 0..self.topo.num_nodes() {
            // One acquisition attempt per free injection channel per cycle.
            while (self.injecting_count[node] as usize) < self.injection_per_node {
                if !self.try_inject_one(node, events) {
                    break;
                }
            }
        }
    }

    /// Attempts to start the queue-front message at `node`; returns
    /// whether a message left the queue.
    fn try_inject_one(&mut self, node: usize, events: &mut StepEvents) -> bool {
        let Some(&Pending { dst, born, len }) = self.source_q[node].front() else {
            return false;
        };
        let src = NodeId(node as u32);
        compute_candidates(
            &self.topo,
            &*self.routing,
            self.cfg.vcs_per_channel,
            &self.failed,
            &RoutingCtx::fresh(src, dst, src),
            &mut self.cand_buf,
        );
        let Some(vc_idx) = first_free_vc(&self.vcs, self.cfg.vcs_per_channel, &self.cand_buf)
        else {
            return false; // stays queued; holds nothing
        };

        {
            self.source_q[node].pop_front();
            let id = self.next_id;
            self.next_id += 1;
            let slot = match self.free_slots.pop() {
                Some(s) => s,
                None => {
                    self.messages.push(None);
                    (self.messages.len() - 1) as u32
                }
            };
            let mut msg = Message {
                id,
                src,
                dst,
                len,
                born,
                injected_at: self.cycle,
                chain: VecDeque::new(),
                front_seq: 0,
                next_seq: 0,
                uninjected: len,
                delivered: 0,
                phase: MsgPhase::Routing,
                blocked: false,
                blocked_since: None,
                last_dim: None,
                crossed: 0,
                misroutes: 0,
                holds_injection: true,
                reception_slot: 0,
            };
            acquire_vc(
                &mut self.vcs,
                &mut self.owned_per_channel,
                &self.topo,
                self.cfg.vcs_per_channel,
                &mut msg,
                vc_idx,
                slot,
            );
            if let Some(t) = self.tracer.as_mut() {
                t.push(crate::TraceEvent::Injected {
                    cycle: self.cycle,
                    id,
                    src,
                    dst,
                    len,
                });
                t.push(crate::TraceEvent::Acquired {
                    cycle: self.cycle,
                    id,
                    channel: ChannelId(vc_idx / self.cfg.vcs_per_channel as u32),
                    vc: (vc_idx as usize % self.cfg.vcs_per_channel) as u8,
                });
            }
            self.messages[slot as usize] = Some(msg);
            self.id_map.push(id, slot);
            self.injecting_count[node] += 1;
            if self.active_idx.len() <= slot as usize {
                self.active_idx.resize(slot as usize + 1, NO_OWNER);
            }
            self.active_idx[slot as usize] = self.active.len() as u32;
            self.active.push(slot);
            self.total_injected += 1;
            events.injected += 1;
        }
        true
    }

    /// In-flight headers try to acquire their next VC, or the reception
    /// channel at the destination. Oldest message first (age priority).
    fn try_next_hops(&mut self) {
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");
            if msg.phase != MsgPhase::Routing {
                continue;
            }
            let &head_vc = msg.chain.back().expect("routing message owns its head VC");
            if self.vcs[head_vc as usize].occupancy == 0 {
                // Header flit still in flight towards this buffer.
                msg.blocked = false;
                continue;
            }
            let here = self
                .topo
                .channel(ChannelId(head_vc / self.cfg.vcs_per_channel as u32))
                .dst;

            if here == msg.dst {
                let base = here.idx() * self.reception_per_node;
                let free =
                    (0..self.reception_per_node).find(|&r| self.reception[base + r] == NO_OWNER);
                if let Some(r) = free {
                    self.reception[base + r] = slot;
                    msg.reception_slot = r as u8;
                    msg.phase = MsgPhase::Ejecting;
                    msg.blocked = false;
                    msg.blocked_since = None;
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(crate::TraceEvent::EjectStart {
                            cycle: self.cycle,
                            id: msg.id,
                        });
                    }
                } else if !msg.blocked {
                    msg.blocked = true;
                    msg.blocked_since = Some(self.cycle);
                    if let Some(t) = self.tracer.as_mut() {
                        // Waiting on the destination's reception channels,
                        // not on any link.
                        t.push(crate::TraceEvent::Blocked {
                            cycle: self.cycle,
                            id: msg.id,
                            at: here,
                            candidates: Vec::new(),
                        });
                    }
                }
                continue;
            }

            compute_candidates(
                &self.topo,
                &*self.routing,
                self.cfg.vcs_per_channel,
                &self.failed,
                &ctx_of(msg, here),
                &mut self.cand_buf,
            );
            match first_free_vc(&self.vcs, self.cfg.vcs_per_channel, &self.cand_buf) {
                Some(vc_idx) => {
                    acquire_vc(
                        &mut self.vcs,
                        &mut self.owned_per_channel,
                        &self.topo,
                        self.cfg.vcs_per_channel,
                        msg,
                        vc_idx,
                        slot,
                    );
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(crate::TraceEvent::Acquired {
                            cycle: self.cycle,
                            id: msg.id,
                            channel: ChannelId(vc_idx / self.cfg.vcs_per_channel as u32),
                            vc: (vc_idx as usize % self.cfg.vcs_per_channel) as u8,
                        });
                    }
                }
                None => {
                    if !msg.blocked {
                        msg.blocked = true;
                        msg.blocked_since = Some(self.cycle);
                        if let Some(t) = self.tracer.as_mut() {
                            t.push(crate::TraceEvent::Blocked {
                                cycle: self.cycle,
                                id: msg.id,
                                at: here,
                                candidates: self.cand_buf.iter().map(|c| c.channel).collect(),
                            });
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: transfer
    // ------------------------------------------------------------------

    fn phase_transfer(&mut self, events: &mut StepEvents) {
        // Snapshot start-of-cycle occupancies: every decision below reads
        // these, so a flit advances at most one hop per cycle and buffer
        // space freed this cycle is only visible next cycle.
        for (o, vc) in self.occ_start.iter_mut().zip(self.vcs.iter()) {
            *o = vc.occupancy;
        }
        let vcs_per = self.cfg.vcs_per_channel;
        let depth = self.cfg.buffer_depth as u16;

        // Link transfers: at most one flit per physical channel per cycle.
        for ch in 0..self.topo.num_channels() {
            if self.owned_per_channel[ch] == 0 {
                continue;
            }
            let base = ch * vcs_per;
            let start = self.link_rr[ch] as usize;
            for i in 0..vcs_per {
                let off = (start + i) % vcs_per;
                let v = base + off;
                let Vc { owner, seq, .. } = self.vcs[v];
                if owner == NO_OWNER || self.occ_start[v] >= depth {
                    continue;
                }
                let msg = self.messages[owner as usize].as_mut().expect("owner live");
                let moved = if seq == msg.front_seq {
                    // Tail-most owned VC: flits arrive from the source.
                    if msg.uninjected > 0 {
                        msg.uninjected -= 1;
                        true
                    } else {
                        false
                    }
                } else {
                    let pos = (seq - msg.front_seq) as usize;
                    let prev = msg.chain[pos - 1] as usize;
                    if self.occ_start[prev] >= 1 {
                        self.vcs[prev].occupancy -= 1;
                        true
                    } else {
                        false
                    }
                };
                if moved {
                    self.vcs[v].occupancy += 1;
                    events.link_flits += 1;
                    self.link_rr[ch] = ((off + 1) % vcs_per) as u8;
                    break;
                }
            }
        }

        // Ejection and recovery drains: one flit per cycle per message.
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");
            if msg.phase == MsgPhase::Routing {
                continue;
            }
            let &head = msg
                .chain
                .back()
                .expect("draining message still owns its head VC");
            if self.occ_start[head as usize] >= 1 {
                self.vcs[head as usize].occupancy -= 1;
                msg.delivered += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: release & completion
    // ------------------------------------------------------------------

    /// Unlinks `slot` from the active list in O(1) (swap-remove through the
    /// slot → index back-map) and recycles its storage.
    fn finish_slot(&mut self, slot: u32) {
        let msg = self.messages[slot as usize].take().expect("finished slot");
        self.id_map.remove(msg.id);
        let i = self.active_idx[slot as usize] as usize;
        debug_assert_eq!(self.active[i], slot);
        self.active.swap_remove(i);
        if let Some(&moved) = self.active.get(i) {
            self.active_idx[moved as usize] = i as u32;
        }
        self.active_idx[slot as usize] = NO_OWNER;
        self.free_slots.push(slot);
    }

    fn phase_release(&mut self, events: &mut StepEvents) {
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");

            // The injection channel frees once the tail leaves the source.
            if msg.uninjected == 0 && msg.holds_injection {
                msg.holds_injection = false;
                self.injecting_count[msg.src.idx()] -= 1;
            }

            // Tail release: owned VCs drain from the front of the chain.
            while let Some(&front) = msg.chain.front() {
                if self.vcs[front as usize].occupancy == 0 && msg.uninjected == 0 {
                    self.vcs[front as usize].owner = NO_OWNER;
                    self.owned_per_channel[front as usize / self.cfg.vcs_per_channel] -= 1;
                    msg.chain.pop_front();
                    msg.front_seq += 1;
                } else {
                    break;
                }
            }

            if msg.delivered == msg.len {
                debug_assert!(msg.chain.is_empty());
                debug_assert_eq!(msg.uninjected, 0);
                if msg.phase == MsgPhase::Ejecting {
                    let r = msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize;
                    debug_assert_eq!(self.reception[r], slot);
                    self.reception[r] = NO_OWNER;
                }
                let recovered = msg.phase == MsgPhase::Recovering;
                events.delivered.push(DeliveredMsg {
                    id: msg.id,
                    src: msg.src,
                    dst: msg.dst,
                    latency: self.cycle + 1 - msg.born,
                    network_latency: self.cycle + 1 - msg.injected_at,
                    hops: msg.next_seq,
                    len: msg.len,
                    recovered,
                });
                self.total_delivered += 1;
                if recovered {
                    self.total_recovered += 1;
                }
                if let Some(t) = self.tracer.as_mut() {
                    t.push(crate::TraceEvent::Delivered {
                        cycle: self.cycle,
                        id: msg.id,
                        recovered,
                    });
                }
                self.finish_slot(slot);
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Exhaustive consistency check; called from tests after stepping.
    ///
    /// Verifies flit conservation per message, owner/chain agreement,
    /// occupancy bounds, per-channel owned counts, and injection/reception
    /// bookkeeping.
    pub fn check_invariants(&self) {
        let vcs_per = self.cfg.vcs_per_channel;
        let mut owned_seen = vec![0u16; self.topo.num_channels()];
        for (i, &slot) in self.active.iter().enumerate() {
            assert_eq!(
                self.active_idx[slot as usize], i as u32,
                "active back-map out of sync for slot {slot}"
            );
        }
        for (slot, &i) in self.active_idx.iter().enumerate() {
            if i != NO_OWNER {
                assert_eq!(self.active[i as usize] as usize, slot);
            } else {
                assert!(
                    self.messages.get(slot).is_none_or(|m| m.is_none()),
                    "live slot {slot} missing from the active list"
                );
            }
        }
        for &slot in &self.active {
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            let in_chain: u32 = msg
                .chain
                .iter()
                .map(|&v| self.vcs[v as usize].occupancy as u32)
                .sum();
            assert_eq!(
                in_chain,
                msg.flits_in_network(),
                "flit conservation violated for message {}",
                msg.id
            );
            for (p, &v) in msg.chain.iter().enumerate() {
                let vc = &self.vcs[v as usize];
                assert_eq!(vc.owner, slot, "chain VC not owned by its message");
                assert_eq!(vc.seq, msg.front_seq + p as u32, "seq mismatch");
                assert!(vc.occupancy as usize <= self.cfg.buffer_depth);
                owned_seen[v as usize / vcs_per] += 1;
            }
            // Chain follows physically adjacent channels.
            for w in msg.chain.make_contiguous_ref().windows(2) {
                let a = self.topo.channel(ChannelId(w[0] / vcs_per as u32));
                let b = self.topo.channel(ChannelId(w[1] / vcs_per as u32));
                assert_eq!(a.dst, b.src, "chain must be a connected path");
            }
            if msg.phase == MsgPhase::Ejecting {
                let r = msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize;
                assert_eq!(self.reception[r], slot);
            }
        }
        for (ch, &count) in owned_seen.iter().enumerate() {
            assert_eq!(
                count, self.owned_per_channel[ch],
                "owned count mismatch on channel {ch}"
            );
        }
        for (v, vc) in self.vcs.iter().enumerate() {
            if vc.owner == NO_OWNER {
                assert_eq!(vc.occupancy, 0, "free VC {v} holds flits");
            } else {
                assert!(self.messages[vc.owner as usize].is_some());
            }
        }
    }
}

/// First free VC across the candidate list, respecting candidate order
/// (the routing relation's preference order) and, within a channel,
/// ascending VC index.
fn first_free_vc(vcs: &[Vc], vcs_per: usize, cands: &[Candidate]) -> Option<u32> {
    for cand in cands {
        let base = cand.channel.idx() * vcs_per;
        for v in cand.vcs.iter() {
            if vcs[base + v].owner == NO_OWNER {
                return Some((base + v) as u32);
            }
        }
    }
    None
}

/// Grants `vc_idx` to `msg` and updates selection-policy / dateline state.
fn acquire_vc(
    vcs: &mut [Vc],
    owned_per_channel: &mut [u16],
    topo: &KAryNCube,
    vcs_per: usize,
    msg: &mut Message,
    vc_idx: u32,
    slot: u32,
) {
    let vc = &mut vcs[vc_idx as usize];
    debug_assert_eq!(vc.owner, NO_OWNER);
    debug_assert_eq!(vc.occupancy, 0);
    vc.owner = slot;
    vc.seq = msg.next_seq;
    msg.chain.push_back(vc_idx);
    msg.next_seq += 1;
    let ch = ChannelId(vc_idx / vcs_per as u32);
    owned_per_channel[ch.idx()] += 1;
    let info = topo.channel(ch);
    msg.last_dim = Some(info.dim);
    if topo.is_wraparound(ch) {
        msg.crossed |= 1 << info.dim;
    }
    // A hop that does not reduce the distance to the destination spends
    // misroute budget (non-minimal relations only ever offer such hops
    // while budget remains).
    if topo.distance(info.dst, msg.dst) >= topo.distance(info.src, msg.dst) {
        msg.misroutes = msg.misroutes.saturating_add(1);
    }
    msg.blocked = false;
    msg.blocked_since = None;
}

/// `VecDeque::make_contiguous` needs `&mut`; for the read-only invariant
/// checker we just collect when the deque wraps.
trait MakeContiguousRef {
    fn make_contiguous_ref(&self) -> Vec<u32>;
}

impl MakeContiguousRef for VecDeque<u32> {
    fn make_contiguous_ref(&self) -> Vec<u32> {
        self.iter().copied().collect()
    }
}
