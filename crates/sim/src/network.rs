//! The cycle-driven network engine.

use std::collections::VecDeque;

use icn_routing::{Candidate, RoutingAlgorithm, RoutingCtx};
use icn_topology::{ChannelId, KAryNCube, NodeId, ShardPlan};

use crate::config::SimConfig;
use crate::events::{DeliveredMsg, StepEvents};
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::message::{Message, MessageId, MessageInfo, MsgPhase};

/// Sentinel for "no owning message" in per-resource tables.
pub(crate) const NO_OWNER: u32 = u32::MAX;

/// [`Network::vc_feed`] sentinel: this VC is its owner's chain front, so
/// its flits arrive straight from the source queue (`msg_uninjected`).
const FROM_SOURCE: u32 = u32::MAX - 1;

/// A message waiting in a source queue (not yet holding any resource).
#[derive(Clone, Copy, Debug)]
struct Pending {
    dst: NodeId,
    born: u64,
    len: u32,
}

/// Dense id→slot map. Message ids are allocated monotonically, so the live
/// ids always fall in a window `[base, base + slots.len())` mapped by a
/// deque indexed with `id - base`; retired ids at the front of the window
/// compact away by advancing `base`. Lookup, insert, and removal are O(1)
/// (amortized), with no hashing on the injection hot path.
#[derive(Debug, Default)]
pub(crate) struct IdMap {
    base: MessageId,
    slots: VecDeque<u32>,
}

impl IdMap {
    pub(crate) fn get(&self, id: MessageId) -> Option<u32> {
        let idx = id.checked_sub(self.base)?;
        self.slots
            .get(usize::try_from(idx).ok()?)
            .copied()
            .filter(|&s| s != NO_OWNER)
    }

    /// Registers the next allocated id (ids arrive in order, gap-free).
    fn push(&mut self, id: MessageId, slot: u32) {
        debug_assert_eq!(id, self.base + self.slots.len() as u64);
        debug_assert_ne!(slot, NO_OWNER);
        self.slots.push_back(slot);
    }

    fn remove(&mut self, id: MessageId) {
        if let Some(idx) = id.checked_sub(self.base) {
            if let Some(s) = self.slots.get_mut(idx as usize) {
                *s = NO_OWNER;
            }
        }
        while self.slots.front() == Some(&NO_OWNER) {
            self.slots.pop_front();
            self.base += 1;
        }
    }
}

/// Which stepping engine an instance is committed to. The activity-driven
/// [`step`](Network::step) and the dense reference
/// [`step_reference`](Network::step_reference) keep different bookkeeping,
/// so an instance must use one exclusively; the first step locks the mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepMode {
    Unset,
    Activity,
    Dense,
}

/// Allocation-phase scheduling state of an active message (activity engine).
///
/// * `Queued` — runnable: in the allocation queue (or the `woken` buffer)
///   and re-attempted every cycle. Covers moving, filling, and just-woken
///   messages.
/// * `Parked` — blocked with every watched resource busy; skipped until a
///   wake fires. A parked message with an empty watch set has an empty
///   (fault-filtered) candidate set: without a fault plan that set can
///   never grow back, and with one the engine has recorded the message as
///   stranded — it is dropped (a counted fault loss) at the start of the
///   next cycle, or rewoken if a `LinkUp` restores routability first.
/// * `Inactive` — not routing (ejecting or recovering; drains instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AllocState {
    Queued,
    Parked,
    Inactive,
}

/// Injection scheduling state of a node (activity engine).
///
/// * `Idle` — empty source queue, or no free injection channel; woken by
///   [`Network::enqueue_with_len`] / an injection-channel release.
/// * `Ready` — on the ready list; attempted next allocation phase.
/// * `Parked` — queue front found every candidate VC busy; watching them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InjState {
    Idle,
    Ready,
    Parked,
}

/// High bit of a wake-list waiter: set when the waiter is an injector node
/// rather than a message slot.
const INJECTOR: u32 = 1 << 31;

/// One entry on a resource's wake list: `waiter` (message slot, or
/// `INJECTOR | node`) plus the index of this watch in the waiter's own
/// watch table, so either side can unlink the other in O(1).
#[derive(Clone, Copy, Debug)]
struct WakeEntry {
    waiter: u32,
    watch_pos: u32,
}

/// Outcome of one injection attempt at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InjectOutcome {
    /// Queue front acquired a first VC and left the queue.
    Injected,
    /// Nothing queued at this node.
    EmptyQueue,
    /// Every candidate VC for the queue front is owned; the candidates are
    /// left in `cand_buf` so the activity engine can park on them.
    NoFreeVc,
    /// The queue front's fault-filtered candidate set is empty — its first
    /// hop is unroutable under the active fault set — so it was popped and
    /// counted as rejected. Only possible with a fault plan installed.
    Rejected,
}

/// The simulated network: topology + routing relation + all dynamic state.
///
/// Each [`step`](Network::step) simulates one cycle in three phases:
///
/// 1. **Allocation** — headers acquire their next virtual channel (or the
///    reception channel at the destination), oldest message first; blocked
///    headers are flagged.
/// 2. **Transfer** — one flit per physical link moves into a downstream VC
///    buffer (round-robin among the link's VCs), decided entirely from
///    start-of-cycle occupancies so flits advance at most one hop per
///    cycle; ejection and recovery lanes drain one flit per cycle.
/// 3. **Release** — VCs emptied behind the tail are freed; completed
///    messages are retired and reported.
pub struct Network {
    pub(crate) topo: KAryNCube,
    pub(crate) routing: Box<dyn RoutingAlgorithm>,
    pub(crate) cfg: SimConfig,
    pub(crate) cycle: u64,

    /// Per-VC dynamic state, struct-of-arrays at `channel *
    /// vcs_per_channel + vc`: the transfer phase walks these vectors
    /// sequentially every cycle, so each field lives in its own dense
    /// array instead of an array-of-structs record.
    ///
    /// Owner slot, or [`NO_OWNER`].
    pub(crate) vc_owner: Vec<u32>,
    /// Flits currently buffered.
    pub(crate) vc_occ: Vec<u16>,
    /// Acquisition sequence number within the owner's chain.
    vc_seq: Vec<u32>,
    /// Upstream feeder: the chain predecessor supplying this VC's flits,
    /// [`FROM_SOURCE`] for the chain front, or [`NO_OWNER`] when free.
    /// Mirrors the owner's chain so the transfer phase never indexes the
    /// message slab.
    vc_feed: Vec<u32>,
    /// Downstream successor (the VC this one feeds), or [`NO_OWNER`].
    vc_next: Vec<u32>,
    /// Flits still waiting at the source, per message slot (hot: read by
    /// every chain-front transfer decision).
    msg_uninjected: Vec<u32>,
    /// Message id per slot (valid while the slot is live): sorts and
    /// id-ordered tie-breaks read this dense vector instead of chasing
    /// `messages[slot]`.
    pub(crate) slot_id: Vec<u64>,
    /// Owned-VC count per physical channel (lets the transfer phase skip
    /// idle links).
    owned_per_channel: Vec<u16>,
    /// Round-robin pointer per physical channel.
    link_rr: Vec<u8>,
    /// Reception channels per node (paper default: 1).
    pub(crate) reception_per_node: usize,
    /// Injection channels per node (paper default: 1).
    injection_per_node: usize,
    /// Reception-channel owner slots: `node * reception_per_node + slot`.
    pub(crate) reception: Vec<u32>,
    /// Active injectors per node (each holds one injection channel).
    injecting_count: Vec<u8>,
    /// Per-node source queues.
    source_q: Vec<VecDeque<Pending>>,
    /// Failed physical channels (never offered to headers).
    pub(crate) failed: Vec<bool>,

    /// Installed fault schedule in canonical order; `fault_cursor` marks
    /// the first not-yet-applied event.
    fault_events: Vec<FaultEvent>,
    fault_cursor: usize,
    /// True when a fault plan is installed: gates every per-cycle fault
    /// check, so fault-free instances pay a single branch.
    fault_mode: bool,
    /// Per-node stall horizon: the node is frozen while
    /// `cycle < stall_until[node]`.
    stall_until: Vec<u64>,
    /// Per-node injector-outage horizon (injection only).
    inj_down_until: Vec<u64>,
    /// Messages discovered unroutable (empty fault-filtered candidate set
    /// away from their destination) during allocation; resolved — dropped,
    /// or re-spared after a `LinkUp` — at the start of the next cycle,
    /// identically in both steppers.
    stranded: Vec<(u32, MessageId)>,
    /// Lifetime fault counters: in-network losses and source rejections.
    total_fault_losses: u64,
    total_fault_rejected: u64,

    /// Message slab + free list.
    pub(crate) messages: Vec<Option<Message>>,
    free_slots: Vec<u32>,
    /// Active message slots. Unordered: completion removes by swap-remove
    /// through [`active_idx`](Self::active_idx), so consumers that need
    /// age (id) order sort on demand.
    pub(crate) active: Vec<u32>,
    /// Slot → index in [`active`](Self::active), or [`NO_OWNER`].
    active_idx: Vec<u32>,
    pub(crate) id_map: IdMap,
    next_id: MessageId,
    /// Scratch: active slots sorted by id (age order), rebuilt per step
    /// (dense reference stepper only).
    step_order: Vec<u32>,

    /// Which stepper this instance is committed to (locked on first step).
    mode: StepMode,
    /// Runnable routing-phase slots in id (age) order. New injections
    /// append (ids are monotone), wakes merge in via [`Self::woken`], and
    /// parked / inactive entries compact out during the allocation pass.
    alloc_queue: Vec<u32>,
    /// Merge scratch for [`Self::alloc_queue`].
    alloc_scratch: Vec<u32>,
    /// Slots woken since the last allocation phase (unordered).
    woken: Vec<u32>,
    /// Per-slot allocation scheduling state.
    alloc_state: Vec<AllocState>,
    /// Per-node injection scheduling state.
    inj_state: Vec<InjState>,
    /// Nodes to attempt next allocation phase (unordered; sorted on use).
    inj_ready: Vec<u32>,
    /// Per-resource wake lists: VC `v` at index `v`, the reception group
    /// of node `n` at `num_vcs + n`.
    wake_lists: Vec<Vec<WakeEntry>>,
    /// Per-slot watch table: `(resource, index in wake_lists[resource])`.
    msg_watches: Vec<Vec<(u32, u32)>>,
    /// Per-node watch table for parked injectors.
    inj_watches: Vec<Vec<(u32, u32)>>,
    /// Active-channel bitset: bit `ch % 64` of word `ch / 64` marks a
    /// channel the transfer phase must examine. Activations during
    /// allocation land in the set scanned the same cycle; the transfer
    /// phase swaps the set into [`Self::chan_scan`] first, so activations
    /// raised while it walks (occupancy triggers) accumulate here for the
    /// next cycle.
    chan_words: Vec<u64>,
    /// Scratch the transfer phase drains: all-zero between cycles.
    chan_scan: Vec<u64>,
    /// Ejecting / recovering slots, each draining one flit per cycle.
    drain_list: Vec<u32>,
    /// Slot → index in [`Self::drain_list`], or [`NO_OWNER`].
    drain_idx: Vec<u32>,
    /// Head VC of `drain_list[k]`, cached at drain start (a draining
    /// message never acquires, so its chain back is fixed): the common
    /// starved-head case is decided without touching the message slab.
    drain_head: Vec<u32>,
    /// Dirty-occupancy bitset: bit `v % 64` of word `v / 64` marks a VC
    /// whose occupancy diverged from `occ_start` since the last sync.
    /// Bit-idempotent, so a VC that changes occupancy several times in one
    /// cycle carries exactly one mark.
    occ_dirty_words: Vec<u64>,
    /// Transfer decide-pass output buffers, one per decide partition
    /// (always at least one; drained by the apply pass each cycle).
    xfer_bufs: Vec<MoveBuf>,
    /// Decide partitions for the transfer phase. 1 = serial fused walk
    /// (the fast path); >1 (only reachable with the `parallel` cargo
    /// feature) fans the pure decide pass out over contiguous word ranges
    /// of the active-channel bitset on scoped threads, then applies the
    /// decided moves serially in canonical (ascending channel) order.
    transfer_threads: usize,
    /// Logical shard count for the sharded engine (1 = unsharded). The
    /// determinism unit: results depend only on this, never on how many
    /// OS threads actually execute the shards.
    shards: usize,
    /// Spatial partition backing the sharded path; built by
    /// [`Self::set_shards`] when `shards > 1`.
    shard_plan: Option<ShardPlan>,
    /// OS threads driving the sharded decide fan-out:
    /// `min(shards, available_parallelism)`. 1 runs the fan-out inline —
    /// same decide partitions, same results, no spawn cost.
    shard_workers: usize,
    /// Latched at the first activity step: true when this run takes the
    /// sharded path (`shards > 1`, no fault plan, no tracer). Faulted and
    /// traced runs fall back to the serial path, whose per-cycle fault
    /// checks and event streams are defined in global id order.
    shard_active: bool,
    /// Per-shard runnable queues (each id-sorted), the sharded
    /// replacement of [`Self::alloc_queue`]. A message is queued in the
    /// shard owning its header's node — the only shard whose resources it
    /// can contend for — so attempting the shards in order is equivalent
    /// to one global id-ordered pass.
    shard_queues: Vec<Vec<u32>>,
    /// Per-(src-shard, dst-shard) migration mailboxes at
    /// `src * shards + dst`: survivors whose new head crossed a shard
    /// boundary, drained in canonical shard-id order (merged back by id)
    /// at the allocation barrier. Empty between steps.
    shard_outboxes: Vec<Vec<u32>>,
    /// Per-shard buckets of woken slots (scratch for the sharded
    /// woken-merge). Empty between steps.
    shard_woken: Vec<Vec<u32>>,
    /// VC index → physical channel index. `vcs_per_channel` is a runtime
    /// value, so `v / vcs_per` in the per-move hot loops would compile to
    /// a hardware divide; this table is small enough to stay L1-resident.
    vc_chan: Vec<u32>,
    /// Frozen flattened candidate-VC list per message slot. While a
    /// message is parked nothing its routing relation reads can change
    /// (header position, selection-policy state, and — with fault caching
    /// disabled — the failed set), so the re-attempt after a wake reuses
    /// this list instead of re-running the routing relation. Invalidated
    /// on acquisition and on slot reuse; never valid in fault mode.
    cand_cache: Vec<Vec<u32>>,
    /// Validity flag per slot for [`Self::cand_cache`].
    cand_cache_valid: Vec<bool>,
    /// Frozen flattened candidate-VC list per injector node (valid while
    /// the source-queue front is unchanged; same rules as
    /// [`Self::cand_cache`]).
    inj_cand_cache: Vec<Vec<u32>>,
    /// Validity flag per node for [`Self::inj_cand_cache`].
    inj_cand_valid: Vec<bool>,
    /// Slots the release phase must visit this cycle (unordered; sorted).
    release_check: Vec<u32>,
    /// Slots whose release visit is deferred to the next cycle: the dense
    /// release phase only scans messages active at the *start* of a cycle,
    /// so a message that finishes injecting within its injection cycle is
    /// not visited (and its injection channel not freed) until the next
    /// one.
    release_deferred: Vec<u32>,
    /// Membership flags for [`Self::release_check`] ∪
    /// [`Self::release_deferred`].
    release_flag: Vec<bool>,
    /// Count of active messages with `blocked` set (both steppers).
    blocked_ctr: usize,

    /// When set, every event that can change a message's blocked
    /// wait-state (block/unblock, chain growth or release while blocked,
    /// recovery, drop, delivery) appends its id to
    /// [`Self::wait_dirty`]. Drained by
    /// [`Self::drain_wait_updates`](crate::snapshot) for the incremental
    /// detector. Off by default: a single `Vec` push per event, no
    /// other cost.
    pub(crate) wait_tracking: bool,
    /// Message ids whose wait-state may have changed since the last
    /// drain. Over-marking is fine (the drain re-extracts ground truth
    /// per id); duplicates are deduped at drain time.
    pub(crate) wait_dirty: Vec<MessageId>,
    /// Set when a fault transition changes the failed-channel map: the
    /// routing candidates of *every* blocked message may change, so the
    /// next drain re-extracts all of them.
    pub(crate) wait_dirty_all: bool,
    /// Scratch for [`drain_wait_updates`](Self::drain_wait_updates):
    /// one message's chain+requests.
    pub(crate) wait_buf: Vec<u32>,
    /// Scratch for the drain's candidate recomputation.
    pub(crate) wait_cand: Vec<Candidate>,

    /// Scratch: start-of-cycle occupancies.
    occ_start: Vec<u16>,
    /// Scratch: routing candidates.
    cand_buf: Vec<Candidate>,
    /// Optional event recorder.
    tracer: Option<crate::trace::Tracer>,

    /// Lifetime counters.
    pub(crate) total_generated: u64,
    pub(crate) total_injected: u64,
    pub(crate) total_delivered: u64,
    pub(crate) total_recovered: u64,
}

/// Builds the routing context for a message whose header sits at `current`.
pub(crate) fn ctx_of(msg: &Message, current: NodeId) -> RoutingCtx {
    RoutingCtx {
        src: msg.src,
        dst: msg.dst,
        current,
        last_dim: msg.last_dim,
        crossed_dateline: msg.crossed,
        misroutes: msg.misroutes,
    }
}

/// Fills `buf` with the (fault-filtered) candidates for `ctx`.
pub(crate) fn compute_candidates(
    topo: &KAryNCube,
    routing: &dyn RoutingAlgorithm,
    vcs_per: usize,
    failed: &[bool],
    ctx: &RoutingCtx,
    buf: &mut Vec<Candidate>,
) {
    buf.clear();
    routing.candidates(topo, vcs_per, ctx, buf);
    buf.retain(|c| !failed[c.channel.idx()]);
}

/// One decided flit movement, produced by the pure transfer-decision pass
/// and executed by the canonical apply pass: VC `v` (owned by message slot
/// `owner`) gains a flit that comes from VC `prev`, or from the source
/// queue when `prev == FROM_SOURCE`.
#[derive(Clone, Copy, Debug)]
struct Move {
    v: u32,
    owner: u32,
    prev: u32,
}

/// Output buffer of one transfer-decision pass: the decided moves in
/// ascending channel order, plus the channels whose sender was frozen (a
/// fault stall) and must stay on the active list. One buffer per decide
/// partition; the apply pass drains them in partition order, which keeps
/// the overall apply sequence ascending in channel id regardless of how
/// many partitions decided.
#[derive(Debug, Default)]
struct MoveBuf {
    moves: Vec<Move>,
    stalled: Vec<u32>,
}

/// Read-only view of everything the transfer-decision pass consumes. All
/// inputs are start-of-cycle state (`occ_start` is the occupancy snapshot;
/// `link_rr`, `msg_uninjected`, ownership and feed caches are unmodified
/// during deciding), so decisions are independent per channel: deciding a
/// channel set in any partitioning yields the same moves, which is what
/// makes the opt-in parallel decide digest-identical to the serial one.
struct TransferCtx<'a> {
    topo: &'a KAryNCube,
    occ_start: &'a [u16],
    vc_owner: &'a [u32],
    vc_feed: &'a [u32],
    msg_uninjected: &'a [u32],
    owned_per_channel: &'a [u16],
    link_rr: &'a [u8],
    stall_until: &'a [u64],
    chan_scan: &'a [u64],
    fault_mode: bool,
    cycle: u64,
    vcs_per: usize,
    depth: u16,
}

/// Pure transfer-decision pass over the word range `words` of
/// `ctx.chan_scan`: for each active channel, pick the one VC that carries
/// a flit this cycle (round-robin tie-break, start-of-cycle occupancies)
/// and record the move. Mutates nothing but `out`, so disjoint word
/// ranges can be decided concurrently and their buffers concatenated in
/// range order for a canonical apply.
fn decide_transfers(ctx: &TransferCtx<'_>, words: std::ops::Range<usize>, out: &mut MoveBuf) {
    for w in words {
        decide_word(ctx, w, ctx.chan_scan[w], out);
    }
}

/// [`decide_transfers`] over an arbitrary channel range. Shard channel
/// ranges follow node boundaries, which are not multiples of 64, so the
/// first and last scan words are masked down to the channels inside
/// `chans`; adjacent shards sharing a word each decide only their own
/// bits.
fn decide_transfers_masked(
    ctx: &TransferCtx<'_>,
    chans: std::ops::Range<usize>,
    out: &mut MoveBuf,
) {
    if chans.is_empty() {
        return;
    }
    let lo_w = chans.start >> 6;
    let hi_w = (chans.end - 1) >> 6;
    for w in lo_w..=hi_w {
        let mut word = ctx.chan_scan[w];
        if w == lo_w {
            word &= !0u64 << (chans.start & 63);
        }
        if w == hi_w {
            let used = chans.end - (w << 6);
            if used < 64 {
                word &= (1u64 << used) - 1;
            }
        }
        decide_word(ctx, w, word, out);
    }
}

/// Pure transfer decisions for the channels of scan word `w` selected by
/// `word` (a possibly masked copy of `ctx.chan_scan[w]`): the word-level
/// body shared by [`decide_transfers`] and [`decide_transfers_masked`].
#[inline]
fn decide_word(ctx: &TransferCtx<'_>, w: usize, word: u64, out: &mut MoveBuf) {
    {
        let mut word = word;
        let wbase = w << 6;
        while word != 0 {
            let ch = wbase + word.trailing_zeros() as usize;
            word &= word - 1;
            if ctx.owned_per_channel[ch] == 0 {
                continue;
            }
            if ctx.fault_mode
                && ctx.cycle < ctx.stall_until[ctx.topo.channel(ChannelId(ch as u32)).src.idx()]
            {
                // Frozen sender: nothing moves, but pending movement must
                // survive the stall — keep the channel on the active list.
                out.stalled.push(ch as u32);
                continue;
            }
            let base = ch * ctx.vcs_per;
            let start = ctx.link_rr[ch] as usize;
            for i in 0..ctx.vcs_per {
                // `start + i < 2 * vcs_per`, so one conditional subtract
                // replaces a hardware divide (`vcs_per` is not a constant).
                let mut off = start + i;
                if off >= ctx.vcs_per {
                    off -= ctx.vcs_per;
                }
                let v = base + off;
                let owner = ctx.vc_owner[v];
                if owner == NO_OWNER || ctx.occ_start[v] >= ctx.depth {
                    continue;
                }
                // The feed cache mirrors the owner's chain, so the movement
                // decision touches only the dense per-VC vectors — never
                // the message slab (the dense stepper still walks chains,
                // which keeps the differential tests validating the cache).
                let feed = ctx.vc_feed[v];
                let moved = if feed == FROM_SOURCE {
                    // Chain front: flits arrive from the source.
                    ctx.msg_uninjected[owner as usize] > 0
                } else {
                    ctx.occ_start[feed as usize] >= 1
                };
                if !moved {
                    continue;
                }
                out.moves.push(Move {
                    v: v as u32,
                    owner,
                    prev: feed,
                });
                break;
            }
        }
    }
}

impl Network {
    /// A new, empty network.
    pub fn new(topo: KAryNCube, routing: Box<dyn RoutingAlgorithm>, cfg: SimConfig) -> Self {
        cfg.validate();
        assert!(
            cfg.vcs_per_channel >= routing.min_vcs(),
            "{} requires at least {} VCs",
            routing.name(),
            routing.min_vcs()
        );
        let n_vcs = topo.num_channels() * cfg.vcs_per_channel;
        let n_nodes = topo.num_nodes();
        Network {
            vc_owner: vec![NO_OWNER; n_vcs],
            vc_occ: vec![0; n_vcs],
            vc_seq: vec![0; n_vcs],
            vc_feed: vec![NO_OWNER; n_vcs],
            vc_next: vec![NO_OWNER; n_vcs],
            msg_uninjected: Vec::new(),
            slot_id: Vec::new(),
            owned_per_channel: vec![0; topo.num_channels()],
            link_rr: vec![0; topo.num_channels()],
            reception_per_node: 1,
            injection_per_node: 1,
            reception: vec![NO_OWNER; n_nodes],
            injecting_count: vec![0; n_nodes],
            source_q: vec![VecDeque::new(); n_nodes],
            failed: vec![false; topo.num_channels()],
            fault_events: Vec::new(),
            fault_cursor: 0,
            fault_mode: false,
            stall_until: vec![0; n_nodes],
            inj_down_until: vec![0; n_nodes],
            stranded: Vec::new(),
            total_fault_losses: 0,
            total_fault_rejected: 0,
            messages: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            active_idx: Vec::new(),
            id_map: IdMap::default(),
            next_id: 0,
            step_order: Vec::new(),
            mode: StepMode::Unset,
            alloc_queue: Vec::new(),
            alloc_scratch: Vec::new(),
            woken: Vec::new(),
            alloc_state: Vec::new(),
            inj_state: vec![InjState::Idle; n_nodes],
            inj_ready: Vec::new(),
            wake_lists: vec![Vec::new(); n_vcs + n_nodes],
            msg_watches: Vec::new(),
            inj_watches: vec![Vec::new(); n_nodes],
            chan_words: vec![0; topo.num_channels().div_ceil(64)],
            chan_scan: vec![0; topo.num_channels().div_ceil(64)],
            drain_list: Vec::new(),
            drain_idx: Vec::new(),
            drain_head: Vec::new(),
            occ_dirty_words: vec![0; n_vcs.div_ceil(64)],
            xfer_bufs: vec![MoveBuf::default()],
            transfer_threads: 1,
            shards: 1,
            shard_plan: None,
            shard_workers: 1,
            shard_active: false,
            shard_queues: Vec::new(),
            shard_outboxes: Vec::new(),
            shard_woken: Vec::new(),
            vc_chan: (0..n_vcs)
                .map(|v| (v / cfg.vcs_per_channel) as u32)
                .collect(),
            cand_cache: Vec::new(),
            cand_cache_valid: Vec::new(),
            inj_cand_cache: vec![Vec::new(); n_nodes],
            inj_cand_valid: vec![false; n_nodes],
            release_check: Vec::new(),
            release_deferred: Vec::new(),
            release_flag: vec![],
            blocked_ctr: 0,
            wait_tracking: false,
            wait_dirty: Vec::new(),
            wait_dirty_all: false,
            wait_buf: Vec::new(),
            wait_cand: Vec::new(),
            occ_start: vec![0; n_vcs],
            cand_buf: Vec::new(),
            tracer: None,
            total_generated: 0,
            total_injected: 0,
            total_delivered: 0,
            total_recovered: 0,
            topo,
            routing,
            cfg,
            cycle: 0,
        }
    }

    /// The network's topology.
    pub fn topology(&self) -> &KAryNCube {
        &self.topo
    }

    /// The routing relation in use.
    pub fn routing(&self) -> &dyn RoutingAlgorithm {
        &*self.routing
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Virtual channels per physical channel.
    #[inline]
    pub(crate) fn vcs_per(&self) -> usize {
        self.cfg.vcs_per_channel
    }

    /// Total VC count (also the base of the reception wake resources).
    #[inline]
    fn num_vcs(&self) -> usize {
        self.vc_owner.len()
    }

    /// Queues a message for injection at `src` with the configured default
    /// length. It holds no resource until its header acquires a first VC
    /// during a later [`step`](Self::step).
    pub fn enqueue(&mut self, src: NodeId, dst: NodeId) {
        self.enqueue_with_len(src, dst, self.cfg.msg_len);
    }

    /// Queues a message with an explicit length in flits — hybrid-length
    /// workloads (the paper's §5 future-work item) mix short and long
    /// messages in one run.
    pub fn enqueue_with_len(&mut self, src: NodeId, dst: NodeId, len: usize) {
        assert_ne!(src, dst, "messages must leave their source");
        assert!(src.idx() < self.topo.num_nodes());
        assert!(dst.idx() < self.topo.num_nodes());
        assert!(len >= 1 && len <= u32::MAX as usize, "bad message length");
        self.source_q[src.idx()].push_back(Pending {
            dst,
            born: self.cycle,
            len: len as u32,
        });
        self.total_generated += 1;
        // Activity engine: an idle node with traffic and a free injection
        // channel belongs on the ready list. (A parked node stays parked:
        // its queue front — the only injectable message — is unchanged.)
        let n = src.idx();
        if self.inj_state[n] == InjState::Idle
            && (self.injecting_count[n] as usize) < self.injection_per_node
        {
            self.inj_state[n] = InjState::Ready;
            self.inj_ready.push(n as u32);
        }
    }

    /// Gives every node `injection` injection channels and `reception`
    /// reception channels (the paper's §3 default is one of each).
    /// Must be called before any traffic enters the network.
    pub fn with_endpoint_channels(mut self, injection: usize, reception: usize) -> Self {
        assert!(injection >= 1 && injection <= u8::MAX as usize);
        assert!(reception >= 1);
        assert_eq!(self.cycle, 0, "configure endpoints before stepping");
        assert!(self.active.is_empty() && self.source_queued() == 0);
        self.injection_per_node = injection;
        self.reception_per_node = reception;
        self.reception = vec![NO_OWNER; self.topo.num_nodes() * reception];
        self
    }

    /// Turns on event tracing with a bounded buffer; see
    /// [`TraceEvent`](crate::TraceEvent). Replaces any previous trace.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(crate::trace::Tracer::new(capacity));
    }

    /// Drains recorded events; the second value counts events dropped at
    /// capacity. Panics if tracing was never enabled.
    pub fn take_trace(&mut self) -> (Vec<crate::TraceEvent>, u64) {
        self.tracer.as_mut().expect("tracing not enabled").take()
    }

    /// Marks a physical channel as failed: it is filtered from every
    /// routing candidate set from now on. Panics if the channel currently
    /// carries traffic.
    pub fn fail_channel(&mut self, ch: ChannelId) {
        let base = ch.idx() * self.vcs_per();
        for v in 0..self.vcs_per() {
            assert!(
                self.vc_owner[base + v] == NO_OWNER,
                "cannot fail a channel in use"
            );
        }
        self.failed[ch.idx()] = true;
        // Any blocked header may have held this channel's VCs in its
        // candidate set, so every wait record is suspect.
        if self.wait_tracking {
            self.wait_dirty_all = true;
        }
    }

    /// Sets the number of decide partitions for the activity transfer
    /// phase. With the `parallel` cargo feature, values above 1 fan the
    /// pure transfer-decision pass out over `n` contiguous word ranges of
    /// the active-channel bitset on scoped OS threads; the apply pass
    /// stays serial and canonical (ascending channel order), so every
    /// observable — events, traces, counters, digests — is byte-identical
    /// to the single-threaded engine. Without the feature the call is a
    /// no-op (the engine stays serial); fault-mode instances always
    /// decide serially regardless. Threads are scoped per cycle, so this
    /// pays off only when per-cycle decide work is large relative to
    /// spawn cost (big networks at deep saturation).
    ///
    /// Returns the **effective** value, so callers on a serial build (or
    /// requesting more than the engine honors) can surface the downgrade
    /// instead of silently running serial.
    pub fn set_transfer_threads(&mut self, n: usize) -> usize {
        if cfg!(feature = "parallel") {
            self.transfer_threads = n.max(1);
        }
        self.transfer_threads
    }

    /// Current decide-partition count for the transfer phase.
    pub fn transfer_threads(&self) -> usize {
        self.transfer_threads
    }

    /// Sets the logical shard count for the sharded engine and returns
    /// the **effective** value.
    ///
    /// With the `parallel` cargo feature, values above 1 partition the
    /// network into that many contiguous spatial shards (clamped to the
    /// node count): each cycle, allocation walks the per-shard runnable
    /// queues in shard order — equivalent to the serial global id order
    /// because a header only ever contends for resources of the node it
    /// sits at, which belong to exactly one shard — with boundary
    /// crossings exchanged through per-(src, dst) mailboxes at the cycle
    /// barrier, and the pure transfer-decide pass fans out one partition
    /// per shard (on scoped threads when the host has spare cores, inline
    /// otherwise). Every observable — events, counters, digests — is
    /// byte-identical to the serial engine at any shard count; the
    /// invariance suite enforces this.
    ///
    /// Without the feature the call is a no-op and returns 1. Fault-plan
    /// or tracing runs fall back to the serial path regardless (latched
    /// at the first step). Must be called before stepping.
    pub fn set_shards(&mut self, n: usize) -> usize {
        assert_eq!(self.cycle, 0, "configure shards before stepping");
        if cfg!(feature = "parallel") {
            let plan = ShardPlan::new(&self.topo, n.max(1));
            self.shards = plan.shards();
            if self.shards > 1 {
                self.shard_queues = vec![Vec::new(); self.shards];
                self.shard_outboxes = vec![Vec::new(); self.shards * self.shards];
                self.shard_woken = vec![Vec::new(); self.shards];
                self.shard_workers = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(self.shards);
                self.shard_plan = Some(plan);
            } else {
                self.shard_plan = None;
                self.shard_workers = 1;
                self.shard_queues.clear();
                self.shard_outboxes.clear();
                self.shard_woken.clear();
            }
        }
        self.shards
    }

    /// Current logical shard count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The spatial partition backing the sharded path, when one is
    /// installed (used by the runner to assemble the detection snapshot
    /// from per-shard fragments).
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_plan.as_ref()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a fault schedule. Must be called before the first step;
    /// the plan is validated against this network's shape and applied in
    /// canonical order as cycles reach its events — identically by both
    /// steppers, so faulted runs stay byte-identical across engines.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        assert_eq!(self.cycle, 0, "install the fault plan before stepping");
        plan.validate(self.topo.num_channels(), self.topo.num_nodes());
        self.fault_events = plan.normalized();
        self.fault_cursor = 0;
        self.fault_mode = !self.fault_events.is_empty();
    }

    /// Lifetime `(fault losses, source rejections)`: in-network messages
    /// dropped by faults, and queued messages rejected as unroutable.
    pub fn fault_totals(&self) -> (u64, u64) {
        (self.total_fault_losses, self.total_fault_rejected)
    }

    /// Applies every fault event due this cycle, then resolves messages
    /// recorded as stranded last cycle. Runs at the very start of a cycle
    /// in both steppers, before any phase, so drops and wakes are visible
    /// to the whole cycle identically.
    fn apply_due_faults(&mut self, events: &mut StepEvents) {
        if !self.fault_mode {
            return;
        }
        while let Some(&e) = self.fault_events.get(self.fault_cursor) {
            if e.cycle > self.cycle {
                break;
            }
            self.fault_cursor += 1;
            match e.kind {
                FaultKind::LinkDown { channel } => self.apply_link_down(channel as usize, events),
                FaultKind::LinkUp { channel } => self.apply_link_up(channel as usize),
                FaultKind::NodeStall { node, cycles } => {
                    let until = self.cycle + cycles;
                    let s = &mut self.stall_until[node as usize];
                    *s = (*s).max(until);
                }
                FaultKind::InjectorDown { node, cycles } => {
                    let until = self.cycle + cycles;
                    let s = &mut self.inj_down_until[node as usize];
                    *s = (*s).max(until);
                }
            }
        }
        self.resolve_stranded(events);
    }

    /// Channel goes down: it leaves every candidate set (the shared
    /// `compute_candidates` filter) and every message holding one of its
    /// VCs is dropped, oldest first.
    fn apply_link_down(&mut self, ch: usize, events: &mut StepEvents) {
        if self.failed[ch] {
            return;
        }
        self.failed[ch] = true;
        // Every blocked message's fault-filtered candidate set may have
        // shrunk: re-extract all of them at the next drain.
        self.wait_dirty_all = true;
        let vcs_per = self.vcs_per();
        let base = ch * vcs_per;
        let mut victims: Vec<u32> = (base..base + vcs_per)
            .filter_map(|v| {
                let o = self.vc_owner[v];
                (o != NO_OWNER).then_some(o)
            })
            .collect();
        victims.sort_unstable_by_key(|&s| self.slot_id[s as usize]);
        victims.dedup();
        for slot in victims {
            self.drop_message(slot, events);
        }
    }

    /// Channel comes back up. Its VCs are already free (their owners were
    /// dropped when it went down, and a failed channel cannot be
    /// acquired), so only the activity engine needs wakes: anything that
    /// may now route over the channel gets one conservative re-attempt (a
    /// spurious wake is harmless — the attempt just re-parks).
    fn apply_link_up(&mut self, ch: usize) {
        if !self.failed[ch] {
            return;
        }
        self.failed[ch] = false;
        // Blocked candidate sets may have grown back.
        self.wait_dirty_all = true;
        if self.mode == StepMode::Dense {
            return;
        }
        let vcs_per = self.vcs_per();
        let src = self.topo.channel(ChannelId(ch as u32)).src;
        // Parked routing messages whose header sits at the channel's
        // source: their frozen candidate set may have grown back.
        let mut woke: Vec<u32> = Vec::new();
        for &slot in &self.active {
            if self.alloc_state[slot as usize] != AllocState::Parked {
                continue;
            }
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            let &head = msg.chain.back().expect("routing message owns its head VC");
            if self.topo.channel(ChannelId(head / vcs_per as u32)).dst == src {
                woke.push(slot);
            }
        }
        for slot in woke {
            self.unpark(slot);
            self.alloc_state[slot as usize] = AllocState::Queued;
            self.woken.push(slot);
        }
        let n = src.idx();
        if self.inj_state[n] == InjState::Parked {
            self.unpark(INJECTOR | n as u32);
            self.inj_state[n] = InjState::Ready;
            self.inj_ready.push(n as u32);
        }
    }

    /// Resolves last cycle's stranded discoveries: a message whose
    /// fault-filtered candidate set is still empty is dropped (a counted
    /// fault loss); one revived by a `LinkUp` goes back to work.
    fn resolve_stranded(&mut self, events: &mut StepEvents) {
        if self.stranded.is_empty() {
            return;
        }
        let mut stranded = std::mem::take(&mut self.stranded);
        for &(slot, id) in &stranded {
            // The slot may be gone (dropped with its channel) or pulled
            // into recovery; both supersede the stranding.
            let here = match self.messages.get(slot as usize).and_then(|m| m.as_ref()) {
                Some(msg) if msg.id == id && msg.phase == MsgPhase::Routing => {
                    let &head = msg.chain.back().expect("routing message owns its head VC");
                    self.topo
                        .channel(ChannelId(head / self.vcs_per() as u32))
                        .dst
                }
                _ => continue,
            };
            let ctx = {
                let msg = self.messages[slot as usize].as_ref().expect("slot live");
                ctx_of(msg, here)
            };
            let mut cand = std::mem::take(&mut self.cand_buf);
            compute_candidates(
                &self.topo,
                &*self.routing,
                self.vcs_per(),
                &self.failed,
                &ctx,
                &mut cand,
            );
            let routable = !cand.is_empty();
            self.cand_buf = cand;
            if routable {
                if self.mode != StepMode::Dense
                    && self.alloc_state[slot as usize] == AllocState::Parked
                {
                    self.unpark(slot);
                    self.alloc_state[slot as usize] = AllocState::Queued;
                    self.woken.push(slot);
                }
                continue;
            }
            self.drop_message(slot, events);
        }
        stranded.clear();
        self.stranded = stranded;
    }

    /// Removes an active message hit by a fault: every held resource is
    /// freed (with wakes in activity mode), stale scheduler entries are
    /// purged, and the loss is counted and traced. Nothing is delivered.
    fn drop_message(&mut self, slot: u32, events: &mut StepEvents) {
        let s = slot as usize;
        if self.mode != StepMode::Dense {
            self.unpark(slot);
            // The slot may be recycled by an injection later this very
            // cycle: no runnable or release entry may survive pointing at
            // it.
            self.alloc_queue.retain(|&x| x != slot);
            self.woken.retain(|&x| x != slot);
        }
        if self.release_flag[s] {
            self.release_flag[s] = false;
            self.release_check.retain(|&x| x != slot);
            self.release_deferred.retain(|&x| x != slot);
        }
        let (id, src, chain, reception, held_injection, was_blocked) = {
            let msg = self.messages[s].as_mut().expect("dropped slot live");
            let chain: Vec<u32> = msg.chain.iter().copied().collect();
            msg.chain.clear();
            let reception = (msg.phase == MsgPhase::Ejecting)
                .then(|| msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize);
            let held = msg.holds_injection;
            msg.holds_injection = false;
            let blocked = msg.blocked;
            msg.blocked = false;
            msg.blocked_since = None;
            (msg.id, msg.src, chain, reception, held, blocked)
        };
        if was_blocked {
            self.blocked_ctr -= 1;
        }
        if self.wait_tracking {
            self.wait_dirty.push(id);
        }
        if held_injection {
            let node = src.idx();
            self.injecting_count[node] -= 1;
            if self.mode != StepMode::Dense
                && self.inj_state[node] == InjState::Idle
                && !self.source_q[node].is_empty()
            {
                self.inj_state[node] = InjState::Ready;
                self.inj_ready.push(node as u32);
            }
        }
        for &v in &chain {
            debug_assert_eq!(self.vc_owner[v as usize], slot);
            self.vc_owner[v as usize] = NO_OWNER;
            self.vc_occ[v as usize] = 0;
            self.vc_feed[v as usize] = NO_OWNER;
            self.vc_next[v as usize] = NO_OWNER;
            self.owned_per_channel[self.vc_chan[v as usize] as usize] -= 1;
            if self.mode != StepMode::Dense {
                self.mark_occ_dirty(v);
                self.wake_resource(v);
            }
        }
        let freed_node = reception.map(|r| {
            debug_assert_eq!(self.reception[r], slot);
            self.reception[r] = NO_OWNER;
            r / self.reception_per_node
        });
        if let Some(t) = self.tracer.as_mut() {
            t.push(crate::TraceEvent::FaultLoss {
                cycle: self.cycle,
                id,
            });
        }
        events.fault_losses += 1;
        self.total_fault_losses += 1;
        self.finish_slot(slot);
        if self.mode != StepMode::Dense {
            if let Some(node) = freed_node {
                self.wake_resource((self.num_vcs() + node) as u32);
            }
        }
    }

    /// Switches a blocked message onto the recovery lane (synthesized Disha
    /// recovery): its flits drain one per cycle from wherever the header
    /// sits, releasing VCs as the tail passes, and it counts as delivered
    /// (recovered) when the last flit exits. Returns `false` when the
    /// message is not active or not in the `Routing` phase.
    pub fn start_recovery(&mut self, id: MessageId) -> bool {
        let Some(slot) = self.id_map.get(id) else {
            return false;
        };
        {
            let msg = self.messages[slot as usize].as_mut().expect("slot live");
            if msg.phase != MsgPhase::Routing {
                return false;
            }
            msg.phase = MsgPhase::Recovering;
            if msg.blocked {
                self.blocked_ctr -= 1;
            }
            msg.blocked = false;
            msg.blocked_since = None;
            if let Some(t) = self.tracer.as_mut() {
                t.push(crate::TraceEvent::RecoveryStart {
                    cycle: self.cycle,
                    id,
                });
            }
        }
        if self.wait_tracking {
            self.wait_dirty.push(id);
        }
        if self.mode != StepMode::Dense {
            // Pull the message out of the allocation machinery and onto the
            // drain list. A `Queued` entry stays in `alloc_queue` (or its
            // shard queue) / `woken` and is dropped by the state check at
            // the next pass, before the slot can ever be recycled.
            if self.alloc_state[slot as usize] == AllocState::Parked {
                self.unpark(slot);
            }
            self.alloc_state[slot as usize] = AllocState::Inactive;
            self.drain_push(slot);
        }
        true
    }

    /// Messages currently holding network resources.
    pub fn in_network(&self) -> usize {
        self.active.len()
    }

    /// Active messages whose header acquisition failed this cycle. O(1):
    /// maintained as a counter on blocked transitions.
    pub fn blocked_count(&self) -> usize {
        self.blocked_ctr
    }

    /// Messages waiting in source queues.
    pub fn source_queued(&self) -> usize {
        self.source_q.iter().map(|q| q.len()).sum()
    }

    /// Lifetime (generated, injected, delivered, recovered) counters.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.total_generated,
            self.total_injected,
            self.total_delivered,
            self.total_recovered,
        )
    }

    /// Ids of active messages, oldest first.
    pub fn active_ids(&self) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = self
            .active
            .iter()
            .map(|&s| self.messages[s as usize].as_ref().unwrap().id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Read-only view of an active message.
    pub fn message_info(&self, id: MessageId) -> Option<MessageInfo> {
        let slot = self.id_map.get(id)?;
        self.messages[slot as usize]
            .as_ref()
            .map(|m| MessageInfo::of(m, self.msg_uninjected[slot as usize]))
    }

    /// Rebuilds the per-step age-order view of `active` (oldest id first).
    /// Messages injected later this cycle are deliberately absent: on their
    /// injection cycle they are no-ops in every later phase (header flit
    /// not yet buffered, `uninjected > 0`).
    fn rebuild_step_order(&mut self) {
        self.step_order.clear();
        self.step_order.extend_from_slice(&self.active);
        let slot_id = &self.slot_id;
        self.step_order
            .sort_unstable_by_key(|&s| slot_id[s as usize]);
    }

    /// Simulates one cycle with the activity-driven engine: only ready
    /// injectors, runnable messages, active channels, and triggered
    /// releases are visited. Byte-identical to
    /// [`step_reference`](Self::step_reference) — same arbitration order,
    /// events, traces, and counters — which the differential tests enforce.
    pub fn step(&mut self) -> StepEvents {
        assert_ne!(
            self.mode,
            StepMode::Dense,
            "instance already stepped with step_reference; steppers cannot be mixed"
        );
        if self.mode == StepMode::Unset {
            self.mode = StepMode::Activity;
            // Latch the sharded path once: fault plans must be installed
            // before stepping, and faulted or traced runs take the serial
            // path (their per-cycle fault checks and trace streams are
            // defined in global id order).
            self.shard_active = self.shards > 1 && !self.fault_mode && self.tracer.is_none();
        }
        let mut events = StepEvents::default();
        self.apply_due_faults(&mut events);
        // Visits deferred from last cycle (injection completed in the
        // injection cycle) come due now; their release flags stay set so
        // this cycle's transfer triggers cannot double-add them.
        debug_assert!(self.release_check.is_empty());
        std::mem::swap(&mut self.release_check, &mut self.release_deferred);
        if self.shard_active {
            self.merge_woken_sharded();
        } else {
            self.merge_woken();
        }
        self.activity_injections(&mut events);
        if self.shard_active {
            self.sharded_next_hops();
        } else {
            self.activity_next_hops();
        }
        self.activity_transfer(&mut events);
        self.activity_release(&mut events);
        self.cycle += 1;
        events
    }

    /// Simulates one cycle with the dense reference stepper: every node,
    /// active message, and channel is scanned, exactly as the original
    /// engine did. Kept as the semantic baseline the activity engine is
    /// differentially tested (and benchmarked) against. An instance must
    /// use one stepper exclusively.
    pub fn step_reference(&mut self) -> StepEvents {
        assert_ne!(
            self.mode,
            StepMode::Activity,
            "instance already stepped with step; steppers cannot be mixed"
        );
        self.mode = StepMode::Dense;
        let mut events = StepEvents::default();
        self.apply_due_faults(&mut events);
        self.rebuild_step_order();
        self.reference_injections(&mut events);
        self.reference_next_hops();
        self.reference_transfer(&mut events);
        self.reference_release(&mut events);
        self.cycle += 1;
        events
    }

    // ------------------------------------------------------------------
    // Phase 1: allocation (dense reference)
    // ------------------------------------------------------------------

    /// Source-queue heads try to acquire their first VC (which implicitly
    /// claims the node's single injection channel).
    fn reference_injections(&mut self, events: &mut StepEvents) {
        for node in 0..self.topo.num_nodes() {
            if self.fault_mode
                && (self.cycle < self.stall_until[node] || self.cycle < self.inj_down_until[node])
            {
                // Router stall or injector outage: nothing enters here.
                continue;
            }
            // One acquisition attempt per free injection channel per cycle.
            while (self.injecting_count[node] as usize) < self.injection_per_node {
                match self.try_inject_one(node, events) {
                    // A rejected front frees no resource and pops the
                    // queue, so the next front gets its attempt.
                    InjectOutcome::Injected | InjectOutcome::Rejected => {}
                    InjectOutcome::EmptyQueue | InjectOutcome::NoFreeVc => break,
                }
            }
        }
    }

    /// Attempts to start the queue-front message at `node` (shared by both
    /// steppers). On [`InjectOutcome::NoFreeVc`] the message stays queued
    /// holding nothing, and `cand_buf` still lists its candidates.
    fn try_inject_one(&mut self, node: usize, events: &mut StepEvents) -> InjectOutcome {
        let Some(&Pending { dst, born, len }) = self.source_q[node].front() else {
            return InjectOutcome::EmptyQueue;
        };
        let src = NodeId(node as u32);
        let free = if self.inj_cand_valid[node] {
            // Frozen candidates: the queue front (and everything the
            // routing relation reads for a fresh injection) is unchanged
            // since this set was computed, so skip the relation and scan
            // the flattened list. Same nested order as `first_free_vc`
            // over the recomputed set, so the same VC wins.
            self.inj_cand_cache[node]
                .iter()
                .copied()
                .find(|&v| self.vc_owner[v as usize] == NO_OWNER)
        } else {
            compute_candidates(
                &self.topo,
                &*self.routing,
                self.cfg.vcs_per_channel,
                &self.failed,
                &RoutingCtx::fresh(src, dst, src),
                &mut self.cand_buf,
            );
            if self.fault_mode && self.cand_buf.is_empty() {
                // First hop unroutable under the active fault set: reject at
                // the source (counted; the message never enters the network).
                self.source_q[node].pop_front();
                self.total_fault_rejected += 1;
                events.fault_rejected += 1;
                return InjectOutcome::Rejected;
            }
            first_free_vc(&self.vc_owner, self.cfg.vcs_per_channel, &self.cand_buf)
        };
        let Some(vc_idx) = free else {
            if !self.fault_mode && !self.inj_cand_valid[node] {
                // Freeze the flattened set for re-attempts while parked.
                let vcs_per = self.cfg.vcs_per_channel;
                self.inj_cand_cache[node].clear();
                for c in &self.cand_buf {
                    let base = c.channel.idx() * vcs_per;
                    for v in c.vcs.iter() {
                        self.inj_cand_cache[node].push((base + v) as u32);
                    }
                }
                self.inj_cand_valid[node] = true;
            }
            return InjectOutcome::NoFreeVc;
        };
        self.inj_cand_valid[node] = false;

        {
            self.source_q[node].pop_front();
            let id = self.next_id;
            self.next_id += 1;
            let slot = match self.free_slots.pop() {
                Some(s) => s,
                None => {
                    self.messages.push(None);
                    (self.messages.len() - 1) as u32
                }
            };
            let mut msg = Message {
                id,
                src,
                dst,
                len,
                born,
                injected_at: self.cycle,
                chain: VecDeque::new(),
                front_seq: 0,
                next_seq: 0,
                delivered: 0,
                phase: MsgPhase::Routing,
                blocked: false,
                blocked_since: None,
                last_dim: None,
                crossed: 0,
                misroutes: 0,
                holds_injection: true,
                reception_slot: 0,
            };
            acquire_vc(
                VcState {
                    owner: &mut self.vc_owner,
                    seq: &mut self.vc_seq,
                    feed: &mut self.vc_feed,
                    next: &mut self.vc_next,
                    owned_per_channel: &mut self.owned_per_channel,
                },
                &self.topo,
                self.cfg.vcs_per_channel,
                &mut msg,
                vc_idx,
                slot,
            );
            if let Some(t) = self.tracer.as_mut() {
                t.push(crate::TraceEvent::Injected {
                    cycle: self.cycle,
                    id,
                    src,
                    dst,
                    len,
                });
                t.push(crate::TraceEvent::Acquired {
                    cycle: self.cycle,
                    id,
                    channel: ChannelId(vc_idx / self.cfg.vcs_per_channel as u32),
                    vc: (vc_idx as usize % self.cfg.vcs_per_channel) as u8,
                });
            }
            self.messages[slot as usize] = Some(msg);
            self.id_map.push(id, slot);
            self.injecting_count[node] += 1;
            if self.active_idx.len() <= slot as usize {
                let n = slot as usize + 1;
                self.active_idx.resize(n, NO_OWNER);
                self.alloc_state.resize(n, AllocState::Inactive);
                self.drain_idx.resize(n, NO_OWNER);
                self.release_flag.resize(n, false);
                self.msg_watches.resize_with(n, Vec::new);
                self.msg_uninjected.resize(n, 0);
                self.slot_id.resize(n, 0);
                self.cand_cache.resize_with(n, Vec::new);
                self.cand_cache_valid.resize(n, false);
            }
            // A recycled slot may carry a stale frozen candidate set from
            // its previous occupant (e.g. one pulled into recovery while
            // parked); the new message must start uncached.
            self.cand_cache_valid[slot as usize] = false;
            self.msg_uninjected[slot as usize] = len;
            self.slot_id[slot as usize] = id;
            self.active_idx[slot as usize] = self.active.len() as u32;
            self.active.push(slot);
            self.total_injected += 1;
            events.injected += 1;
            // Activity engine: the new message is runnable (a same-cycle
            // no-op: its head VC fills only during this cycle's transfer),
            // and its freshly acquired VC may carry a flit this cycle.
            // Appending keeps the queue id-sorted (ids are monotone); in
            // sharded mode the slot joins the shard owning the first-hop
            // channel's destination node — where its header will sit.
            if self.mode == StepMode::Activity {
                self.alloc_state[slot as usize] = AllocState::Queued;
                let ch = vc_idx as usize / self.cfg.vcs_per_channel;
                if self.shard_active {
                    let shard = self
                        .shard_plan
                        .as_ref()
                        .expect("sharded step without a plan")
                        .shard_of_chan_dst(ChannelId(ch as u32));
                    self.shard_queues[shard].push(slot);
                } else {
                    self.alloc_queue.push(slot);
                }
                self.activate_channel(ch);
            }
        }
        InjectOutcome::Injected
    }

    /// In-flight headers try to acquire their next VC, or the reception
    /// channel at the destination. Oldest message first (age priority).
    fn reference_next_hops(&mut self) {
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");
            if msg.phase != MsgPhase::Routing {
                continue;
            }
            let &head_vc = msg.chain.back().expect("routing message owns its head VC");
            if self.vc_occ[head_vc as usize] == 0 {
                // Header flit still in flight towards this buffer.
                debug_assert!(!msg.blocked, "blocked header always has a buffered flit");
                msg.blocked = false;
                continue;
            }
            let here = self
                .topo
                .channel(ChannelId(head_vc / self.cfg.vcs_per_channel as u32))
                .dst;
            if self.fault_mode && self.cycle < self.stall_until[here.idx()] {
                // Frozen router: no allocation is performed at this node.
                continue;
            }

            if here == msg.dst {
                let base = here.idx() * self.reception_per_node;
                let free =
                    (0..self.reception_per_node).find(|&r| self.reception[base + r] == NO_OWNER);
                if let Some(r) = free {
                    self.reception[base + r] = slot;
                    msg.reception_slot = r as u8;
                    msg.phase = MsgPhase::Ejecting;
                    if msg.blocked {
                        self.blocked_ctr -= 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                    }
                    msg.blocked = false;
                    msg.blocked_since = None;
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(crate::TraceEvent::EjectStart {
                            cycle: self.cycle,
                            id: msg.id,
                        });
                    }
                } else if !msg.blocked {
                    msg.blocked = true;
                    msg.blocked_since = Some(self.cycle);
                    self.blocked_ctr += 1;
                    if self.wait_tracking {
                        self.wait_dirty.push(msg.id);
                    }
                    if let Some(t) = self.tracer.as_mut() {
                        // Waiting on the destination's reception channels,
                        // not on any link.
                        t.push(crate::TraceEvent::Blocked {
                            cycle: self.cycle,
                            id: msg.id,
                            at: here,
                            candidates: Vec::new(),
                        });
                    }
                }
                continue;
            }

            compute_candidates(
                &self.topo,
                &*self.routing,
                self.cfg.vcs_per_channel,
                &self.failed,
                &ctx_of(msg, here),
                &mut self.cand_buf,
            );
            match first_free_vc(&self.vc_owner, self.cfg.vcs_per_channel, &self.cand_buf) {
                Some(vc_idx) => {
                    if msg.blocked {
                        self.blocked_ctr -= 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                    }
                    acquire_vc(
                        VcState {
                            owner: &mut self.vc_owner,
                            seq: &mut self.vc_seq,
                            feed: &mut self.vc_feed,
                            next: &mut self.vc_next,
                            owned_per_channel: &mut self.owned_per_channel,
                        },
                        &self.topo,
                        self.cfg.vcs_per_channel,
                        msg,
                        vc_idx,
                        slot,
                    );
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(crate::TraceEvent::Acquired {
                            cycle: self.cycle,
                            id: msg.id,
                            channel: ChannelId(vc_idx / self.cfg.vcs_per_channel as u32),
                            vc: (vc_idx as usize % self.cfg.vcs_per_channel) as u8,
                        });
                    }
                }
                None => {
                    if !msg.blocked {
                        msg.blocked = true;
                        msg.blocked_since = Some(self.cycle);
                        self.blocked_ctr += 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                        if let Some(t) = self.tracer.as_mut() {
                            t.push(crate::TraceEvent::Blocked {
                                cycle: self.cycle,
                                id: msg.id,
                                at: here,
                                candidates: self.cand_buf.iter().map(|c| c.channel).collect(),
                            });
                        }
                    }
                    if self.fault_mode && self.cand_buf.is_empty() {
                        // Unroutable under the active fault set: resolved
                        // (dropped, or spared by a LinkUp) at the start of
                        // the next cycle, identically in both steppers.
                        self.stranded.push((slot, msg.id));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: transfer (dense reference)
    // ------------------------------------------------------------------

    fn reference_transfer(&mut self, events: &mut StepEvents) {
        // Snapshot start-of-cycle occupancies: every decision below reads
        // these, so a flit advances at most one hop per cycle and buffer
        // space freed this cycle is only visible next cycle.
        self.occ_start.copy_from_slice(&self.vc_occ);
        let vcs_per = self.cfg.vcs_per_channel;
        let depth = self.cfg.buffer_depth as u16;

        // Link transfers: at most one flit per physical channel per cycle.
        for ch in 0..self.topo.num_channels() {
            if self.owned_per_channel[ch] == 0 {
                continue;
            }
            if self.fault_mode
                && self.cycle < self.stall_until[self.topo.channel(ChannelId(ch as u32)).src.idx()]
            {
                // The sending router is frozen: no flit moves on its links.
                continue;
            }
            let base = ch * vcs_per;
            let start = self.link_rr[ch] as usize;
            for i in 0..vcs_per {
                let off = (start + i) % vcs_per;
                let v = base + off;
                let owner = self.vc_owner[v];
                if owner == NO_OWNER || self.occ_start[v] >= depth {
                    continue;
                }
                let seq = self.vc_seq[v];
                let msg = self.messages[owner as usize].as_ref().expect("owner live");
                let moved = if seq == msg.front_seq {
                    // Tail-most owned VC: flits arrive from the source.
                    if self.msg_uninjected[owner as usize] > 0 {
                        self.msg_uninjected[owner as usize] -= 1;
                        true
                    } else {
                        false
                    }
                } else {
                    let pos = (seq - msg.front_seq) as usize;
                    let prev = msg.chain[pos - 1] as usize;
                    if self.occ_start[prev] >= 1 {
                        self.vc_occ[prev] -= 1;
                        true
                    } else {
                        false
                    }
                };
                if moved {
                    self.vc_occ[v] += 1;
                    events.link_flits += 1;
                    self.link_rr[ch] = ((off + 1) % vcs_per) as u8;
                    break;
                }
            }
        }

        // Ejection and recovery drains: one flit per cycle per message.
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");
            if msg.phase == MsgPhase::Routing {
                continue;
            }
            let &head = msg
                .chain
                .back()
                .expect("draining message still owns its head VC");
            if self.fault_mode {
                let drain_node = self.topo.channel(ChannelId(head / vcs_per as u32)).dst;
                if self.cycle < self.stall_until[drain_node.idx()] {
                    // The draining router is frozen.
                    continue;
                }
            }
            if self.occ_start[head as usize] >= 1 {
                self.vc_occ[head as usize] -= 1;
                msg.delivered += 1;
                events.drained_flits += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: release & completion
    // ------------------------------------------------------------------

    /// Unlinks `slot` from the active list in O(1) (swap-remove through the
    /// slot → index back-map) and recycles its storage.
    fn finish_slot(&mut self, slot: u32) {
        let msg = self.messages[slot as usize].take().expect("finished slot");
        debug_assert!(!msg.blocked, "draining messages are never blocked");
        if self.wait_tracking {
            // Conservative: the id leaves the network entirely; the drain
            // resolves it to a clear (id_map lookup misses).
            self.wait_dirty.push(msg.id);
        }
        self.id_map.remove(msg.id);
        let i = self.active_idx[slot as usize] as usize;
        debug_assert_eq!(self.active[i], slot);
        self.active.swap_remove(i);
        if let Some(&moved) = self.active.get(i) {
            self.active_idx[moved as usize] = i as u32;
        }
        self.active_idx[slot as usize] = NO_OWNER;
        // Activity bookkeeping (no-ops for a dense-mode instance).
        self.alloc_state[slot as usize] = AllocState::Inactive;
        debug_assert!(self.msg_watches[slot as usize].is_empty());
        let di = self.drain_idx[slot as usize];
        if di != NO_OWNER {
            self.drain_list.swap_remove(di as usize);
            self.drain_head.swap_remove(di as usize);
            if let Some(&moved) = self.drain_list.get(di as usize) {
                self.drain_idx[moved as usize] = di;
            }
            self.drain_idx[slot as usize] = NO_OWNER;
        }
        self.free_slots.push(slot);
    }

    fn reference_release(&mut self, events: &mut StepEvents) {
        for i in 0..self.step_order.len() {
            let slot = self.step_order[i];
            let msg = self.messages[slot as usize].as_mut().expect("active slot");

            // The injection channel frees once the tail leaves the source.
            if self.msg_uninjected[slot as usize] == 0 && msg.holds_injection {
                msg.holds_injection = false;
                self.injecting_count[msg.src.idx()] -= 1;
            }

            // Tail release: owned VCs drain from the front of the chain.
            while let Some(&front) = msg.chain.front() {
                if self.vc_occ[front as usize] == 0 && self.msg_uninjected[slot as usize] == 0 {
                    self.vc_owner[front as usize] = NO_OWNER;
                    self.vc_feed[front as usize] = NO_OWNER;
                    self.vc_next[front as usize] = NO_OWNER;
                    self.owned_per_channel[front as usize / self.cfg.vcs_per_channel] -= 1;
                    msg.chain.pop_front();
                    msg.front_seq += 1;
                    if self.wait_tracking && msg.blocked {
                        // A blocked message's settled chain shrank.
                        self.wait_dirty.push(msg.id);
                    }
                    if let Some(&nf) = msg.chain.front() {
                        // The new front is now fed straight from the source
                        // (which is drained: releases need uninjected == 0).
                        self.vc_feed[nf as usize] = FROM_SOURCE;
                    }
                } else {
                    break;
                }
            }

            if msg.delivered == msg.len {
                debug_assert!(msg.chain.is_empty());
                debug_assert_eq!(self.msg_uninjected[slot as usize], 0);
                if msg.phase == MsgPhase::Ejecting {
                    let r = msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize;
                    debug_assert_eq!(self.reception[r], slot);
                    self.reception[r] = NO_OWNER;
                }
                let recovered = msg.phase == MsgPhase::Recovering;
                events.delivered.push(DeliveredMsg {
                    id: msg.id,
                    src: msg.src,
                    dst: msg.dst,
                    latency: self.cycle + 1 - msg.born,
                    network_latency: self.cycle + 1 - msg.injected_at,
                    hops: msg.next_seq,
                    len: msg.len,
                    recovered,
                });
                self.total_delivered += 1;
                if recovered {
                    self.total_recovered += 1;
                }
                if let Some(t) = self.tracer.as_mut() {
                    t.push(crate::TraceEvent::Delivered {
                        cycle: self.cycle,
                        id: msg.id,
                        recovered,
                    });
                }
                self.finish_slot(slot);
            }
        }
    }

    // ------------------------------------------------------------------
    // Activity engine: wake lists, ready lists, active channels
    // ------------------------------------------------------------------
    //
    // The activity stepper exploits three facts about the dense phases:
    //
    // * A blocked message's re-attempt has no side effects, and its
    //   candidate set is frozen while it is parked (routing state only
    //   changes on acquisition; `fail_channel` requires every VC of the
    //   channel free, and all of a parked waiter's candidate VCs are
    //   owned — that is why it parked). It can therefore only become
    //   acquirable when a watched VC or reception slot is freed, which
    //   happens exclusively in the release phase, where the wake fires.
    // * Transfer decisions read only start-of-cycle occupancies, so
    //   per-channel decisions are order-independent and every movability
    //   transition is caused by an acquisition or an occupancy change —
    //   each of which re-activates the affected channel.
    // * The release actions (injection-channel free, tail release,
    //   completion) are all triggered by transfer-phase changes
    //   (`uninjected` hitting zero, an occupancy hitting zero, the last
    //   flit draining), so only those messages need visiting, in id order.

    /// Records that VC `v`'s occupancy diverged from `occ_start`
    /// (idempotent: setting an already-set bit is a no-op, so a VC whose
    /// occupancy changes several times per cycle is patched once).
    ///
    /// Branchless on purpose: this and [`Self::activate_channel`] run
    /// several times per moved flit, and the word arrays are small enough
    /// (`n / 64` entries) that the patch/scan loops walk every word
    /// unconditionally rather than maintaining touched-word lists.
    #[inline]
    fn mark_occ_dirty(&mut self, v: u32) {
        self.occ_dirty_words[(v >> 6) as usize] |= 1 << (v & 63);
    }

    /// Adds `ch` to the active-channel set (idempotent).
    #[inline]
    fn activate_channel(&mut self, ch: usize) {
        self.chan_words[ch >> 6] |= 1 << (ch & 63);
    }

    /// Schedules `slot` for this cycle's release phase (idempotent).
    #[inline]
    fn mark_release(&mut self, slot: u32) {
        if !self.release_flag[slot as usize] {
            self.release_flag[slot as usize] = true;
            self.release_check.push(slot);
        }
    }

    /// Appends `slot` to the drain list (one flit per cycle until done).
    fn drain_push(&mut self, slot: u32) {
        debug_assert_eq!(self.drain_idx[slot as usize], NO_OWNER);
        let &head = self.messages[slot as usize]
            .as_ref()
            .expect("drain slot")
            .chain
            .back()
            .expect("draining message still owns its head VC");
        self.drain_idx[slot as usize] = self.drain_list.len() as u32;
        self.drain_list.push(slot);
        self.drain_head.push(head);
    }

    fn watches_of(&self, waiter: u32) -> &Vec<(u32, u32)> {
        if waiter & INJECTOR != 0 {
            &self.inj_watches[(waiter ^ INJECTOR) as usize]
        } else {
            &self.msg_watches[waiter as usize]
        }
    }

    fn watches_of_mut(&mut self, waiter: u32) -> &mut Vec<(u32, u32)> {
        if waiter & INJECTOR != 0 {
            &mut self.inj_watches[(waiter ^ INJECTOR) as usize]
        } else {
            &mut self.msg_watches[waiter as usize]
        }
    }

    /// Parks `waiter` (message slot, or `INJECTOR | node`) on `resource`.
    fn watch(&mut self, waiter: u32, resource: u32) {
        let Self {
            wake_lists,
            msg_watches,
            inj_watches,
            ..
        } = self;
        let watches = if waiter & INJECTOR != 0 {
            &mut inj_watches[(waiter ^ INJECTOR) as usize]
        } else {
            &mut msg_watches[waiter as usize]
        };
        let list = &mut wake_lists[resource as usize];
        list.push(WakeEntry {
            waiter,
            watch_pos: watches.len() as u32,
        });
        watches.push((resource, (list.len() - 1) as u32));
    }

    /// Removes every watch held by `waiter`: O(1) per watch via swap-remove
    /// on the wake list plus a back-pointer fix-up for the entry that slid
    /// into the hole. Leaves no stale entries behind.
    fn unpark(&mut self, waiter: u32) {
        let n = self.watches_of(waiter).len();
        for k in 0..n {
            let (resource, i) = self.watches_of(waiter)[k];
            let list = &mut self.wake_lists[resource as usize];
            debug_assert_eq!(list[i as usize].waiter, waiter);
            list.swap_remove(i as usize);
            if let Some(&moved) = list.get(i as usize) {
                debug_assert_ne!(moved.waiter, waiter, "one watch per resource");
                self.watches_of_mut(moved.waiter)[moved.watch_pos as usize].1 = i;
            }
        }
        self.watches_of_mut(waiter).clear();
    }

    /// Wakes every waiter parked on `resource`; messages join the `woken`
    /// buffer and injectors the ready list, both re-attempted next cycle.
    fn wake_resource(&mut self, resource: u32) {
        while let Some(&WakeEntry { waiter, .. }) = self.wake_lists[resource as usize].last() {
            // unpark removes (at least) the entry just examined.
            self.unpark(waiter);
            if waiter & INJECTOR != 0 {
                let node = (waiter ^ INJECTOR) as usize;
                debug_assert_eq!(self.inj_state[node], InjState::Parked);
                self.inj_state[node] = InjState::Ready;
                self.inj_ready.push(node as u32);
            } else {
                debug_assert_eq!(self.alloc_state[waiter as usize], AllocState::Parked);
                self.alloc_state[waiter as usize] = AllocState::Queued;
                self.woken.push(waiter);
            }
        }
    }

    /// Parks `waiter` on every VC in the current candidate buffer (all are
    /// owned, or the attempt would have succeeded). An empty buffer parks
    /// with no watches: without transient faults such a waiter can never
    /// become acquirable; with them, stranded messages are resolved at the
    /// next cycle start and `LinkUp` wakes cover everything else.
    fn park_on_candidates(&mut self, waiter: u32) {
        let cand_buf = std::mem::take(&mut self.cand_buf);
        let vcs_per = self.cfg.vcs_per_channel;
        for c in &cand_buf {
            let base = c.channel.idx() * vcs_per;
            for v in c.vcs.iter() {
                debug_assert_ne!(self.vc_owner[base + v], NO_OWNER);
                self.watch(waiter, (base + v) as u32);
            }
        }
        self.cand_buf = cand_buf;
    }

    /// Parks a waiter on every VC of its frozen candidate list — the
    /// cached-path twin of [`Self::park_on_candidates`] (`idx` is a
    /// message slot, or a node when `injector` is set).
    fn park_on_cached(&mut self, idx: u32, injector: bool) {
        let list = if injector {
            std::mem::take(&mut self.inj_cand_cache[idx as usize])
        } else {
            std::mem::take(&mut self.cand_cache[idx as usize])
        };
        let waiter = if injector { INJECTOR | idx } else { idx };
        for &v in &list {
            debug_assert_ne!(self.vc_owner[v as usize], NO_OWNER);
            self.watch(waiter, v);
        }
        if injector {
            self.inj_cand_cache[idx as usize] = list;
        } else {
            self.cand_cache[idx as usize] = list;
        }
    }

    /// Folds messages woken since the last allocation phase back into the
    /// id-sorted allocation queue (two-pointer merge).
    fn merge_woken(&mut self) {
        if self.woken.is_empty() {
            return;
        }
        let Self {
            woken,
            slot_id,
            alloc_queue,
            alloc_scratch,
            ..
        } = self;
        woken.sort_unstable_by_key(|&s| slot_id[s as usize]);
        merge_sorted_by_id(alloc_queue, woken, alloc_scratch, slot_id);
        woken.clear();
    }

    /// Sharded twin of [`Self::merge_woken`]: woken slots are bucketed by
    /// the shard owning their header's node (fixed while parked — a
    /// blocked header never moves), then each bucket merges into its
    /// shard's queue. Global id sort first, so every bucket is id-sorted.
    fn merge_woken_sharded(&mut self) {
        if self.woken.is_empty() {
            return;
        }
        let vcs_per = self.cfg.vcs_per_channel as u32;
        let Self {
            woken,
            slot_id,
            messages,
            shard_plan,
            shard_woken,
            shard_queues,
            alloc_scratch,
            ..
        } = self;
        let plan = shard_plan.as_ref().expect("sharded step without a plan");
        woken.sort_unstable_by_key(|&s| slot_id[s as usize]);
        for &slot in woken.iter() {
            let head = *messages[slot as usize]
                .as_ref()
                .expect("woken slot live")
                .chain
                .back()
                .expect("woken message owns its head VC");
            shard_woken[plan.shard_of_chan_dst(ChannelId(head / vcs_per))].push(slot);
        }
        woken.clear();
        for (queue, bucket) in shard_queues.iter_mut().zip(shard_woken.iter_mut()) {
            if !bucket.is_empty() {
                merge_sorted_by_id(queue, bucket, alloc_scratch, slot_id);
                bucket.clear();
            }
        }
    }

    /// Activity allocation, injection half: only ready nodes attempt, in
    /// ascending node order (the dense scan's order).
    fn activity_injections(&mut self, events: &mut StepEvents) {
        if self.inj_ready.is_empty() {
            return;
        }
        let mut ready = std::mem::take(&mut self.inj_ready);
        ready.sort_unstable();
        let mut deferred: Vec<u32> = Vec::new();
        for &node in &ready {
            debug_assert_eq!(self.inj_state[node as usize], InjState::Ready);
            if self.fault_mode
                && (self.cycle < self.stall_until[node as usize]
                    || self.cycle < self.inj_down_until[node as usize])
            {
                // Suppressed (stall / injector outage): stay ready and
                // re-attempt next cycle. Collected locally and appended
                // after the take/restore below — a push straight onto
                // `inj_ready` would be overwritten by the restore.
                deferred.push(node);
                continue;
            }
            self.attempt_injector(node, events);
        }
        ready.clear();
        self.inj_ready = ready;
        self.inj_ready.extend_from_slice(&deferred);
    }

    /// Drains one node's injection opportunities and records why it
    /// stopped (idle, or parked on the queue front's candidate VCs).
    fn attempt_injector(&mut self, node: u32, events: &mut StepEvents) {
        let n = node as usize;
        loop {
            if (self.injecting_count[n] as usize) >= self.injection_per_node {
                self.inj_state[n] = InjState::Idle;
                return;
            }
            match self.try_inject_one(n, events) {
                InjectOutcome::Injected | InjectOutcome::Rejected => {}
                InjectOutcome::EmptyQueue => {
                    self.inj_state[n] = InjState::Idle;
                    return;
                }
                InjectOutcome::NoFreeVc => {
                    self.inj_state[n] = InjState::Parked;
                    if self.inj_cand_valid[n] {
                        self.park_on_cached(node, true);
                    } else {
                        self.park_on_candidates(INJECTOR | node);
                    }
                    return;
                }
            }
        }
    }

    /// Activity allocation, routing half: attempt every runnable message
    /// in id order, compacting parked / inactive entries out of the queue.
    fn activity_next_hops(&mut self) {
        let mut queue = std::mem::take(&mut self.alloc_queue);
        let mut keep = 0;
        for i in 0..queue.len() {
            let slot = queue[i];
            // A recovery pull between steps leaves a stale entry behind;
            // it is dropped here before the slot can ever be recycled.
            if self.alloc_state[slot as usize] != AllocState::Queued {
                continue;
            }
            if self.attempt_next_hop(slot) {
                queue[keep] = slot;
                keep += 1;
            }
        }
        queue.truncate(keep);
        debug_assert!(self.alloc_queue.is_empty());
        self.alloc_queue = queue;
    }

    /// Sharded allocation, routing half: each shard's id-sorted queue is
    /// attempted in shard order. Equivalent to the serial global id order
    /// because a header at node `n` contends only for resources of `n` —
    /// the VCs of channels sourced there and `n`'s reception group — all
    /// owned by `n`'s shard, so attempts in different shards can never
    /// race for the same resource and reordering across shards changes no
    /// outcome. Survivors whose (possibly new) head crossed a shard
    /// boundary travel through the per-(src, dst) mailboxes and merge
    /// back by id at the cycle barrier, keeping every queue id-sorted and
    /// every message at one attempt per cycle.
    fn sharded_next_hops(&mut self) {
        let shards = self.shards;
        let vcs_per = self.cfg.vcs_per_channel as u32;
        for shard in 0..shards {
            let mut queue = std::mem::take(&mut self.shard_queues[shard]);
            let mut keep = 0;
            for i in 0..queue.len() {
                let slot = queue[i];
                // A recovery pull between steps leaves a stale entry
                // behind; it is dropped here before the slot can ever be
                // recycled (every shard queue is walked every cycle).
                if self.alloc_state[slot as usize] != AllocState::Queued {
                    continue;
                }
                if self.attempt_next_hop(slot) {
                    // Still runnable: the (possibly new) head decides
                    // which shard attempts it next cycle.
                    let head = *self.messages[slot as usize]
                        .as_ref()
                        .expect("queued slot live")
                        .chain
                        .back()
                        .expect("routing message owns its head VC");
                    let dst = self
                        .shard_plan
                        .as_ref()
                        .expect("sharded step without a plan")
                        .shard_of_chan_dst(ChannelId(head / vcs_per));
                    if dst == shard {
                        queue[keep] = slot;
                        keep += 1;
                    } else {
                        self.shard_outboxes[shard * shards + dst].push(slot);
                    }
                }
            }
            queue.truncate(keep);
            debug_assert!(self.shard_queues[shard].is_empty());
            self.shard_queues[shard] = queue;
        }
        // Cycle barrier: drain every inbound mailbox into its target
        // shard's queue in canonical shard-id order. Each input is
        // id-sorted (queues by construction, outboxes because they are
        // filled from an id-sorted walk), so the queues come out
        // id-sorted; merge order cannot matter — ids are unique.
        for dst in 0..shards {
            for src in 0..shards {
                if src == dst {
                    continue;
                }
                let Self {
                    shard_queues,
                    shard_outboxes,
                    alloc_scratch,
                    slot_id,
                    ..
                } = self;
                let inbox = &mut shard_outboxes[src * shards + dst];
                if inbox.is_empty() {
                    continue;
                }
                merge_sorted_by_id(&mut shard_queues[dst], inbox, alloc_scratch, slot_id);
                inbox.clear();
            }
        }
    }

    /// One message's next-hop attempt (the body of the dense scan), plus
    /// parking on failure. Returns whether the message stays runnable.
    fn attempt_next_hop(&mut self, slot: u32) -> bool {
        let s = slot as usize;
        let (head_vc, dst) = {
            let msg = self.messages[s].as_ref().expect("queued slot");
            debug_assert_eq!(msg.phase, MsgPhase::Routing);
            (
                *msg.chain.back().expect("routing message owns its head VC"),
                msg.dst,
            )
        };
        if self.vc_occ[head_vc as usize] == 0 {
            // Header flit still in flight towards this buffer; re-attempt
            // next cycle (cheap: this branch).
            let msg = self.messages[s].as_mut().expect("queued slot");
            debug_assert!(!msg.blocked, "blocked header always has a buffered flit");
            msg.blocked = false;
            return true;
        }
        let here = self
            .topo
            .channel(ChannelId(head_vc / self.cfg.vcs_per_channel as u32))
            .dst;
        if self.fault_mode && self.cycle < self.stall_until[here.idx()] {
            // Frozen router: stay runnable and re-attempt every cycle of
            // the stall, exactly as the dense stepper skips this message.
            return true;
        }

        if here == dst {
            let base = here.idx() * self.reception_per_node;
            let free = (0..self.reception_per_node).find(|&r| self.reception[base + r] == NO_OWNER);
            if let Some(r) = free {
                self.reception[base + r] = slot;
                let msg = self.messages[s].as_mut().expect("queued slot");
                msg.reception_slot = r as u8;
                msg.phase = MsgPhase::Ejecting;
                if msg.blocked {
                    self.blocked_ctr -= 1;
                    if self.wait_tracking {
                        self.wait_dirty.push(msg.id);
                    }
                }
                msg.blocked = false;
                msg.blocked_since = None;
                let id = msg.id;
                if let Some(t) = self.tracer.as_mut() {
                    t.push(crate::TraceEvent::EjectStart {
                        cycle: self.cycle,
                        id,
                    });
                }
                self.alloc_state[s] = AllocState::Inactive;
                self.drain_push(slot);
            } else {
                {
                    let msg = self.messages[s].as_mut().expect("queued slot");
                    if !msg.blocked {
                        msg.blocked = true;
                        msg.blocked_since = Some(self.cycle);
                        self.blocked_ctr += 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                        let id = msg.id;
                        if let Some(t) = self.tracer.as_mut() {
                            // Waiting on the destination's reception
                            // channels, not on any link.
                            t.push(crate::TraceEvent::Blocked {
                                cycle: self.cycle,
                                id,
                                at: here,
                                candidates: Vec::new(),
                            });
                        }
                    }
                }
                self.alloc_state[s] = AllocState::Parked;
                let resource = (self.num_vcs() + here.idx()) as u32;
                self.watch(slot, resource);
            }
            return false;
        }

        let cached = self.cand_cache_valid[s];
        let acquired = {
            let msg = self.messages[s].as_mut().expect("queued slot");
            let free = if cached {
                // Frozen candidates: while parked, nothing the routing
                // relation reads changed (header position and policy state
                // are frozen, and fault caching is disabled), so scan the
                // flattened list in the same nested order `first_free_vc`
                // would use over the recomputed set.
                debug_assert!(msg.blocked, "cached candidates imply a parked episode");
                self.cand_cache[s]
                    .iter()
                    .copied()
                    .find(|&v| self.vc_owner[v as usize] == NO_OWNER)
            } else {
                compute_candidates(
                    &self.topo,
                    &*self.routing,
                    self.cfg.vcs_per_channel,
                    &self.failed,
                    &ctx_of(msg, here),
                    &mut self.cand_buf,
                );
                first_free_vc(&self.vc_owner, self.cfg.vcs_per_channel, &self.cand_buf)
            };
            match free {
                Some(vc_idx) => {
                    self.cand_cache_valid[s] = false;
                    if msg.blocked {
                        self.blocked_ctr -= 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                    }
                    acquire_vc(
                        VcState {
                            owner: &mut self.vc_owner,
                            seq: &mut self.vc_seq,
                            feed: &mut self.vc_feed,
                            next: &mut self.vc_next,
                            owned_per_channel: &mut self.owned_per_channel,
                        },
                        &self.topo,
                        self.cfg.vcs_per_channel,
                        msg,
                        vc_idx,
                        slot,
                    );
                    let id = msg.id;
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(crate::TraceEvent::Acquired {
                            cycle: self.cycle,
                            id,
                            channel: ChannelId(vc_idx / self.cfg.vcs_per_channel as u32),
                            vc: (vc_idx as usize % self.cfg.vcs_per_channel) as u8,
                        });
                    }
                    Some(vc_idx)
                }
                None => {
                    if !msg.blocked {
                        msg.blocked = true;
                        msg.blocked_since = Some(self.cycle);
                        self.blocked_ctr += 1;
                        if self.wait_tracking {
                            self.wait_dirty.push(msg.id);
                        }
                        let id = msg.id;
                        if let Some(t) = self.tracer.as_mut() {
                            t.push(crate::TraceEvent::Blocked {
                                cycle: self.cycle,
                                id,
                                at: here,
                                candidates: self.cand_buf.iter().map(|c| c.channel).collect(),
                            });
                        }
                    }
                    None
                }
            }
        };
        match acquired {
            Some(vc_idx) => {
                // The new head may carry a flit this very cycle.
                self.activate_channel(vc_idx as usize / self.cfg.vcs_per_channel);
                true
            }
            None => {
                self.alloc_state[s] = AllocState::Parked;
                if cached {
                    self.park_on_cached(slot, false);
                } else {
                    self.park_on_candidates(slot);
                    if self.fault_mode {
                        if self.cand_buf.is_empty() {
                            // Unroutable under the active fault set (parked
                            // with no watches): resolved at the start of the
                            // next cycle.
                            let id = self.messages[s].as_ref().expect("queued slot").id;
                            self.stranded.push((slot, id));
                        }
                    } else {
                        // Freeze the flattened set for re-attempts.
                        let vcs_per = self.cfg.vcs_per_channel;
                        self.cand_cache[s].clear();
                        for c in &self.cand_buf {
                            let base = c.channel.idx() * vcs_per;
                            for v in c.vcs.iter() {
                                self.cand_cache[s].push((base + v) as u32);
                            }
                        }
                        self.cand_cache_valid[s] = true;
                    }
                }
                false
            }
        }
    }

    /// Activity transfer: only channels in the active bitset are examined,
    /// and `occ_start` is patched from the dirty bitset instead of copied.
    fn activity_transfer(&mut self, events: &mut StepEvents) {
        // Lazy occ_start sync: occupancies change only during a transfer
        // and every change is logged, so patching the dirty words is
        // exactly the dense stepper's full copy. The word array is tiny
        // (one u64 per 64 VCs), so every word is visited unconditionally.
        {
            let Self {
                occ_dirty_words,
                occ_start,
                vc_occ,
                ..
            } = self;
            for (w, slot) in occ_dirty_words.iter_mut().enumerate() {
                let mut word = *slot;
                if word == 0 {
                    continue;
                }
                *slot = 0;
                let base = w << 6;
                while word != 0 {
                    let v = base + word.trailing_zeros() as usize;
                    occ_start[v] = vc_occ[v];
                    word &= word - 1;
                }
            }
        }
        let vcs_per = self.cfg.vcs_per_channel;
        let depth = self.cfg.buffer_depth as u16;

        // Swap the accumulated active set into the scan side: activations
        // made while walking (occupancy triggers) land in the now-empty
        // accumulating set and belong to the next cycle, while the walk
        // consumes exactly this cycle's set. The walk zeroes each word it
        // visits, so the scan side hands back an all-zero set for the next
        // swap.
        std::mem::swap(&mut self.chan_words, &mut self.chan_scan);

        if self.shard_active {
            self.sharded_transfer(events, vcs_per, depth);
        } else if !self.fault_mode && self.transfer_threads <= 1 {
            self.fused_transfer(events, vcs_per, depth);
        } else {
            // Fault mode and the opt-in parallel path keep the two-pass
            // shape: a pure decide pass over start-of-cycle state, then a
            // canonical apply pass in ascending channel order. The fused
            // serial walk above is the same computation with the apply
            // inlined at each decision — legal because decisions read only
            // start-of-cycle state (`occ_start`, per-channel `link_rr`,
            // and `msg_uninjected`, which only the deciding VC's own move
            // can touch), so no apply can influence a later decision.
            // Fault-mode decide stays serial: the stall checks are cheap
            // and faulted runs are rare.
            let threads = if self.fault_mode {
                1
            } else {
                self.transfer_threads.min(self.chan_scan.len()).max(1)
            };
            let mut bufs = std::mem::take(&mut self.xfer_bufs);
            if bufs.len() < threads {
                bufs.resize_with(threads, MoveBuf::default);
            }
            {
                let ctx = TransferCtx {
                    topo: &self.topo,
                    occ_start: &self.occ_start,
                    vc_owner: &self.vc_owner,
                    vc_feed: &self.vc_feed,
                    msg_uninjected: &self.msg_uninjected,
                    owned_per_channel: &self.owned_per_channel,
                    link_rr: &self.link_rr,
                    stall_until: &self.stall_until,
                    chan_scan: &self.chan_scan,
                    fault_mode: self.fault_mode,
                    cycle: self.cycle,
                    vcs_per,
                    depth,
                };
                let words = self.chan_scan.len();
                if threads <= 1 {
                    decide_transfers(&ctx, 0..words, &mut bufs[0]);
                } else {
                    // Fixed contiguous word-range partitions: partition
                    // shape depends only on (words, threads), decisions
                    // only on start-of-cycle state, and buffers are
                    // applied in partition order — so the move sequence
                    // is identical to the serial decide regardless of
                    // thread count or scheduling.
                    std::thread::scope(|s| {
                        for (i, buf) in bufs.iter_mut().take(threads).enumerate() {
                            let lo = i * words / threads;
                            let hi = (i + 1) * words / threads;
                            let ctx = &ctx;
                            s.spawn(move || decide_transfers(ctx, lo..hi, buf));
                        }
                    });
                }
            }
            // The scan set is consumed; hand back an all-zero side for the
            // next swap.
            self.chan_scan.fill(0);

            // Apply: execute the decided moves in buffer order (ascending
            // channel id), performing every state mutation the decisions
            // imply. Identical regardless of how the decide pass was
            // partitioned.
            for slot in &mut bufs {
                let mut buf = std::mem::take(slot);
                for &ch in &buf.stalled {
                    self.activate_channel(ch as usize);
                }
                buf.stalled.clear();
                for k in 0..buf.moves.len() {
                    let Move { v, owner, prev } = buf.moves[k];
                    self.apply_move(v, owner, prev, vcs_per, events);
                }
                buf.moves.clear();
                *slot = buf;
            }
            self.xfer_bufs = bufs;
        }

        // Ejection and recovery drains: one flit per cycle per message.
        // `drain_head[k]` caches the head VC of `drain_list[k]` (fixed
        // while draining: Ejecting/Recovering messages never acquire), so
        // the starved-head case skips the message slab entirely.
        for k in 0..self.drain_list.len() {
            let head = self.drain_head[k];
            if self.fault_mode {
                let drain_node = self.topo.channel(ChannelId(head / vcs_per as u32)).dst;
                if self.cycle < self.stall_until[drain_node.idx()] {
                    // The draining router is frozen.
                    continue;
                }
            }
            if self.occ_start[head as usize] < 1 {
                continue;
            }
            let slot = self.drain_list[k];
            let msg = self.messages[slot as usize].as_mut().expect("drain slot");
            debug_assert_ne!(msg.phase, MsgPhase::Routing);
            debug_assert_eq!(msg.chain.back(), Some(&head));
            self.vc_occ[head as usize] -= 1;
            msg.delivered += 1;
            events.drained_flits += 1;
            let done = msg.delivered == msg.len;
            let emptied = self.vc_occ[head as usize] == 0;
            self.mark_occ_dirty(head);
            self.activate_channel(self.vc_chan[head as usize] as usize);
            if emptied || done {
                self.mark_release(slot);
            }
        }
    }

    /// Sharded transfer: the pure decide pass runs one partition per
    /// shard over that shard's contiguous channel range (masked at the
    /// sub-word boundaries), fanned over scoped threads when the host has
    /// spare cores and inline otherwise — the decide partitions, and
    /// therefore the buffers, are identical either way. The apply pass
    /// then drains the per-shard buffers in shard-id order, which *is*
    /// ascending channel order: the same canonical apply sequence as
    /// every other transfer path, and the transfer half of the "mailboxes
    /// drained in canonical shard-id × channel-id order" barrier
    /// contract.
    fn sharded_transfer(&mut self, events: &mut StepEvents, vcs_per: usize, depth: u16) {
        debug_assert!(!self.fault_mode, "sharded runs are fault-free");
        let shards = self.shards;
        let mut bufs = std::mem::take(&mut self.xfer_bufs);
        if bufs.len() < shards {
            bufs.resize_with(shards, MoveBuf::default);
        }
        {
            let plan = self
                .shard_plan
                .as_ref()
                .expect("sharded step without a plan");
            let ctx = TransferCtx {
                topo: &self.topo,
                occ_start: &self.occ_start,
                vc_owner: &self.vc_owner,
                vc_feed: &self.vc_feed,
                msg_uninjected: &self.msg_uninjected,
                owned_per_channel: &self.owned_per_channel,
                link_rr: &self.link_rr,
                stall_until: &self.stall_until,
                chan_scan: &self.chan_scan,
                fault_mode: false,
                cycle: self.cycle,
                vcs_per,
                depth,
            };
            let workers = self.shard_workers;
            if workers > 1 {
                // Contiguous blocks of shards per worker: the thread
                // layout affects only who fills which buffer, never what
                // the buffers contain.
                std::thread::scope(|sc| {
                    let mut rest = &mut bufs[..shards];
                    let mut base = 0usize;
                    for j in 0..workers {
                        let n = (j + 1) * shards / workers - j * shards / workers;
                        let (chunk, tail) = rest.split_at_mut(n);
                        rest = tail;
                        let ctx = &ctx;
                        sc.spawn(move || {
                            for (k, buf) in chunk.iter_mut().enumerate() {
                                decide_transfers_masked(ctx, plan.chan_range(base + k), buf);
                            }
                        });
                        base += n;
                    }
                });
            } else {
                for (shard, buf) in bufs.iter_mut().take(shards).enumerate() {
                    decide_transfers_masked(&ctx, plan.chan_range(shard), buf);
                }
            }
        }
        // The scan set is consumed; hand back an all-zero side for the
        // next swap.
        self.chan_scan.fill(0);

        // Apply in shard order = ascending channel order.
        for slot in &mut bufs {
            let mut buf = std::mem::take(slot);
            debug_assert!(buf.stalled.is_empty(), "no stalls without faults");
            for k in 0..buf.moves.len() {
                let Move { v, owner, prev } = buf.moves[k];
                self.apply_move(v, owner, prev, vcs_per, events);
            }
            buf.moves.clear();
            *slot = buf;
        }
        self.xfer_bufs = bufs;
    }

    /// Serial fused decide+apply transfer walk (non-fault fast path): one
    /// ascending pass over the active-channel words, applying each move as
    /// it is decided. Byte-identical to decide-then-apply because apply
    /// mutations never reach a later decision's inputs: decisions read
    /// `occ_start` (patched next cycle), `link_rr[ch]` (written only by
    /// channel `ch`'s own move, after its decision), and
    /// `msg_uninjected[owner]` (read only at the owner's unique chain
    /// front), while activations land in the accumulating bitset, not the
    /// scan side.
    fn fused_transfer(&mut self, events: &mut StepEvents, vcs_per: usize, depth: u16) {
        // Destructured field borrows: indexed stores through one slice
        // provably cannot clobber another slice's header, so the pointers
        // stay in registers across the walk (through `&mut self` every
        // heap store would force header reloads).
        let Self {
            chan_scan,
            chan_words,
            owned_per_channel,
            link_rr,
            vc_owner,
            vc_occ,
            occ_start,
            vc_feed,
            vc_next,
            vc_chan,
            occ_dirty_words,
            msg_uninjected,
            messages,
            release_flag,
            release_check,
            release_deferred,
            cycle,
            ..
        } = self;
        let cycle = *cycle;
        for (w, slot) in chan_scan.iter_mut().enumerate() {
            let mut word = *slot;
            if word == 0 {
                continue;
            }
            *slot = 0;
            let wbase = w << 6;
            while word != 0 {
                let ch = wbase + word.trailing_zeros() as usize;
                word &= word - 1;
                if owned_per_channel[ch] == 0 {
                    continue;
                }
                let base = ch * vcs_per;
                let start = link_rr[ch] as usize;
                for i in 0..vcs_per {
                    // `start + i < 2 * vcs_per`, so one conditional
                    // subtract replaces a hardware divide (`vcs_per` is
                    // not a compile-time constant).
                    let mut off = start + i;
                    if off >= vcs_per {
                        off -= vcs_per;
                    }
                    let v = base + off;
                    let owner = vc_owner[v];
                    if owner == NO_OWNER || occ_start[v] >= depth {
                        continue;
                    }
                    // The feed cache mirrors the owner's chain, so the
                    // movement decision touches only the dense per-VC
                    // vectors — never the message slab.
                    let feed = vc_feed[v];
                    let moved = if feed == FROM_SOURCE {
                        msg_uninjected[owner as usize] > 0
                    } else {
                        occ_start[feed as usize] >= 1
                    };
                    if !moved {
                        continue;
                    }
                    // Apply inline — MUST stay in lockstep with
                    // `apply_move` (the fault/parallel two-pass path);
                    // the differential and parallel-digest suites pin
                    // the equivalence.
                    vc_occ[v] += 1;
                    occ_dirty_words[v >> 6] |= 1 << (v & 63);
                    events.link_flits += 1;
                    let next_rr = off + 1;
                    link_rr[ch] = if next_rr == vcs_per { 0 } else { next_rr } as u8;
                    chan_words[ch >> 6] |= 1 << (ch & 63);
                    let succ = vc_next[v];
                    if succ != NO_OWNER {
                        let sc = vc_chan[succ as usize] as usize;
                        chan_words[sc >> 6] |= 1 << (sc & 63);
                    }
                    if feed == FROM_SOURCE {
                        let u = &mut msg_uninjected[owner as usize];
                        *u -= 1;
                        if *u == 0 && !release_flag[owner as usize] {
                            release_flag[owner as usize] = true;
                            // The injection channel frees — but the dense
                            // release phase scans the start-of-cycle
                            // active set, so a message injected *this*
                            // cycle (len 1) is only visited next cycle.
                            let injected_now = messages[owner as usize]
                                .as_ref()
                                .expect("owner live")
                                .injected_at
                                == cycle;
                            if !injected_now {
                                release_check.push(owner);
                            } else {
                                release_deferred.push(owner);
                            }
                        }
                    } else {
                        let p = feed as usize;
                        vc_occ[p] -= 1;
                        occ_dirty_words[p >> 6] |= 1 << (p & 63);
                        let pc = vc_chan[p] as usize;
                        chan_words[pc >> 6] |= 1 << (pc & 63);
                        // Tail release may now be possible.
                        if vc_occ[p] == 0 && !release_flag[owner as usize] {
                            release_flag[owner as usize] = true;
                            release_check.push(owner);
                        }
                    }
                    break;
                }
            }
        }
    }

    /// Executes one decided transfer: flit enters `v`, leaves `prev` (or
    /// the source when `prev == FROM_SOURCE`), with every activation and
    /// release trigger the movement implies. Shared verbatim by the fused
    /// serial walk and the two-pass apply loop so the paths cannot drift.
    #[inline]
    fn apply_move(
        &mut self,
        v: u32,
        owner: u32,
        prev: u32,
        vcs_per: usize,
        events: &mut StepEvents,
    ) {
        let vi = v as usize;
        let ch = self.vc_chan[vi] as usize;
        self.vc_occ[vi] += 1;
        self.mark_occ_dirty(v);
        events.link_flits += 1;
        let next_rr = vi - ch * vcs_per + 1;
        self.link_rr[ch] = if next_rr == vcs_per { 0 } else { next_rr } as u8;
        // The served link stays active (round-robin fairness); the
        // fed VC may now feed its chain successor; the drained
        // upstream VC regained buffer space.
        self.activate_channel(ch);
        let succ = self.vc_next[vi];
        if succ != NO_OWNER {
            self.activate_channel(self.vc_chan[succ as usize] as usize);
        }
        if prev == FROM_SOURCE {
            let u = &mut self.msg_uninjected[owner as usize];
            *u -= 1;
            if *u == 0 {
                // The injection channel frees — but the dense release
                // phase scans the start-of-cycle active set, so a
                // message injected *this* cycle (len 1) is only
                // visited next cycle.
                let injected_now = self.messages[owner as usize]
                    .as_ref()
                    .expect("owner live")
                    .injected_at
                    == self.cycle;
                if !injected_now {
                    self.mark_release(owner);
                } else if !self.release_flag[owner as usize] {
                    self.release_flag[owner as usize] = true;
                    self.release_deferred.push(owner);
                }
            }
        } else {
            let p = prev as usize;
            self.vc_occ[p] -= 1;
            self.mark_occ_dirty(prev);
            self.activate_channel(self.vc_chan[p] as usize);
            if self.vc_occ[p] == 0 {
                // Tail release may now be possible.
                self.mark_release(owner);
            }
        }
    }

    /// Activity release: visit only the messages a transfer-phase trigger
    /// marked, oldest first, running the dense per-message release logic
    /// plus the wakes for every freed resource.
    fn activity_release(&mut self, events: &mut StepEvents) {
        if self.release_check.is_empty() {
            return;
        }
        let mut check = std::mem::take(&mut self.release_check);
        let slot_id = &self.slot_id;
        check.sort_unstable_by_key(|&s| slot_id[s as usize]);
        for &slot in &check {
            self.release_flag[slot as usize] = false;
            self.release_one(slot, events);
        }
        check.clear();
        self.release_check = check;
    }

    fn release_one(&mut self, slot: u32, events: &mut StepEvents) {
        let s = slot as usize;
        // The injection channel frees once the tail leaves the source.
        {
            let msg = self.messages[s].as_mut().expect("release slot");
            if self.msg_uninjected[s] == 0 && msg.holds_injection {
                msg.holds_injection = false;
                let node = msg.src.idx();
                self.injecting_count[node] -= 1;
                if self.inj_state[node] == InjState::Idle && !self.source_q[node].is_empty() {
                    self.inj_state[node] = InjState::Ready;
                    self.inj_ready.push(node as u32);
                }
            }
        }
        // Tail release: owned VCs drain from the front of the chain; each
        // freed VC wakes its parked waiters.
        loop {
            let front = {
                let msg = self.messages[s].as_ref().expect("release slot");
                match msg.chain.front() {
                    Some(&f) if self.msg_uninjected[s] == 0 && self.vc_occ[f as usize] == 0 => f,
                    _ => break,
                }
            };
            self.vc_owner[front as usize] = NO_OWNER;
            self.vc_feed[front as usize] = NO_OWNER;
            self.vc_next[front as usize] = NO_OWNER;
            self.owned_per_channel[self.vc_chan[front as usize] as usize] -= 1;
            {
                let msg = self.messages[s].as_mut().expect("release slot");
                msg.chain.pop_front();
                msg.front_seq += 1;
                if self.wait_tracking && msg.blocked {
                    // A blocked message's settled chain shrank.
                    self.wait_dirty.push(msg.id);
                }
                if let Some(&nf) = msg.chain.front() {
                    // The new front is fed straight from the (drained)
                    // source.
                    self.vc_feed[nf as usize] = FROM_SOURCE;
                }
            }
            self.wake_resource(front);
        }
        let done = {
            let msg = self.messages[s].as_ref().expect("release slot");
            msg.delivered == msg.len
        };
        if !done {
            return;
        }
        let (reception, recovered, id) = {
            let msg = self.messages[s].as_ref().expect("release slot");
            debug_assert!(msg.chain.is_empty());
            debug_assert_eq!(self.msg_uninjected[s], 0);
            let recovered = msg.phase == MsgPhase::Recovering;
            events.delivered.push(DeliveredMsg {
                id: msg.id,
                src: msg.src,
                dst: msg.dst,
                latency: self.cycle + 1 - msg.born,
                network_latency: self.cycle + 1 - msg.injected_at,
                hops: msg.next_seq,
                len: msg.len,
                recovered,
            });
            let reception = (msg.phase == MsgPhase::Ejecting)
                .then(|| msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize);
            (reception, recovered, msg.id)
        };
        self.total_delivered += 1;
        if recovered {
            self.total_recovered += 1;
        }
        if let Some(t) = self.tracer.as_mut() {
            t.push(crate::TraceEvent::Delivered {
                cycle: self.cycle,
                id,
                recovered,
            });
        }
        let freed_node = reception.map(|r| {
            debug_assert_eq!(self.reception[r], slot);
            self.reception[r] = NO_OWNER;
            r / self.reception_per_node
        });
        self.finish_slot(slot);
        if let Some(node) = freed_node {
            self.wake_resource((self.num_vcs() + node) as u32);
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Exhaustive consistency check; called from tests after stepping.
    ///
    /// Verifies flit conservation per message, owner/chain agreement,
    /// occupancy bounds, per-channel owned counts, and injection/reception
    /// bookkeeping.
    pub fn check_invariants(&self) {
        let vcs_per = self.cfg.vcs_per_channel;
        let mut owned_seen = vec![0u16; self.topo.num_channels()];
        for (i, &slot) in self.active.iter().enumerate() {
            assert_eq!(
                self.active_idx[slot as usize], i as u32,
                "active back-map out of sync for slot {slot}"
            );
        }
        for (slot, &i) in self.active_idx.iter().enumerate() {
            if i != NO_OWNER {
                assert_eq!(self.active[i as usize] as usize, slot);
            } else {
                assert!(
                    self.messages.get(slot).is_none_or(|m| m.is_none()),
                    "live slot {slot} missing from the active list"
                );
            }
        }
        for &slot in &self.active {
            let msg = self.messages[slot as usize].as_ref().expect("active slot");
            assert_eq!(self.slot_id[slot as usize], msg.id, "slot_id out of sync");
            let in_chain: u32 = msg
                .chain
                .iter()
                .map(|&v| self.vc_occ[v as usize] as u32)
                .sum();
            assert_eq!(
                in_chain,
                msg.flits_in_network(self.msg_uninjected[slot as usize]),
                "flit conservation violated for message {}",
                msg.id
            );
            for (p, &v) in msg.chain.iter().enumerate() {
                let v = v as usize;
                assert_eq!(self.vc_owner[v], slot, "chain VC not owned by its message");
                assert_eq!(self.vc_seq[v], msg.front_seq + p as u32, "seq mismatch");
                assert!(self.vc_occ[v] as usize <= self.cfg.buffer_depth);
                // The feed/next chain-link caches mirror the chain exactly.
                let feed = if p == 0 {
                    FROM_SOURCE
                } else {
                    msg.chain[p - 1]
                };
                assert_eq!(self.vc_feed[v], feed, "vc_feed diverged from chain");
                let next = msg.chain.get(p + 1).copied().unwrap_or(NO_OWNER);
                assert_eq!(self.vc_next[v], next, "vc_next diverged from chain");
                owned_seen[v / vcs_per] += 1;
            }
            // Chain follows physically adjacent channels.
            for w in msg.chain.make_contiguous_ref().windows(2) {
                let a = self.topo.channel(ChannelId(w[0] / vcs_per as u32));
                let b = self.topo.channel(ChannelId(w[1] / vcs_per as u32));
                assert_eq!(a.dst, b.src, "chain must be a connected path");
            }
            if msg.phase == MsgPhase::Ejecting {
                let r = msg.dst.idx() * self.reception_per_node + msg.reception_slot as usize;
                assert_eq!(self.reception[r], slot);
            }
        }
        for (ch, &count) in owned_seen.iter().enumerate() {
            assert_eq!(
                count, self.owned_per_channel[ch],
                "owned count mismatch on channel {ch}"
            );
        }
        for (v, &owner) in self.vc_owner.iter().enumerate() {
            if owner == NO_OWNER {
                assert_eq!(self.vc_occ[v], 0, "free VC {v} holds flits");
                assert_eq!(self.vc_feed[v], NO_OWNER, "free VC {v} keeps a feed");
                assert_eq!(self.vc_next[v], NO_OWNER, "free VC {v} keeps a next");
            } else {
                assert!(self.messages[owner as usize].is_some());
            }
        }
        let blocked_scan = self
            .active
            .iter()
            .filter(|&&s| self.messages[s as usize].as_ref().unwrap().blocked)
            .count();
        assert_eq!(self.blocked_ctr, blocked_scan, "blocked counter drifted");
        if self.mode == StepMode::Activity {
            self.check_activity_invariants();
        }
    }

    /// Activity-engine consistency, including the no-missed-wake
    /// guarantees: a parked waiter's watched resources are all busy, a
    /// movable VC's channel is on the active list, and an idle injector
    /// has nothing it could inject.
    fn check_activity_invariants(&self) {
        let vcs_per = self.cfg.vcs_per_channel;
        // Wake lists and watch tables are bidirectionally consistent.
        let mut total_watches = 0usize;
        for (w, watches) in self.msg_watches.iter().enumerate() {
            for (k, &(r, i)) in watches.iter().enumerate() {
                let e = self.wake_lists[r as usize][i as usize];
                assert_eq!(e.waiter, w as u32, "watch back-pointer broken");
                assert_eq!(e.watch_pos, k as u32, "watch back-pointer broken");
                total_watches += 1;
            }
        }
        for (node, watches) in self.inj_watches.iter().enumerate() {
            for (k, &(r, i)) in watches.iter().enumerate() {
                let e = self.wake_lists[r as usize][i as usize];
                assert_eq!(
                    e.waiter,
                    INJECTOR | node as u32,
                    "watch back-pointer broken"
                );
                assert_eq!(e.watch_pos, k as u32, "watch back-pointer broken");
                total_watches += 1;
            }
        }
        let total_entries: usize = self.wake_lists.iter().map(|l| l.len()).sum();
        assert_eq!(total_entries, total_watches, "stale wake-list entries");

        // Every queued routing message appears exactly once across the
        // allocation queue (or the per-shard queues), and the woken
        // buffer.
        let mut queued_seen = vec![0u32; self.messages.len()];
        for &s in self
            .alloc_queue
            .iter()
            .chain(self.shard_queues.iter().flatten())
            .chain(self.woken.iter())
        {
            assert!(self.messages[s as usize].is_some(), "dead slot queued");
            if self.alloc_state[s as usize] == AllocState::Queued {
                queued_seen[s as usize] += 1;
            }
        }
        // Sharded scheduling: queues id-sorted, every queued entry in the
        // shard owning its header's node, and all barrier scratch drained.
        if let Some(plan) = &self.shard_plan {
            for (shard, queue) in self.shard_queues.iter().enumerate() {
                for w in queue.windows(2) {
                    assert!(
                        self.slot_id[w[0] as usize] < self.slot_id[w[1] as usize],
                        "shard queue {shard} out of id order"
                    );
                }
                for &s in queue {
                    if self.alloc_state[s as usize] != AllocState::Queued {
                        continue;
                    }
                    let msg = self.messages[s as usize].as_ref().unwrap();
                    let &head = msg.chain.back().expect("queued message owns its head VC");
                    assert_eq!(
                        plan.shard_of_chan_dst(ChannelId(head / vcs_per as u32)),
                        shard,
                        "message {} queued in the wrong shard",
                        msg.id
                    );
                }
            }
            for outbox in &self.shard_outboxes {
                assert!(
                    outbox.is_empty(),
                    "migration mailboxes drain at the barrier"
                );
            }
            for bucket in &self.shard_woken {
                assert!(bucket.is_empty(), "woken buckets drain at the merge");
            }
        }
        for &s in &self.inj_ready {
            assert_eq!(self.inj_state[s as usize], InjState::Ready);
        }

        let mut cand = Vec::new();
        for &slot in &self.active {
            let msg = self.messages[slot as usize].as_ref().unwrap();
            let s = slot as usize;
            if msg.phase != MsgPhase::Routing {
                assert_eq!(self.alloc_state[s], AllocState::Inactive);
                assert_ne!(
                    self.drain_idx[s], NO_OWNER,
                    "draining message not on drain list"
                );
                assert_eq!(self.drain_list[self.drain_idx[s] as usize], slot);
                continue;
            }
            match self.alloc_state[s] {
                AllocState::Queued => {
                    assert_eq!(
                        queued_seen[s], 1,
                        "queued message {} lost or duplicated",
                        msg.id
                    );
                    assert!(self.msg_watches[s].is_empty());
                }
                AllocState::Parked => {
                    assert!(msg.blocked, "parked message must be blocked");
                    let &head = msg.chain.back().unwrap();
                    assert!(self.vc_occ[head as usize] >= 1);
                    let here = self.topo.channel(ChannelId(head / vcs_per as u32)).dst;
                    if here == msg.dst {
                        // Waiting for a reception channel: all busy, and
                        // exactly the reception group is watched.
                        let base = here.idx() * self.reception_per_node;
                        for r in 0..self.reception_per_node {
                            assert_ne!(
                                self.reception[base + r],
                                NO_OWNER,
                                "parked at destination with a free reception slot: missed wake"
                            );
                        }
                        assert_eq!(self.msg_watches[s].len(), 1);
                        assert_eq!(
                            self.msg_watches[s][0].0,
                            (self.num_vcs() + here.idx()) as u32,
                            "destination wait must watch the reception group"
                        );
                    } else {
                        compute_candidates(
                            &self.topo,
                            &*self.routing,
                            vcs_per,
                            &self.failed,
                            &ctx_of(msg, here),
                            &mut cand,
                        );
                        let mut n_cand_vcs = 0;
                        for c in &cand {
                            let base = c.channel.idx() * vcs_per;
                            for v in c.vcs.iter() {
                                assert_ne!(
                                    self.vc_owner[base + v],
                                    NO_OWNER,
                                    "parked message {} has a free candidate VC: missed wake",
                                    msg.id
                                );
                                n_cand_vcs += 1;
                            }
                        }
                        assert_eq!(
                            self.msg_watches[s].len(),
                            n_cand_vcs,
                            "watch set does not match candidate set"
                        );
                        if !self.fault_mode {
                            assert!(
                                self.cand_cache_valid[s],
                                "parked message without frozen candidates"
                            );
                            let flat: Vec<u32> = cand
                                .iter()
                                .flat_map(|c| {
                                    let base = c.channel.idx() * vcs_per;
                                    c.vcs.iter().map(move |v| (base + v) as u32)
                                })
                                .collect();
                            assert_eq!(
                                self.cand_cache[s], flat,
                                "frozen candidate set diverged from recompute"
                            );
                        }
                    }
                }
                AllocState::Inactive => panic!("routing message {} inactive", msg.id),
            }
        }

        // Injector scheduling: an idle node must have nothing injectable.
        for node in 0..self.topo.num_nodes() {
            let has_free_slot = (self.injecting_count[node] as usize) < self.injection_per_node;
            match self.inj_state[node] {
                InjState::Idle => {
                    assert!(
                        self.source_q[node].is_empty() || !has_free_slot,
                        "idle injector {node} with work and a free channel: missed wake"
                    );
                    assert!(self.inj_watches[node].is_empty());
                }
                InjState::Ready => {
                    assert_eq!(
                        self.inj_ready
                            .iter()
                            .filter(|&&n| n as usize == node)
                            .count(),
                        1
                    );
                }
                InjState::Parked => {
                    let &Pending { dst, .. } = self.source_q[node]
                        .front()
                        .expect("parked injector has work");
                    assert!(has_free_slot, "parked injector without a free channel");
                    let src = NodeId(node as u32);
                    compute_candidates(
                        &self.topo,
                        &*self.routing,
                        vcs_per,
                        &self.failed,
                        &RoutingCtx::fresh(src, dst, src),
                        &mut cand,
                    );
                    let mut n_cand_vcs = 0;
                    for c in &cand {
                        let base = c.channel.idx() * vcs_per;
                        for v in c.vcs.iter() {
                            assert_ne!(
                                self.vc_owner[base + v],
                                NO_OWNER,
                                "parked injector {node} has a free candidate VC: missed wake"
                            );
                            n_cand_vcs += 1;
                        }
                    }
                    assert_eq!(self.inj_watches[node].len(), n_cand_vcs);
                    if !self.fault_mode {
                        assert!(
                            self.inj_cand_valid[node],
                            "parked injector without frozen candidates"
                        );
                        let flat: Vec<u32> = cand
                            .iter()
                            .flat_map(|c| {
                                let base = c.channel.idx() * vcs_per;
                                c.vcs.iter().map(move |v| (base + v) as u32)
                            })
                            .collect();
                        assert_eq!(
                            self.inj_cand_cache[node], flat,
                            "frozen injector candidate set diverged from recompute"
                        );
                    }
                }
            }
        }

        // Channel activity: any VC a flit could move into next cycle sits
        // on an active channel.
        let depth = self.cfg.buffer_depth as u16;
        for (v, &owner) in self.vc_owner.iter().enumerate() {
            if owner == NO_OWNER || self.vc_occ[v] >= depth {
                continue;
            }
            let feed = self.vc_feed[v];
            let fed = if feed == FROM_SOURCE {
                self.msg_uninjected[owner as usize] > 0
            } else {
                self.vc_occ[feed as usize] >= 1
            };
            if fed {
                let ch = v / vcs_per;
                assert!(
                    self.chan_words[ch >> 6] >> (ch & 63) & 1 == 1,
                    "movable VC {v} on a dormant channel: missed transfer"
                );
            }
        }
        // The scan side is idle between steps.
        assert!(self.chan_scan.iter().all(|&w| w == 0));

        // Dirty-mark discipline: every occupancy that diverged from the
        // `occ_start` snapshot carries a mark (no missed patch).
        for (v, &occ) in self.vc_occ.iter().enumerate() {
            if self.occ_dirty_words[v >> 6] >> (v & 63) & 1 == 0 {
                assert_eq!(
                    self.occ_start[v], occ,
                    "VC {v} occupancy diverged from occ_start without a dirty mark"
                );
            }
        }

        // Drain list back-map and cached heads.
        assert_eq!(self.drain_list.len(), self.drain_head.len());
        for (i, &slot) in self.drain_list.iter().enumerate() {
            assert_eq!(self.drain_idx[slot as usize], i as u32);
            let msg = self.messages[slot as usize].as_ref().unwrap();
            assert_ne!(msg.phase, MsgPhase::Routing);
            assert_eq!(
                msg.chain.back(),
                Some(&self.drain_head[i]),
                "stale cached drain head for slot {slot}"
            );
        }

        // Transfer decide/apply buffers fully drained between steps.
        for buf in &self.xfer_bufs {
            assert!(buf.moves.is_empty() && buf.stalled.is_empty());
        }

        // Release work queue fully drained between steps; only deferred
        // visits (injection completed within the injection cycle) carry
        // over, and the flags mark exactly those slots.
        assert!(self.release_check.is_empty());
        for (s, &f) in self.release_flag.iter().enumerate() {
            assert_eq!(
                f,
                self.release_deferred.contains(&(s as u32)),
                "release_flag[{s}] inconsistent with release_deferred"
            );
        }
        for &slot in &self.release_deferred {
            let msg = self.messages[slot as usize]
                .as_ref()
                .expect("deferred slot live");
            assert_eq!(self.msg_uninjected[slot as usize], 0);
            assert!(msg.holds_injection);
            assert_eq!(msg.injected_at + 1, self.cycle);
        }
    }
}

/// Merges id-sorted `add` into the id-sorted `queue` (two-pointer merge
/// through `scratch`); `add` is left untouched. Shared by the serial and
/// sharded woken-merges and by the sharded allocation barrier.
fn merge_sorted_by_id(queue: &mut Vec<u32>, add: &[u32], scratch: &mut Vec<u32>, slot_id: &[u64]) {
    let id_of = |s: u32| slot_id[s as usize];
    scratch.clear();
    let (mut a, mut w) = (0usize, 0usize);
    while a < queue.len() && w < add.len() {
        if id_of(queue[a]) <= id_of(add[w]) {
            scratch.push(queue[a]);
            a += 1;
        } else {
            scratch.push(add[w]);
            w += 1;
        }
    }
    scratch.extend_from_slice(&queue[a..]);
    scratch.extend_from_slice(&add[w..]);
    std::mem::swap(queue, scratch);
}

/// First free VC across the candidate list, respecting candidate order
/// (the routing relation's preference order) and, within a channel,
/// ascending VC index.
fn first_free_vc(vc_owner: &[u32], vcs_per: usize, cands: &[Candidate]) -> Option<u32> {
    for cand in cands {
        let base = cand.channel.idx() * vcs_per;
        for v in cand.vcs.iter() {
            if vc_owner[base + v] == NO_OWNER {
                return Some((base + v) as u32);
            }
        }
    }
    None
}

/// Mutable borrow bundle over the per-VC hot-state vectors, split out of
/// `Network` so `acquire_vc` can run while a message is borrowed from the
/// slab.
struct VcState<'a> {
    owner: &'a mut [u32],
    seq: &'a mut [u32],
    feed: &'a mut [u32],
    next: &'a mut [u32],
    owned_per_channel: &'a mut [u16],
}

/// Grants `vc_idx` to `msg` and updates selection-policy / dateline state,
/// including the feed/next chain-link caches.
fn acquire_vc(
    vc: VcState<'_>,
    topo: &KAryNCube,
    vcs_per: usize,
    msg: &mut Message,
    vc_idx: u32,
    slot: u32,
) {
    let i = vc_idx as usize;
    debug_assert_eq!(vc.owner[i], NO_OWNER);
    vc.owner[i] = slot;
    vc.seq[i] = msg.next_seq;
    // Link the new head into the feed chain: it is fed by the old head,
    // or straight from the source when it starts the chain.
    match msg.chain.back() {
        Some(&h) => {
            vc.feed[i] = h;
            vc.next[h as usize] = vc_idx;
        }
        None => vc.feed[i] = FROM_SOURCE,
    }
    vc.next[i] = NO_OWNER;
    let owned_per_channel = vc.owned_per_channel;
    msg.chain.push_back(vc_idx);
    msg.next_seq += 1;
    let ch = ChannelId(vc_idx / vcs_per as u32);
    owned_per_channel[ch.idx()] += 1;
    let info = topo.channel(ch);
    msg.last_dim = Some(info.dim);
    if topo.is_wraparound(ch) {
        msg.crossed |= 1 << info.dim;
    }
    // A hop that does not reduce the distance to the destination spends
    // misroute budget (non-minimal relations only ever offer such hops
    // while budget remains).
    if topo.distance(info.dst, msg.dst) >= topo.distance(info.src, msg.dst) {
        msg.misroutes = msg.misroutes.saturating_add(1);
    }
    msg.blocked = false;
    msg.blocked_since = None;
}

/// `VecDeque::make_contiguous` needs `&mut`; for the read-only invariant
/// checker we just collect when the deque wraps.
trait MakeContiguousRef {
    fn make_contiguous_ref(&self) -> Vec<u32>;
}

impl MakeContiguousRef for VecDeque<u32> {
    fn make_contiguous_ref(&self) -> Vec<u32> {
        self.iter().copied().collect()
    }
}
