//! Per-step event reporting.

use crate::message::MessageId;
use icn_topology::NodeId;

/// A message that finished this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveredMsg {
    pub id: MessageId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Cycles from generation to last flit delivered (includes source
    /// queueing).
    pub latency: u64,
    /// Cycles from first VC acquisition to last flit delivered.
    pub network_latency: u64,
    /// Header hops taken (VC acquisitions).
    pub hops: u32,
    /// Message length in flits.
    pub len: u32,
    /// Delivered through the recovery lane rather than normal ejection.
    pub recovered: bool,
}

/// Everything that happened during one [`crate::Network::step`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepEvents {
    /// Messages completed this cycle.
    pub delivered: Vec<DeliveredMsg>,
    /// Flits moved across physical links this cycle (link utilization).
    pub link_flits: u32,
    /// Messages that started injection (acquired their first VC).
    pub injected: u32,
    /// Flits ejected this cycle (normal reception or recovery lane).
    /// Non-zero drains count as progress for stall watchdogs even when no
    /// link moved.
    pub drained_flits: u32,
    /// In-network messages dropped this cycle by fault injection (link
    /// down, or unroutable after an outage).
    pub fault_losses: u32,
    /// Source-queued messages rejected this cycle because their first hop
    /// was unroutable under the active fault set.
    pub fault_rejected: u32,
}
