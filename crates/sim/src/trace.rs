//! Optional per-message event tracing.
//!
//! Disabled by default (zero overhead beyond a branch); when enabled, the
//! engine records the lifecycle of every message — injection, each VC
//! acquisition, blocking episodes, ejection, recovery, delivery — up to a
//! capacity bound. Invaluable when dissecting how a particular deadlock
//! assembled itself.

use icn_topology::{ChannelId, NodeId};

use crate::message::MessageId;

/// One engine event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Header acquired its first VC (left the source queue).
    Injected {
        cycle: u64,
        id: MessageId,
        src: NodeId,
        dst: NodeId,
        len: u32,
    },
    /// Header acquired a VC on `channel`.
    Acquired {
        cycle: u64,
        id: MessageId,
        channel: ChannelId,
        vc: u8,
    },
    /// Header failed to acquire any candidate (start of a blocking
    /// episode; re-emitted only on transitions, not every cycle).
    Blocked {
        cycle: u64,
        id: MessageId,
        at: NodeId,
        /// The physical channels the routing relation offered and the
        /// header failed to acquire — the resources a wait-for arc would
        /// point at. Empty when the message is waiting at its destination
        /// for a (busy) reception channel rather than for a link.
        candidates: Vec<ChannelId>,
    },
    /// Header acquired the reception channel at its destination.
    EjectStart { cycle: u64, id: MessageId },
    /// Message was named a deadlock victim and switched to the recovery
    /// lane.
    RecoveryStart { cycle: u64, id: MessageId },
    /// Last flit drained; message complete.
    Delivered {
        cycle: u64,
        id: MessageId,
        recovered: bool,
    },
    /// Message dropped by fault injection (its channel went down, or an
    /// outage left it unroutable); counted as a fault loss, not a
    /// delivery.
    FaultLoss { cycle: u64, id: MessageId },
}

impl TraceEvent {
    /// The message the event belongs to.
    pub fn id(&self) -> MessageId {
        match *self {
            TraceEvent::Injected { id, .. }
            | TraceEvent::Acquired { id, .. }
            | TraceEvent::Blocked { id, .. }
            | TraceEvent::EjectStart { id, .. }
            | TraceEvent::RecoveryStart { id, .. }
            | TraceEvent::Delivered { id, .. }
            | TraceEvent::FaultLoss { id, .. } => id,
        }
    }

    /// The cycle the event occurred.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Injected { cycle, .. }
            | TraceEvent::Acquired { cycle, .. }
            | TraceEvent::Blocked { cycle, .. }
            | TraceEvent::EjectStart { cycle, .. }
            | TraceEvent::RecoveryStart { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::FaultLoss { cycle, .. } => cycle,
        }
    }
}

/// Bounded event recorder.
#[derive(Clone, Debug)]
pub(crate) struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    pub fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (std::mem::take(&mut self.events), dropped)
    }
}
