//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s — cycle-stamped outages
//! installed on a [`crate::Network`] before stepping begins. The engine
//! applies every event due at cycle `c` at the *start* of cycle `c`, in a
//! canonical order, in **both** steppers, so a faulted run remains
//! byte-identical between the activity-driven and dense engines and
//! across replays.
//!
//! The fault model:
//!
//! * **Link outages** ([`FaultKind::LinkDown`] / [`FaultKind::LinkUp`]):
//!   a downed physical channel drops every message holding one of its
//!   VCs (a counted *fault loss*), and is excluded from candidate sets
//!   until a matching `LinkUp`. A plan with only `LinkDown` models a
//!   permanent kill; a down/up pair models a transient outage window.
//! * **Router stalls** ([`FaultKind::NodeStall`]): the node freezes for
//!   `cycles` — no injection, VC allocation, link transfer, or
//!   ejection/recovery drain is performed *by* that node. Buffered
//!   traffic is preserved and resumes when the stall ends; overlapping
//!   stalls extend to the latest end.
//! * **Injection-source failures** ([`FaultKind::InjectorDown`]): the
//!   node's injector is offline for `cycles`; generated traffic keeps
//!   queueing at the source and drains when the injector returns.
//!
//! Messages whose fault-filtered candidate set becomes *empty* (e.g. DOR
//! on a severed dimension) are unroutable: the engine drops them with a
//! counted fault loss rather than letting them wedge forever, and
//! rejects queued traffic whose very first hop is unroutable. Adaptive
//! relations (TFAR and friends) simply route around the outage whenever
//! an alternative minimal path survives.

/// One kind of scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Physical channel `channel` goes down: current traffic on it is
    /// dropped and it is excluded from routing until a `LinkUp`.
    LinkDown { channel: u32 },
    /// Physical channel `channel` comes back up.
    LinkUp { channel: u32 },
    /// Node `node` freezes for `cycles` cycles (router stall).
    NodeStall { node: u32, cycles: u64 },
    /// Node `node`'s injection source is offline for `cycles` cycles.
    InjectorDown { node: u32, cycles: u64 },
}

impl FaultKind {
    /// Canonical same-cycle application order: ups before downs (so a
    /// same-cycle down/up pair on one channel nets to *down*, i.e. a new
    /// outage), then stalls, then injector failures; ties broken by id.
    fn rank(&self) -> (u8, u32) {
        match *self {
            FaultKind::LinkUp { channel } => (0, channel),
            FaultKind::LinkDown { channel } => (1, channel),
            FaultKind::NodeStall { node, .. } => (2, node),
            FaultKind::InjectorDown { node, .. } => (3, node),
        }
    }
}

/// A fault scheduled for the start of `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Engine cycle at whose start the fault applies.
    pub cycle: u64,
    pub kind: FaultKind,
}

/// A deterministic, serializable schedule of faults. Event order in
/// `events` is irrelevant: the engine applies the canonical
/// [`FaultPlan::normalized`] order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; engine behavior is byte-identical to a
    /// network without a plan installed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedules a permanent channel kill at `cycle`.
    pub fn link_kill(&mut self, cycle: u64, channel: u32) -> &mut Self {
        self.events.push(FaultEvent {
            cycle,
            kind: FaultKind::LinkDown { channel },
        });
        self
    }

    /// Schedules a transient outage: `channel` is down for cycles
    /// `[down, up)`.
    pub fn link_outage(&mut self, channel: u32, down: u64, up: u64) -> &mut Self {
        assert!(down < up, "outage window must be non-empty");
        self.events.push(FaultEvent {
            cycle: down,
            kind: FaultKind::LinkDown { channel },
        });
        self.events.push(FaultEvent {
            cycle: up,
            kind: FaultKind::LinkUp { channel },
        });
        self
    }

    /// Schedules a router stall: `node` freezes for `cycles` starting at
    /// `cycle`.
    pub fn node_stall(&mut self, cycle: u64, node: u32, cycles: u64) -> &mut Self {
        self.events.push(FaultEvent {
            cycle,
            kind: FaultKind::NodeStall { node, cycles },
        });
        self
    }

    /// Schedules an injection-source outage at `node` for `cycles`
    /// starting at `cycle`.
    pub fn injector_down(&mut self, cycle: u64, node: u32, cycles: u64) -> &mut Self {
        self.events.push(FaultEvent {
            cycle,
            kind: FaultKind::InjectorDown { node, cycles },
        });
        self
    }

    /// The canonical application order: by cycle, ups before downs before
    /// stalls before injector outages, ties broken by channel/node id.
    pub fn normalized(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| (e.cycle, e.kind.rank()));
        events
    }

    /// Panics if any event names a channel/node outside the network, or
    /// a zero-length stall/outage duration.
    pub fn validate(&self, num_channels: usize, num_nodes: usize) {
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown { channel } | FaultKind::LinkUp { channel } => {
                    assert!(
                        (channel as usize) < num_channels,
                        "fault plan names channel {channel}, network has {num_channels}"
                    );
                }
                FaultKind::NodeStall { node, cycles }
                | FaultKind::InjectorDown { node, cycles } => {
                    assert!(
                        (node as usize) < num_nodes,
                        "fault plan names node {node}, network has {num_nodes}"
                    );
                    assert!(cycles > 0, "zero-length fault at node {node}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_orders_ups_before_downs() {
        let mut plan = FaultPlan::new();
        plan.link_kill(10, 3);
        plan.link_outage(3, 4, 10); // LinkUp at 10 must sort before the kill
        plan.node_stall(10, 1, 5);
        let order = plan.normalized();
        assert_eq!(
            order,
            vec![
                FaultEvent {
                    cycle: 4,
                    kind: FaultKind::LinkDown { channel: 3 }
                },
                FaultEvent {
                    cycle: 10,
                    kind: FaultKind::LinkUp { channel: 3 }
                },
                FaultEvent {
                    cycle: 10,
                    kind: FaultKind::LinkDown { channel: 3 }
                },
                FaultEvent {
                    cycle: 10,
                    kind: FaultKind::NodeStall { node: 1, cycles: 5 }
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "names channel")]
    fn validate_rejects_out_of_range_channels() {
        let mut plan = FaultPlan::new();
        plan.link_kill(0, 99);
        plan.validate(10, 4);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        let mut plan = FaultPlan::new();
        plan.injector_down(5, 0, 10);
        assert!(!plan.is_empty());
        plan.validate(1, 1);
    }
}
