//! Simulator configuration.

use icn_routing::MAX_VCS;

/// Per-run simulator parameters.
///
/// The paper's defaults (§3): 32-flit messages, edge buffers of 2 flits,
/// and a VC count swept from 1 to 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Virtual channels per physical channel (1–16).
    pub vcs_per_channel: usize,
    /// Edge-buffer depth per VC, in flits. Depth ≥ `msg_len` yields virtual
    /// cut-through behaviour.
    pub buffer_depth: usize,
    /// Message length in flits.
    pub msg_len: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 32,
        }
    }
}

impl SimConfig {
    /// Validates the configuration, panicking with a description on error.
    pub fn validate(&self) {
        assert!(
            (1..=MAX_VCS).contains(&self.vcs_per_channel),
            "vcs_per_channel must be 1..={MAX_VCS}"
        );
        assert!(self.buffer_depth >= 1, "buffers hold at least one flit");
        assert!(
            self.buffer_depth <= u16::MAX as usize,
            "buffer depth exceeds occupancy counter range"
        );
        assert!(self.msg_len >= 1, "messages have at least one flit");
        assert!(self.msg_len <= u32::MAX as usize, "message too long");
    }

    /// True when a whole message fits in a single VC buffer (virtual
    /// cut-through switching).
    pub fn is_cut_through(&self) -> bool {
        self.buffer_depth >= self.msg_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_default() {
        let c = SimConfig::default();
        c.validate();
        assert_eq!(c.msg_len, 32);
        assert_eq!(c.buffer_depth, 2);
        assert!(!c.is_cut_through());
    }

    #[test]
    fn cut_through_detection() {
        let c = SimConfig {
            buffer_depth: 32,
            ..Default::default()
        };
        assert!(c.is_cut_through());
    }

    #[test]
    #[should_panic(expected = "vcs_per_channel")]
    fn zero_vcs_rejected() {
        SimConfig {
            vcs_per_channel: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_depth_rejected() {
        SimConfig {
            buffer_depth: 0,
            ..Default::default()
        }
        .validate();
    }
}
