//! Saturation-focused differential: the activity stepper's hot path (the
//! fused bitset transfer walk, drain-head cache, and frozen candidate
//! reuse) earns its keep above saturation — which is exactly where a
//! missed wake, a stale cached head, or a reordered move would surface.
//! Every case here offers traffic faster than the network can drain it
//! (every node enqueues every cycle) and checks the activity engine
//! against the dense reference cycle-for-cycle: same [`StepEvents`], same
//! invariants, same counters, same traces.
//!
//! The deterministic cases mirror the golden figures' regimes (fig5–fig8
//! of the paper): a 1-VC unidirectional DOR torus (the canonical deadlock
//! machine), its bidirectional twin, adaptive TFAR with 2 VCs, and a
//! deep-buffer virtual cut-through point; plus a faulted case under a
//! `random_plan`-shaped schedule of link outages, a link kill, a router
//! stall, and an injector outage. The proptest sweeps randomized
//! above-saturation points on top.

use icn_routing::{Dor, DuatoFar, RoutingAlgorithm, Tfar};
use icn_sim::{FaultPlan, Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use proptest::prelude::*;

/// SplitMix64, as in the base differential suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Golden {
    topo: KAryNCube,
    routing: fn() -> Box<dyn RoutingAlgorithm>,
    cfg: SimConfig,
}

/// The four golden-regime points, at the bench's 8-ary 2-cube scale.
fn goldens() -> Vec<Golden> {
    vec![
        // fig5 regime: DOR, one VC, unidirectional — wedges hard.
        Golden {
            topo: KAryNCube::torus(8, 2, false),
            routing: || Box::new(Dor),
            cfg: SimConfig {
                vcs_per_channel: 1,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        // fig5/fig6 regime: the bidirectional twin.
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(Dor),
            cfg: SimConfig {
                vcs_per_channel: 1,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        // fig6/fig7 regime: unrestricted adaptive routing, two VCs.
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(Tfar),
            cfg: SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        // fig8 regime: deep buffers (virtual cut-through).
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(DuatoFar),
            cfg: SimConfig {
                vcs_per_channel: 3,
                buffer_depth: 8,
                msg_len: 8,
            },
        },
    ]
}

/// Drives both steppers through `cycles` of above-saturation traffic
/// (every node offers a message every cycle) with periodic recovery
/// pulls, comparing everything. A non-empty `plan` is installed in both
/// instances before stepping.
fn saturated_case(g: &Golden, plan: &FaultPlan, seed: u64, cycles: u64) {
    let build = || {
        let mut net = Network::new(g.topo.clone(), (g.routing)(), g.cfg);
        if !plan.is_empty() {
            net.set_fault_plan(plan);
        }
        net
    };
    let mut a = build();
    let mut b = build();
    a.enable_trace(1 << 15);
    b.enable_trace(1 << 15);
    let nodes = g.topo.num_nodes() as u64;
    let mut arrivals = Rng(seed);
    for cycle in 0..cycles {
        for n in 0..nodes {
            // Above saturation: every node offers traffic every cycle.
            let mut dst = arrivals.below(nodes);
            if dst == n {
                dst = (dst + 1) % nodes;
            }
            a.enqueue(NodeId(n as u32), NodeId(dst as u32));
            b.enqueue(NodeId(n as u32), NodeId(dst as u32));
        }
        // Recovery pulls keep the drain path (and its cached heads) hot.
        if cycle % 48 == 47 {
            let victim = a
                .active_ids()
                .into_iter()
                .find(|&id| a.message_info(id).is_some_and(|m| m.blocked));
            if let Some(id) = victim {
                assert_eq!(a.message_info(id), b.message_info(id));
                assert_eq!(a.start_recovery(id), b.start_recovery(id));
            }
        }
        let ea = a.step();
        let eb = b.step_reference();
        assert_eq!(
            ea, eb,
            "step events diverged at cycle {cycle} (seed {seed})"
        );
        if cycle % 32 == 0 || cycle + 1 == cycles {
            a.check_invariants();
            b.check_invariants();
            assert_eq!(a.blocked_count(), b.blocked_count(), "cycle {cycle}");
            assert_eq!(a.in_network(), b.in_network(), "cycle {cycle}");
            assert_eq!(a.active_ids(), b.active_ids(), "cycle {cycle}");
        }
    }
    assert_eq!(
        a.totals(),
        b.totals(),
        "lifetime counters diverged (seed {seed})"
    );
    assert_eq!(a.fault_totals(), b.fault_totals());
    assert_eq!(a.source_queued(), b.source_queued());
    let (trace_a, dropped_a) = a.take_trace();
    let (trace_b, dropped_b) = b.take_trace();
    assert_eq!(dropped_a, dropped_b);
    assert_eq!(trace_a, trace_b, "traces diverged (seed {seed})");
}

#[test]
fn golden_regimes_agree_above_saturation() {
    for (i, g) in goldens().iter().enumerate() {
        saturated_case(g, &FaultPlan::new(), 0x5a7_0000 + i as u64, 700);
    }
}

/// A `random_plan`-shaped fault schedule (transient link outages, a
/// permanent kill, a router stall, an injector outage) on the canonical
/// wedging golden, above saturation.
#[test]
fn faulted_golden_agrees_above_saturation() {
    let g = &goldens()[0];
    let channels = g.topo.num_channels() as u64;
    let nodes = g.topo.num_nodes() as u64;
    let horizon = 700u64;
    let mut r = Rng(0xfa17_fa17);
    let lo = horizon / 10;
    let mut at = |r: &mut Rng| lo + r.below(horizon - lo);
    let mut plan = FaultPlan::new();
    for _ in 0..3 {
        let ch = r.below(channels) as u32;
        let down = at(&mut r);
        let dur = 1 + r.below(horizon / 10);
        plan.link_outage(ch, down, down + dur);
    }
    plan.link_kill(at(&mut r), r.below(channels) as u32);
    plan.node_stall(at(&mut r), r.below(nodes) as u32, 1 + r.below(horizon / 20));
    plan.injector_down(at(&mut r), r.below(nodes) as u32, 1 + r.below(horizon / 20));
    plan.validate(channels as usize, nodes as usize);
    saturated_case(g, &plan, 0xfau64 << 8, horizon);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized above-saturation points: any golden regime, any seed.
    #[test]
    fn saturation_differential_holds(seed in any::<u64>()) {
        let gs = goldens();
        let g = &gs[(seed % gs.len() as u64) as usize];
        saturated_case(g, &FaultPlan::new(), seed, 420);
    }
}
