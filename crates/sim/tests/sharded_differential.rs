//! Sharded-engine differential: the spatially sharded activity stepper
//! must be indistinguishable — same [`StepEvents`], counters, invariants,
//! and wait-for snapshots, cycle for cycle — from the serial activity
//! engine at every shard count. The allocation equivalence rests on a
//! header only ever contending for resources of the node it sits at
//! (owned by exactly one shard); these tests are what pins that argument
//! to the implementation, above saturation where queues, migrations, and
//! wakes are densest.
//!
//! Everything here requires the `parallel` cargo feature (the shard knob
//! is a no-op without it); the no-feature clamp itself is covered at the
//! workspace level in `tests/engine_sharded.rs`.
#![cfg(feature = "parallel")]

use icn_routing::{Dor, DuatoFar, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use proptest::prelude::*;

/// SplitMix64, as in the base differential suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Golden {
    topo: KAryNCube,
    routing: fn() -> Box<dyn RoutingAlgorithm>,
    cfg: SimConfig,
}

/// The four golden-regime points, as in the saturation differential.
fn goldens() -> Vec<Golden> {
    vec![
        Golden {
            topo: KAryNCube::torus(8, 2, false),
            routing: || Box::new(Dor),
            cfg: SimConfig {
                vcs_per_channel: 1,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(Dor),
            cfg: SimConfig {
                vcs_per_channel: 1,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(Tfar),
            cfg: SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 2,
                msg_len: 8,
            },
        },
        Golden {
            topo: KAryNCube::torus(8, 2, true),
            routing: || Box::new(DuatoFar),
            cfg: SimConfig {
                vcs_per_channel: 3,
                buffer_depth: 8,
                msg_len: 8,
            },
        },
    ]
}

/// Drives a serial and a sharded instance through `cycles` of
/// above-saturation traffic with periodic recovery pulls, comparing
/// events, counters, invariants, and snapshot fingerprints cycle for
/// cycle.
fn sharded_lockstep(g: &Golden, shards: usize, seed: u64, cycles: u64) {
    let mut a = Network::new(g.topo.clone(), (g.routing)(), g.cfg);
    let mut b = Network::new(g.topo.clone(), (g.routing)(), g.cfg);
    assert_eq!(a.set_shards(1), 1);
    let eff = b.set_shards(shards);
    assert_eq!(eff, shards.min(g.topo.num_nodes()), "effective shard count");
    let nodes = g.topo.num_nodes() as u64;
    let mut arrivals = Rng(seed);
    let mut arena_a = icn_sim::SnapshotArena::new();
    let mut arena_b = icn_sim::SnapshotArena::new();
    let mut frags: Vec<icn_sim::SnapshotFragment> =
        (0..eff).map(|_| icn_sim::SnapshotFragment::new()).collect();
    let mut assembled = icn_sim::SnapshotArena::new();
    for cycle in 0..cycles {
        for n in 0..nodes {
            let mut dst = arrivals.below(nodes);
            if dst == n {
                dst = (dst + 1) % nodes;
            }
            a.enqueue(NodeId(n as u32), NodeId(dst as u32));
            b.enqueue(NodeId(n as u32), NodeId(dst as u32));
        }
        // Recovery pulls cross the sharded scheduler: the victim's stale
        // queue entry must die in its shard queue exactly as it does in
        // the serial allocation queue.
        if cycle % 48 == 47 {
            let victim = a
                .active_ids()
                .into_iter()
                .find(|&id| a.message_info(id).is_some_and(|m| m.blocked));
            if let Some(id) = victim {
                assert_eq!(a.message_info(id), b.message_info(id));
                assert_eq!(a.start_recovery(id), b.start_recovery(id));
            }
        }
        let ea = a.step();
        let eb = b.step();
        assert_eq!(
            ea, eb,
            "step events diverged at cycle {cycle} ({shards} shards, seed {seed})"
        );
        if cycle % 32 == 0 || cycle + 1 == cycles {
            a.check_invariants();
            b.check_invariants();
            assert_eq!(a.blocked_count(), b.blocked_count(), "cycle {cycle}");
            assert_eq!(a.in_network(), b.in_network(), "cycle {cycle}");
            assert_eq!(a.active_ids(), b.active_ids(), "cycle {cycle}");
            a.wait_snapshot_into(&mut arena_a);
            b.wait_snapshot_into(&mut arena_b);
            assert_eq!(
                arena_a.fingerprint(),
                arena_b.fingerprint(),
                "wait-state diverged at cycle {cycle}"
            );
            // Per-shard fragments stitched back together must reproduce
            // the serial snapshot exactly: order, pool contents, blocked
            // census, fingerprint.
            for (s, frag) in frags.iter_mut().enumerate() {
                b.wait_snapshot_fragment(s, frag);
            }
            assembled.assemble(&frags);
            assert_eq!(assembled.num_vertices(), arena_a.num_vertices());
            assert_eq!(assembled.cycle(), arena_a.cycle());
            assert_eq!(assembled.len(), arena_a.len(), "cycle {cycle}");
            assert_eq!(assembled.num_blocked(), arena_a.num_blocked());
            assert_eq!(
                assembled.fingerprint(),
                arena_a.fingerprint(),
                "assembled fragment fingerprint diverged at cycle {cycle}"
            );
            for (x, y) in assembled.messages().zip(arena_a.messages()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.chain, y.chain, "chain of msg {} at cycle {cycle}", x.id);
                assert_eq!(x.requests, y.requests, "requests of msg {}", x.id);
            }
        }
    }
    assert_eq!(
        a.totals(),
        b.totals(),
        "lifetime counters diverged ({shards} shards, seed {seed})"
    );
    assert_eq!(a.source_queued(), b.source_queued());
}

#[test]
fn golden_regimes_agree_at_every_shard_count() {
    for (i, g) in goldens().iter().enumerate() {
        for shards in [2, 4, 8] {
            sharded_lockstep(g, shards, 0x5aa_0000 + i as u64, 500);
        }
    }
}

/// Shard counts that do not divide the node count exercise the unbalanced
/// ranges and the masked sub-word decide boundaries.
#[test]
fn ragged_shard_counts_agree() {
    let gs = goldens();
    for shards in [3, 5, 7, 11] {
        sharded_lockstep(&gs[1], shards, 0x9a6_6e0, 400);
    }
}

/// Oversharding clamps to the node count and still agrees.
#[test]
fn oversharding_clamps_and_agrees() {
    let g = Golden {
        topo: KAryNCube::torus(2, 2, true),
        routing: || Box::new(Dor),
        cfg: SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 4,
        },
    };
    sharded_lockstep(&g, 64, 0xc1a_0b5, 300);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized above-saturation points: any golden regime, any seed,
    /// any shard count 2..=9.
    #[test]
    fn sharded_differential_holds(seed in any::<u64>()) {
        let gs = goldens();
        let g = &gs[(seed % gs.len() as u64) as usize];
        let shards = 2 + (seed / 7 % 8) as usize;
        sharded_lockstep(g, shards, seed, 320);
    }
}
