//! End-to-end tests of the flit-level engine through its public API.

use icn_routing::{DatelineDor, Dor, Tfar};
use icn_sim::{MsgPhase, Network, SimConfig, StepEvents};
use icn_topology::{Coords, KAryNCube, NodeId};

fn net(
    topo: KAryNCube,
    routing: impl icn_routing::RoutingAlgorithm + 'static,
    cfg: SimConfig,
) -> Network {
    Network::new(topo, Box::new(routing), cfg)
}

fn run_until_delivered(
    n: &mut Network,
    expect: u64,
    max_cycles: u64,
) -> Vec<icn_sim::DeliveredMsg> {
    let mut out = Vec::new();
    for _ in 0..max_cycles {
        let ev = n.step();
        out.extend(ev.delivered);
        if out.len() as u64 >= expect {
            return out;
        }
    }
    panic!(
        "only {} of {expect} messages delivered after {max_cycles} cycles",
        out.len()
    );
}

#[test]
fn single_message_single_hop() {
    let topo = KAryNCube::torus(4, 2, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 1,
        },
    );
    n.enqueue(NodeId(0), NodeId(1));
    let done = run_until_delivered(&mut n, 1, 20);
    assert_eq!(done[0].hops, 1);
    // inject (c0) + arrive/acquire reception (c1) + eject (c1): latency 2.
    assert_eq!(done[0].latency, 2);
    assert!(!done[0].recovered);
    assert_eq!(n.in_network(), 0);
    n.check_invariants();
}

#[test]
fn latency_is_distance_plus_length_pipeline() {
    let topo = KAryNCube::torus(8, 2, true);
    let d = topo.distance(NodeId(0), topo.node_at(&Coords::new(&[3, 2])));
    assert_eq!(d, 5);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 4,
            msg_len: 16,
        },
    );
    let dst = n.topology().node_at(&Coords::new(&[3, 2]));
    n.enqueue(NodeId(0), dst);
    let done = run_until_delivered(&mut n, 1, 200);
    assert_eq!(done[0].hops, d);
    // Header pipelines at 1 hop/cycle; the tail lags msg_len flit cycles.
    assert_eq!(done[0].latency, (d as u64) + 16);
    n.check_invariants();
}

#[test]
fn injection_channel_serializes_same_source() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    // Two messages from node 0 heading opposite ways: no shared network
    // channel, but they share the injection channel.
    n.enqueue(NodeId(0), NodeId(2));
    n.enqueue(NodeId(0), n.topology().node_at(&Coords::new(&[0, 2])));
    n.step();
    assert_eq!(n.in_network(), 1, "second message waits for injection");
    assert_eq!(n.source_queued(), 1);
    let done = run_until_delivered(&mut n, 2, 100);
    assert_eq!(done.len(), 2);
    n.check_invariants();
}

#[test]
fn reception_channel_serializes_same_destination() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Tfar,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    // Two single-hop messages into node (1,0) from opposite neighbours.
    let dst = NodeId(1);
    n.enqueue(NodeId(0), dst);
    n.enqueue(NodeId(2), dst);
    let done = run_until_delivered(&mut n, 2, 100);
    // The second is serialized behind the first's reception ownership.
    assert!(done[1].latency > done[0].latency);
    n.check_invariants();
}

#[test]
fn vc_contention_blocks_then_resolves() {
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 4,
        },
    );
    // msg A: 0 -> 3 passes through channel 1->2; msg B: 1 -> 3 wants the
    // same channels one cycle later.
    n.enqueue(NodeId(0), NodeId(3));
    n.step();
    n.enqueue(NodeId(1), NodeId(3));
    let mut saw_blocked = false;
    for _ in 0..60 {
        n.step();
        if n.blocked_count() > 0 {
            saw_blocked = true;
        }
        n.check_invariants();
        if n.in_network() == 0 && n.source_queued() == 0 {
            break;
        }
    }
    assert!(saw_blocked, "B should have blocked behind A");
    assert_eq!(n.totals().2, 2, "both delivered");
}

/// Builds the canonical unidirectional-ring deadlock: k messages, each
/// from node i to node i+2, enqueued simultaneously so each grabs its
/// first channel and waits for the neighbour's.
fn deadlocked_uni_ring() -> Network {
    let topo = KAryNCube::torus(4, 1, false);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    for i in 0..4u32 {
        n.enqueue(NodeId(i), NodeId((i + 2) % 4));
    }
    for _ in 0..30 {
        n.step();
        n.check_invariants();
    }
    n
}

#[test]
fn uni_ring_deadlocks_and_snapshot_shows_knot() {
    let n = deadlocked_uni_ring();
    assert_eq!(n.in_network(), 4);
    assert_eq!(n.blocked_count(), 4, "all four messages wedged");

    let snap = n.wait_snapshot();
    let mut g = icn_cwg::WaitGraph::new(snap.num_vertices);
    for m in &snap.messages {
        g.add_chain(m.id, &m.chain);
        if !m.requests.is_empty() {
            g.add_requests(m.id, &m.requests);
        }
    }
    let analysis = g.analyze(1000);
    assert!(analysis.has_deadlock());
    assert_eq!(analysis.deadlocks.len(), 1);
    let d = &analysis.deadlocks[0];
    assert_eq!(d.deadlock_set.len(), 4);
    assert_eq!(d.knot.len(), 4, "the four channels form the knot");
    assert_eq!(d.cycle_density, icn_cwg::CycleCount::Exact(1));
}

#[test]
fn recovery_resolves_uni_ring_deadlock() {
    let mut n = deadlocked_uni_ring();
    let victim = n.active_ids()[0];
    assert!(n.start_recovery(victim));
    let done = run_until_delivered(&mut n, 4, 500);
    assert_eq!(done.len(), 4);
    let recovered: Vec<_> = done.iter().filter(|d| d.recovered).collect();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].id, victim);
    assert_eq!(n.totals().3, 1);
    n.check_invariants();
}

#[test]
fn recovery_rejects_inactive_and_draining_messages() {
    let mut n = deadlocked_uni_ring();
    assert!(!n.start_recovery(999_999), "unknown id");
    let victim = n.active_ids()[0];
    assert!(n.start_recovery(victim));
    assert!(!n.start_recovery(victim), "already recovering");
}

#[test]
fn failed_channel_is_routed_around_by_tfar() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Tfar,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 4,
        },
    );
    // Fail the +x channel out of node 0; a message to (1,1) can still
    // leave via +y first.
    let bad = n
        .topology()
        .channel_from(NodeId(0), 0, icn_topology::Direction::Plus)
        .unwrap();
    n.fail_channel(bad);
    let dst = n.topology().node_at(&Coords::new(&[1, 1]));
    n.enqueue(NodeId(0), dst);
    let done = run_until_delivered(&mut n, 1, 100);
    assert_eq!(done[0].hops, 2);
    assert!(!n.channel_busy(bad));
}

#[test]
fn failed_channel_strands_dor_message() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 4,
        },
    );
    let bad = n
        .topology()
        .channel_from(NodeId(0), 0, icn_topology::Direction::Plus)
        .unwrap();
    n.fail_channel(bad);
    n.enqueue(NodeId(0), NodeId(2)); // DOR must start +x: no route
    for _ in 0..50 {
        n.step();
    }
    assert_eq!(n.totals().2, 0);
    assert_eq!(n.in_network(), 0, "never injected — no usable candidate");
    assert_eq!(n.source_queued(), 1);
}

#[test]
fn snapshot_moving_message_has_no_requests() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 16,
        },
    );
    n.enqueue(NodeId(0), NodeId(4));
    for _ in 0..3 {
        n.step();
    }
    let snap = n.wait_snapshot();
    assert_eq!(snap.messages.len(), 1);
    assert!(snap.messages[0].requests.is_empty());
    assert!(!snap.messages[0].chain.is_empty());
}

#[test]
fn settled_chain_shrinks_with_deep_buffers() {
    // Virtual cut-through: a whole message fits in one buffer, so a blocked
    // message's settled chain is exactly its head VC.
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 8,
            msg_len: 8,
        },
    );
    // A long-haul message B blocks behind A which holds the reception at
    // node 3... simpler: two messages overlap on channel 2->3.
    n.enqueue(NodeId(1), NodeId(3));
    for _ in 0..2 {
        n.step();
    }
    n.enqueue(NodeId(0), NodeId(3));
    let mut blocked_seen = None;
    for _ in 0..20 {
        n.step();
        let snap = n.wait_snapshot();
        if let Some(m) = snap.messages.iter().find(|m| !m.requests.is_empty()) {
            blocked_seen = Some(m.chain.len());
            break;
        }
    }
    let chain_len = blocked_seen.expect("second message should block");
    assert_eq!(chain_len, 1, "VCT blocked message settles to its head VC");
}

#[test]
fn blocked_message_compacts_and_releases_tail_channels() {
    // The settled-chain premise: even when a header stays blocked
    // forever, the message's flits keep advancing and the tail-side VCs
    // beyond ceil(len/depth) drain and release.
    let topo = KAryNCube::torus(16, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 4,
            msg_len: 8, // needs ceil(8/4) = 2 settled VCs
        },
    );
    // Blocker: occupies channel 6->7 indefinitely by being stuck behind a
    // reception channel we keep busy... simpler: a long blocker message.
    n.enqueue(NodeId(5), NodeId(7));
    for _ in 0..2 {
        n.step();
    }
    // Victim: from 0 to 7; its header will catch up and block behind the
    // blocker somewhere around node 5-6 with a long acquired chain.
    n.enqueue(NodeId(0), NodeId(7));
    // Let everything settle: blocker starts ejecting (slow 8-flit drain is
    // too fast to observe) — instead verify via snapshot once blocked.
    let mut settled_seen = false;
    for _ in 0..60 {
        n.step();
        n.check_invariants();
        let snap = n.wait_snapshot();
        if let Some(m) = snap.messages.iter().find(|m| !m.requests.is_empty()) {
            assert!(
                m.chain.len() <= 2,
                "settled chain is at most ceil(8/4)=2 VCs, got {}",
                m.chain.len()
            );
            settled_seen = true;
        }
        // The *actual* owned chain shrinks too as the tail releases:
        // check through message info (chain_len counts owned VCs).
        if n.in_network() == 0 && n.source_queued() == 0 {
            break;
        }
    }
    assert!(settled_seen, "victim should have blocked at least once");
}

#[test]
fn dateline_dor_makes_uni_ring_deadlock_free() {
    let topo = KAryNCube::torus(4, 1, false);
    let mut n = net(
        topo,
        DatelineDor,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    for i in 0..4u32 {
        n.enqueue(NodeId(i), NodeId((i + 2) % 4));
    }
    let done = run_until_delivered(&mut n, 4, 500);
    assert_eq!(done.len(), 4);
    assert!(done.iter().all(|d| !d.recovered));
}

#[test]
fn deterministic_replay() {
    let mk = || {
        let topo = KAryNCube::torus(4, 2, true);
        let mut n = net(
            topo,
            Tfar,
            SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 2,
                msg_len: 4,
            },
        );
        let mut log = Vec::new();
        for c in 0..400u32 {
            if c % 3 == 0 {
                n.enqueue(NodeId(c % 16), NodeId((c * 7 + 5) % 16));
            }
            let StepEvents { delivered, .. } = n.step();
            for d in delivered {
                log.push((d.id, d.latency, d.hops));
            }
        }
        log
    };
    assert_eq!(mk(), mk());
}

#[test]
fn invariants_hold_under_sustained_random_traffic() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    for (vcs, depth) in [(1usize, 2usize), (2, 2), (3, 4), (2, 16)] {
        let topo = KAryNCube::torus(4, 2, true);
        let mut n = net(
            topo,
            Tfar,
            SimConfig {
                vcs_per_channel: vcs,
                buffer_depth: depth,
                msg_len: 8,
            },
        );
        for c in 0..1500u64 {
            if rng.gen_bool(0.2) {
                let s = rng.gen_range(0..16);
                let mut d = rng.gen_range(0..16);
                if d == s {
                    d = (d + 1) % 16;
                }
                n.enqueue(NodeId(s), NodeId(d));
            }
            n.step();
            if c % 50 == 0 {
                n.check_invariants();
            }
        }
        n.check_invariants();
        let (generated, injected, delivered, _) = n.totals();
        assert!(injected <= generated);
        assert!(delivered > 0, "vcs={vcs} depth={depth} delivered nothing");
    }
}

#[test]
fn link_utilization_reported() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enqueue(NodeId(0), NodeId(3));
    let mut flits = 0;
    for _ in 0..60 {
        flits += n.step().link_flits;
    }
    // 32 flits across 3 hops = 96 link traversals.
    assert_eq!(flits, 96);
}

#[test]
fn message_info_reflects_state() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enqueue(NodeId(0), NodeId(2));
    n.step();
    let id = n.active_ids()[0];
    let info = n.message_info(id).unwrap();
    assert_eq!(info.src, NodeId(0));
    assert_eq!(info.dst, NodeId(2));
    assert_eq!(info.phase, MsgPhase::Routing);
    assert_eq!(info.len, 32);
    assert!(info.uninjected < 32, "injection started");
    assert!(n.message_info(12345).is_none());
}

#[test]
fn trace_records_message_lifecycle() {
    use icn_sim::TraceEvent;
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 4,
        },
    );
    n.enable_trace(1_000);
    n.enqueue(NodeId(0), NodeId(3));
    let _ = run_until_delivered(&mut n, 1, 100);
    let (events, dropped) = n.take_trace();
    assert_eq!(dropped, 0);
    let kinds: Vec<&'static str> = events
        .iter()
        .map(|e| match e {
            TraceEvent::Injected { .. } => "inj",
            TraceEvent::Acquired { .. } => "acq",
            TraceEvent::Blocked { .. } => "blk",
            TraceEvent::EjectStart { .. } => "ej",
            TraceEvent::RecoveryStart { .. } => "rec",
            TraceEvent::Delivered { .. } => "del",
            TraceEvent::FaultLoss { .. } => "flost",
        })
        .collect();
    // 3 hops: injection + first acquire, two more acquires, ejection,
    // delivery; no blocking in an empty network.
    assert_eq!(kinds, vec!["inj", "acq", "acq", "acq", "ej", "del"]);
    // Cycles are non-decreasing and all events belong to message 0.
    assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    assert!(events.iter().all(|e| e.id() == 0));
}

#[test]
fn trace_records_blocking_and_recovery() {
    use icn_sim::TraceEvent;
    let n = deadlocked_uni_ring();
    // Tracing enabled after the deadlock formed: re-create with trace.
    let topo = KAryNCube::torus(4, 1, false);
    let mut n2 = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    n2.enable_trace(1_000);
    for i in 0..4u32 {
        n2.enqueue(NodeId(i), NodeId((i + 2) % 4));
    }
    for _ in 0..30 {
        n2.step();
    }
    let victim = n2.active_ids()[0];
    n2.start_recovery(victim);
    let _ = run_until_delivered(&mut n2, 4, 500);
    let (events, _) = n2.take_trace();
    let blocked = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Blocked { .. }))
        .count();
    assert!(blocked >= 4, "all four messages blocked at least once");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::RecoveryStart { id, .. } if *id == victim)));
    // keep the helper network alive for its own assertions
    n.check_invariants();
}

#[test]
fn blocked_trace_records_failed_candidates() {
    use icn_sim::TraceEvent;
    let topo = KAryNCube::torus(4, 1, false);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    n.enable_trace(1_000);
    for i in 0..4u32 {
        n.enqueue(NodeId(i), NodeId((i + 2) % 4));
    }
    for _ in 0..30 {
        n.step();
    }
    assert_eq!(n.blocked_count(), 4);
    let (events, _) = n.take_trace();
    let blocks: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Blocked { candidates, .. } => Some(candidates),
            _ => None,
        })
        .collect();
    assert!(blocks.len() >= 4);
    for cands in blocks {
        // A routing block names the channels the header could not get —
        // DOR on a ring offers exactly one — and each is genuinely busy.
        assert_eq!(cands.len(), 1);
        assert!(n.channel_busy(cands[0]));
    }
}

#[test]
fn reception_wait_blocks_with_no_link_candidates() {
    use icn_sim::TraceEvent;
    // Two messages to the same destination: the loser of the reception
    // channel blocks at the destination with an empty candidate set.
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 16,
        },
    );
    n.enable_trace(1_000);
    n.enqueue(NodeId(1), NodeId(2));
    n.enqueue(NodeId(3), NodeId(2));
    for _ in 0..40 {
        n.step();
    }
    let (events, _) = n.take_trace();
    let reception_waits = events
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::Blocked { at, candidates, .. }
                if *at == NodeId(2) && candidates.is_empty())
        })
        .count();
    assert!(
        reception_waits >= 1,
        "one message must wait on the busy reception channel"
    );
}

#[test]
fn trace_capacity_bounds_memory() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enable_trace(2);
    n.enqueue(NodeId(0), NodeId(4));
    let _ = run_until_delivered(&mut n, 1, 100);
    let (events, dropped) = n.take_trace();
    assert_eq!(events.len(), 2);
    assert!(dropped > 0);
}

#[test]
fn two_vcs_multiplex_one_physical_link() {
    // Two messages share the same physical channel on different VCs; the
    // link carries one flit per cycle, so together they take about twice
    // as long as one alone — but both make progress (no starvation).
    let topo = KAryNCube::torus(8, 1, true);
    let mk = |two: bool| {
        let mut n = net(
            KAryNCube::torus(8, 1, true),
            Dor,
            SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 4,
                msg_len: 32,
            },
        );
        n.enqueue(NodeId(0), NodeId(3));
        if two {
            n.step();
            n.enqueue(NodeId(1), NodeId(4)); // overlaps on links 1->2, 2->3
        }
        let want = if two { 2 } else { 1 };
        let done = run_until_delivered(&mut n, want, 400);
        done.iter().map(|d| d.latency).max().unwrap()
    };
    let solo = mk(false);
    let shared = mk(true);
    assert!(
        shared > solo + 16,
        "sharing must slow both (solo={solo}, shared={shared})"
    );
    assert!(shared < solo * 3, "but not starve either");
    let _ = topo;
}

#[test]
fn buffer_backpressure_limits_occupancy() {
    // A blocked message compacts into its buffers but never exceeds depth
    // (check_invariants asserts occupancy <= depth on every chain VC).
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 3,
            msg_len: 24,
        },
    );
    n.enqueue(NodeId(0), NodeId(4));
    for _ in 0..2 {
        n.step();
    }
    n.enqueue(NodeId(1), NodeId(5)); // blocks behind the first
    for _ in 0..50 {
        n.step();
        n.check_invariants();
    }
}

#[test]
fn dateline_crossing_recorded_per_dimension() {
    // A message that wraps in dimension 1 only must keep using VC class 0
    // in dimension 0 afterwards (DatelineDor reads the per-dim bits).
    let topo = KAryNCube::torus(4, 2, true);
    let mut n = net(
        topo,
        DatelineDor,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 2,
        },
    );
    // From (0,3) to (2,1): DOR resolves dim 0 first (0->1->2, no wrap),
    // then dim 1 (3->0->1, wraps through the dateline).
    let src = n.topology().node_at(&Coords::new(&[0, 3]));
    let dst = n.topology().node_at(&Coords::new(&[2, 1]));
    n.enqueue(src, dst);
    let done = run_until_delivered(&mut n, 1, 100);
    assert_eq!(done[0].hops, 4);
    n.check_invariants();
}

#[test]
fn extra_endpoint_channels_parallelize_injection_and_reception() {
    let mk = |inj: usize, rec: usize| {
        let topo = KAryNCube::torus(8, 2, true);
        let mut n = Network::new(
            topo,
            Box::new(Tfar),
            SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 2,
                msg_len: 16,
            },
        )
        .with_endpoint_channels(inj, rec);
        // Two messages from node 0 in different directions, two into
        // node 2 from opposite sides: with one channel each they
        // serialize; with two they overlap.
        n.enqueue(NodeId(0), NodeId(4));
        n.enqueue(NodeId(0), n.topology().node_at(&Coords::new(&[0, 4])));
        n.enqueue(NodeId(1), NodeId(2));
        n.enqueue(NodeId(3), NodeId(2));
        let done = run_until_delivered(&mut n, 4, 400);
        n.check_invariants();
        done.iter().map(|d| d.latency).max().unwrap()
    };
    let serial = mk(1, 1);
    let parallel = mk(2, 2);
    assert!(
        parallel + 8 < serial,
        "extra endpoint channels must overlap transfers (serial={serial}, parallel={parallel})"
    );
}

#[test]
fn reception_slots_tracked_in_snapshot() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = Network::new(
        topo,
        Box::new(Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 32,
        },
    )
    .with_endpoint_channels(1, 2);
    n.enqueue(NodeId(1), NodeId(2));
    n.enqueue(NodeId(3), NodeId(2));
    for _ in 0..6 {
        n.step();
    }
    let snap = n.wait_snapshot();
    // Both messages eject concurrently through distinct reception slots.
    let reception_vertices: Vec<u32> = snap
        .messages
        .iter()
        .filter_map(|m| m.chain.last().copied())
        .filter(|&v| v as usize >= n.topology().num_channels())
        .collect();
    assert_eq!(reception_vertices.len(), 2);
    assert_ne!(reception_vertices[0], reception_vertices[1]);
}

#[test]
fn reception_frees_for_next_message() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enqueue(NodeId(0), NodeId(2));
    n.enqueue(NodeId(4), NodeId(2));
    let done = run_until_delivered(&mut n, 2, 300);
    assert_eq!(done.len(), 2);
    // Afterwards a third message to the same node also delivers.
    n.enqueue(NodeId(5), NodeId(2));
    let done = run_until_delivered(&mut n, 1, 200);
    assert_eq!(done.len(), 1);
}

#[test]
fn hybrid_lengths_conserve_flits() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        Tfar,
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 32,
        },
    );
    n.enqueue_with_len(NodeId(0), NodeId(3), 4);
    n.enqueue_with_len(NodeId(9), NodeId(12), 64);
    let done = run_until_delivered(&mut n, 2, 300);
    let mut lens: Vec<u32> = done.iter().map(|d| d.len).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![4, 64]);
    // The short message wins by a wide margin despite equal distance.
    let short = done.iter().find(|d| d.len == 4).unwrap();
    let long = done.iter().find(|d| d.len == 64).unwrap();
    assert!(short.latency + 30 < long.latency);
    n.check_invariants();
}

#[test]
fn misrouting_takes_detours_around_contention() {
    use icn_routing::MisroutingTfar;
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        MisroutingTfar { max_misroutes: 4 },
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 16,
        },
    );
    // A long message hogs channel 2->3; a second message 2 -> 3 can
    // misroute the other way round the ring instead of waiting.
    n.enqueue(NodeId(2), NodeId(5));
    for _ in 0..3 {
        n.step();
    }
    n.enqueue(NodeId(2), NodeId(3));
    let done = run_until_delivered(&mut n, 2, 400);
    let detoured = done.iter().find(|d| d.hops > 1 && d.dst == NodeId(3));
    assert!(detoured.is_some(), "second message should detour: {done:?}");
    n.check_invariants();
}

#[test]
fn misroute_budget_tracked_per_message() {
    use icn_routing::MisroutingTfar;
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(
        topo,
        MisroutingTfar { max_misroutes: 2 },
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 4,
        },
    );
    // Unloaded network: the profitable candidates are always free, so a
    // minimal path is taken even though misrouting is allowed.
    n.enqueue(NodeId(0), NodeId(4));
    let done = run_until_delivered(&mut n, 1, 100);
    assert_eq!(done[0].hops, 4, "no gratuitous misrouting when unloaded");
}

#[test]
fn hypercube_traffic_flows() {
    let topo = KAryNCube::hypercube(5);
    let mut n = net(
        topo,
        Tfar,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 8,
        },
    );
    // e-cube-style worst case: send to bit complements.
    for s in 0..32u32 {
        n.enqueue(NodeId(s), NodeId(!s & 31));
    }
    let done = run_until_delivered(&mut n, 32, 2_000);
    assert!(done.iter().all(|d| d.hops == 5), "complement = 5 hops");
    n.check_invariants();
}

#[test]
#[should_panic(expected = "must leave their source")]
fn self_addressed_message_rejected() {
    let topo = KAryNCube::torus(4, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enqueue(NodeId(3), NodeId(3));
}

#[test]
#[should_panic(expected = "requires at least")]
fn routing_min_vcs_enforced() {
    let topo = KAryNCube::torus(4, 2, true);
    let _ = net(
        topo,
        DatelineDor,
        SimConfig {
            vcs_per_channel: 1,
            ..Default::default()
        },
    );
}

#[test]
#[should_panic(expected = "cannot fail a channel in use")]
fn failing_busy_channel_rejected() {
    let topo = KAryNCube::torus(8, 2, true);
    let mut n = net(topo, Dor, SimConfig::default());
    n.enqueue(NodeId(0), NodeId(2));
    n.step();
    let ch = n
        .topology()
        .channel_from(NodeId(0), 0, icn_topology::Direction::Plus)
        .unwrap();
    n.fail_channel(ch);
}

/// A pipelined multi-hop flow makes middle VCs both receive a flit and
/// feed their downstream neighbour within one cycle — the case where the
/// dirty-mark generation stamps must coalesce the two occupancy changes
/// into a single mark. `check_invariants` asserts the discipline (no
/// duplicate marks, no missed patches) after every cycle.
#[test]
fn occ_dirty_marks_stay_unique_under_pipelined_flow() {
    let topo = KAryNCube::torus(8, 1, true);
    let mut n = net(
        topo,
        Dor,
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 16,
        },
    );
    // Two long messages chasing each other around the ring keep several
    // intermediate VCs simultaneously receiving and draining.
    n.enqueue(NodeId(0), NodeId(4));
    n.enqueue(NodeId(1), NodeId(5));
    let mut delivered = 0;
    for _ in 0..200 {
        delivered += n.step().delivered.len();
        n.check_invariants();
        if delivered == 2 {
            break;
        }
    }
    assert_eq!(delivered, 2, "both messages must drain");
}
