//! Differential test: the activity-driven stepper ([`Network::step`]) must
//! be byte-identical to the dense reference stepper
//! ([`Network::step_reference`]) — same [`StepEvents`] every cycle, same
//! traces, same counters — across randomized topologies, routing
//! relations, loads, and recovery interventions. This is the ordering
//! guarantee the wake lists and ready lists exist to preserve: skipping
//! work is only legal because the skipped attempts would have changed
//! nothing.

use icn_routing::{DatelineDor, Dor, DuatoFar, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use proptest::prelude::*;

/// SplitMix64: one seed drives every sampled parameter and arrival.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }
}

fn routing_for(pick: u64) -> Box<dyn RoutingAlgorithm> {
    match pick % 4 {
        0 => Box::new(Dor),
        1 => Box::new(Tfar),
        2 => Box::new(DatelineDor),
        _ => Box::new(DuatoFar),
    }
}

/// Builds one network from sampled parameters; called twice per case so
/// both steppers start from identical instances.
fn build(rng_seed: u64) -> Network {
    let mut r = Rng(rng_seed);
    let k = 2 + r.below(3) as u16; // radix 2..4
    let dims = 1 + r.below(2) as usize; // 1-2 dimensions
    let bidir = r.chance(500);
    let routing = routing_for(r.below(4));
    let vcs = routing.min_vcs() + r.below(2) as usize;
    let cfg = SimConfig {
        vcs_per_channel: vcs,
        buffer_depth: 1 + r.below(3) as usize,
        msg_len: 1 + r.below(5) as usize,
    };
    Network::new(KAryNCube::torus(k, dims, bidir), routing, cfg)
}

/// Drives `a` (activity) and `b` (dense reference) through an identical
/// schedule of arrivals and recovery pulls, comparing everything.
fn differential_case(seed: u64, cycles: u64) {
    let mut a = build(seed);
    let mut b = build(seed);
    a.enable_trace(1 << 14);
    b.enable_trace(1 << 14);
    let nodes = a.topology().num_nodes() as u64;
    let mut arrivals = Rng(seed ^ 0xabcd_ef01);
    let permille = 50 + arrivals.below(500); // offered load 5%..55%

    for cycle in 0..cycles {
        for n in 0..nodes {
            if arrivals.chance(permille) {
                let mut dst = arrivals.below(nodes);
                if dst == n {
                    dst = (dst + 1) % nodes;
                }
                a.enqueue(NodeId(n as u32), NodeId(dst as u32));
                b.enqueue(NodeId(n as u32), NodeId(dst as u32));
            }
        }
        // Occasionally pull the oldest blocked message through recovery —
        // in both instances, from the *same* observation.
        if cycle % 64 == 63 {
            let victim = a
                .active_ids()
                .into_iter()
                .find(|&id| a.message_info(id).is_some_and(|m| m.blocked));
            if let Some(id) = victim {
                assert_eq!(a.message_info(id), b.message_info(id));
                assert_eq!(a.start_recovery(id), b.start_recovery(id));
            }
        }
        let ea = a.step();
        let eb = b.step_reference();
        assert_eq!(
            ea, eb,
            "step events diverged at cycle {cycle} (seed {seed})"
        );
        if cycle % 32 == 0 || cycle + 1 == cycles {
            a.check_invariants();
            b.check_invariants();
            assert_eq!(a.blocked_count(), b.blocked_count(), "cycle {cycle}");
            assert_eq!(a.in_network(), b.in_network(), "cycle {cycle}");
            assert_eq!(a.active_ids(), b.active_ids(), "cycle {cycle}");
        }
    }
    assert_eq!(
        a.totals(),
        b.totals(),
        "lifetime counters diverged (seed {seed})"
    );
    assert_eq!(a.source_queued(), b.source_queued());
    let (trace_a, dropped_a) = a.take_trace();
    let (trace_b, dropped_b) = b.take_trace();
    assert_eq!(dropped_a, dropped_b);
    assert_eq!(trace_a, trace_b, "traces diverged (seed {seed})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(72))]

    #[test]
    fn activity_stepper_matches_dense_reference(seed in any::<u64>()) {
        differential_case(seed, 420);
    }
}

/// Saturating a 1-VC unidirectional DOR torus wedges it into true
/// deadlocks; both steppers must agree cycle-for-cycle while mostly
/// blocked, and again while recovery pulls drain the knots. This is the
/// regime the activity engine is built for — and the easiest one to get
/// a missed wake wrong in.
#[test]
fn differential_through_deadlock_and_recovery() {
    let build = || {
        Network::new(
            KAryNCube::torus(4, 2, false),
            Box::new(Dor),
            SimConfig {
                vcs_per_channel: 1,
                buffer_depth: 2,
                msg_len: 4,
            },
        )
    };
    let mut a = build();
    let mut b = build();
    a.enable_trace(1 << 15);
    b.enable_trace(1 << 15);
    let nodes = a.topology().num_nodes() as u64;
    let mut arrivals = Rng(0xdead_beef);
    let mut recovered = 0u64;
    for cycle in 0..1500u64 {
        for n in 0..nodes {
            // Saturating load: every node offers traffic every cycle.
            let mut dst = arrivals.below(nodes);
            if dst == n {
                dst = (dst + 1) % nodes;
            }
            a.enqueue(NodeId(n as u32), NodeId(dst as u32));
            b.enqueue(NodeId(n as u32), NodeId(dst as u32));
        }
        // Once wedged, pull the oldest blocked message — keeps traffic
        // flowing through repeated deadlock / recovery rounds.
        if cycle % 96 == 95 {
            let victim = a
                .active_ids()
                .into_iter()
                .find(|&id| a.message_info(id).is_some_and(|m| m.blocked));
            if let Some(id) = victim {
                assert_eq!(a.start_recovery(id), b.start_recovery(id));
                recovered += 1;
            }
        }
        let ea = a.step();
        let eb = b.step_reference();
        assert_eq!(ea, eb, "step events diverged at cycle {cycle}");
        if cycle % 50 == 0 {
            a.check_invariants();
            b.check_invariants();
            assert_eq!(a.blocked_count(), b.blocked_count());
        }
    }
    assert!(recovered > 0, "saturated uni-DOR torus should have wedged");
    assert_eq!(a.totals(), b.totals());
    let (trace_a, _) = a.take_trace();
    let (trace_b, _) = b.take_trace();
    assert_eq!(trace_a, trace_b);
}
