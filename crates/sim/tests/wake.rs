//! Wake-list invariant tests: no waiter may strand.
//!
//! The activity engine only re-examines a parked message (or injector)
//! when a watched resource changes hands. The dangerous window is a
//! *same-cycle* park/release collision: a waiter parks on a VC during
//! allocation, and the VC frees during that same cycle's release phase.
//! If the wake were recorded before the park (or not at all), the waiter
//! would sleep forever on a free VC — the classic lost-wakeup race. These
//! tests build that exact schedule and pin the cycle every acquisition
//! and delivery must land on.

use icn_routing::{DatelineDor, Dor};
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};

/// Unidirectional 4-ring (n0→n1→n2→n3→n0), one VC per channel.
fn ring() -> Network {
    Network::new(
        KAryNCube::torus(4, 1, false),
        Box::new(Dor),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 1,
        },
    )
}

/// The crafted collision, cycle by cycle:
///
/// * cycle 0 — A (n1→n2, len 2) injects and acquires c1, the only VC
///   toward n2.
/// * cycle 1 — A's header ejects at n2; B (n0→n2, len 1, enqueued after
///   cycle 0) injects on c0.
/// * cycle 2 — B's next hop needs c1: owned by A, so B *parks* on it.
///   C (n1→n2, enqueued after cycle 1) finds its injection candidate c1
///   owned too, so the n1 *injector parks* on the same VC. During this
///   same cycle's release phase A drains its last flit and frees c1 —
///   both waiters must wake now.
/// * cycle 3 — both re-attempt. Injections precede next-hops (dense
///   order), so C acquires c1 and B re-parks on it.
/// * cycle 4 — C delivers and frees c1 again; B wakes a second time.
/// * cycle 5 — B finally acquires c1; cycle 6 — B delivers.
///
/// A missed wake at any of these points stalls the schedule, so the
/// delivery cycles pin the wake timing exactly. The dense reference runs
/// the identical schedule as the behavioral oracle.
#[test]
fn same_cycle_park_and_release_wakes_both_waiter_kinds() {
    let mut a = ring();
    let mut b = ring();
    let enqueue = |net: &mut Network, src: u32, dst: u32, len: usize| {
        net.enqueue_with_len(NodeId(src), NodeId(dst), len);
    };

    // Message A: holds c1 through cycle 2.
    enqueue(&mut a, 1, 2, 2);
    enqueue(&mut b, 1, 2, 2);

    let mut delivered: Vec<(u64, u64)> = Vec::new(); // (id, cycle)
    for cycle in 0..10u64 {
        if cycle == 1 {
            // B: one hop behind A, parks on c1 at cycle 2.
            enqueue(&mut a, 0, 2, 1);
            enqueue(&mut b, 0, 2, 1);
        }
        if cycle == 2 {
            // C: the n1 injector parks on c1 at cycle 2 too.
            enqueue(&mut a, 1, 2, 1);
            enqueue(&mut b, 1, 2, 1);
        }
        let ea = a.step();
        let eb = b.step_reference();
        assert_eq!(ea, eb, "engines diverged at cycle {cycle}");
        a.check_invariants();
        b.check_invariants();
        for d in &ea.delivered {
            delivered.push((d.id, cycle));
        }
    }

    // B (id 1) blocked across the collision window, woken twice.
    let info = |net: &Network, id: u64| net.message_info(id);
    assert_eq!(info(&a, 1), info(&b, 1));
    assert_eq!(
        delivered,
        vec![(0, 2), (2, 4), (1, 6)],
        "wake timing shifted: A frees c1 at 2, C at 4, B delivers at 6"
    );
    assert_eq!(a.in_network(), 0, "a waiter stranded");
    assert_eq!(a.source_queued(), 0);
}

/// Churn version of the same race: a deadlock-free config saturated long
/// enough that parks and releases collide constantly, then starved. Every
/// message must drain — any lost wakeup leaves `in_network() > 0` forever
/// (the per-cycle invariant check also cross-audits every wake list
/// against a full recomputation of each parked waiter's candidates).
#[test]
fn saturated_then_starved_ring_drains_completely() {
    let build = || {
        Network::new(
            KAryNCube::torus(4, 1, false),
            Box::new(DatelineDor),
            SimConfig {
                vcs_per_channel: 2,
                buffer_depth: 1,
                msg_len: 3,
            },
        )
    };
    let mut a = build();
    let mut b = build();
    let nodes = 4u32;
    for cycle in 0..1200u64 {
        if cycle < 30 {
            for n in 0..nodes {
                // All-to-farthest keeps every channel contended.
                let dst = (n + 2) % nodes;
                a.enqueue(NodeId(n), NodeId(dst));
                b.enqueue(NodeId(n), NodeId(dst));
            }
        }
        let ea = a.step();
        let eb = b.step_reference();
        assert_eq!(ea, eb, "engines diverged at cycle {cycle}");
        a.check_invariants();
        b.check_invariants();
        if cycle > 30 && a.in_network() == 0 && a.source_queued() == 0 {
            let (_, _, da, _) = a.totals();
            assert_eq!(da, 120, "every offered message must deliver");
            return;
        }
    }
    panic!(
        "network failed to drain: {} in flight, {} queued — stranded waiter",
        a.in_network(),
        a.source_queued()
    );
}
