//! Independent validation layer for the deadlock reproduction.
//!
//! The production detector (`icn-cwg`) is heavily optimized — arena
//! snapshots, in-place rebuilds, CSR + Tarjan knot finding, fingerprint
//! skips — which is exactly why it needs an adversarial correctness net
//! that shares none of that machinery. This crate provides three
//! independent lines of defense:
//!
//! * [`oracle`] — a deliberately naive knot finder (dense adjacency
//!   matrix, fixed-point escape reduction, Warshall closure) plus a
//!   brute-force minimal-closed-set enumerator: three implementations of
//!   the paper's §2 definitions that must always agree.
//! * [`diff`] — the differential harness comparing all of them on one
//!   snapshot, with a greedy minimizer for any divergence.
//! * [`gen`] — a seeded random CWG generator (own SplitMix64, no shared
//!   randomness) biased to actually produce knots.
//! * [`explore`] — exhaustive enumeration of every injection schedule on
//!   tiny networks, auditing every cycle of every execution.
//!
//! The run-coupled pieces (torture harness over live simulations,
//! forensics-incident checking, the `repro validate` CLI) live in
//! `flexsim::validate`, which builds on this crate.

pub mod diff;
pub mod explore;
pub mod gen;
pub mod oracle;

/// Converts a live snapshot arena into oracle messages.
pub fn arena_msgs(arena: &icn_sim::SnapshotArena) -> Vec<oracle::OracleMsg> {
    arena
        .messages()
        .map(|m| oracle::OracleMsg {
            id: m.id,
            chain: m.chain.to_vec(),
            requests: m.requests.to_vec(),
        })
        .collect()
}

pub use diff::{check_messages, minimize_divergence, Divergence, BRUTE_FORCE_CAP};
pub use explore::{explore, ExploreConfig, ExploreReport, ExploreRouting};
pub use gen::{random_snapshot, GenParams, SplitMix64};
pub use oracle::{
    minimal_deadlock_sets, oracle_analyze, OracleAnalysis, OracleDependent, OracleKnot, OracleMsg,
};
