//! Seeded random CWG snapshot generator.
//!
//! Produces structurally valid snapshots (disjoint non-empty chains,
//! in-range requests) with request targeting biased toward *owned*
//! vertices, so cycles and knots actually occur instead of almost every
//! draw being trivially deadlock-free. Uses its own SplitMix64 so the
//! validation layer shares no randomness machinery with the crates under
//! test.

use crate::oracle::OracleMsg;

/// Minimal deterministic RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Shape parameters for [`random_snapshot`].
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Total vertex count.
    pub num_vertices: usize,
    /// Upper bound on message count (fewer if vertices run out).
    pub max_messages: usize,
    /// Chain lengths are drawn from `1..=max_chain`.
    pub max_chain: usize,
    /// Blocked messages get `1..=max_requests` requests.
    pub max_requests: usize,
    /// Probability that a message is blocked at all.
    pub blocked_prob: f64,
    /// Probability that a request targets an *owned* vertex (cycles form
    /// only through owned vertices; the remainder hit arbitrary vertices,
    /// often free ones, which act as escapes).
    pub owned_bias: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            num_vertices: 48,
            max_messages: 12,
            max_chain: 4,
            max_requests: 3,
            blocked_prob: 0.85,
            owned_bias: 0.8,
        }
    }
}

/// Generates one seeded random snapshot: `(num_vertices, messages)`.
pub fn random_snapshot(seed: u64, p: &GenParams) -> (usize, Vec<OracleMsg>) {
    let mut rng = SplitMix64::new(seed);
    let n = p.num_vertices;

    // Fisher-Yates over all vertices; chains are carved off the front so
    // they are disjoint by construction.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(i + 1));
    }

    let mut msgs: Vec<OracleMsg> = Vec::new();
    let mut cursor = 0usize;
    for id in 0..p.max_messages as u64 {
        let len = 1 + rng.gen_range(p.max_chain);
        if cursor + len > n {
            break;
        }
        let chain = perm[cursor..cursor + len].to_vec();
        cursor += len;
        msgs.push(OracleMsg {
            id: id + 1,
            chain,
            requests: Vec::new(),
        });
    }

    // Owned vertices, for biased request targeting.
    let owned: Vec<u32> = msgs.iter().flat_map(|m| m.chain.iter().copied()).collect();

    for msg in &mut msgs {
        if !rng.gen_bool(p.blocked_prob) {
            continue;
        }
        let want = 1 + rng.gen_range(p.max_requests);
        let mut requests: Vec<u32> = Vec::new();
        let mut attempts = 0;
        while requests.len() < want && attempts < 64 {
            attempts += 1;
            let v = if rng.gen_bool(p.owned_bias) {
                owned[rng.gen_range(owned.len())]
            } else {
                rng.gen_range(n) as u32
            };
            if msg.chain.contains(&v) || requests.contains(&v) {
                continue;
            }
            requests.push(v);
        }
        requests.sort_unstable();
        msg.requests = requests;
    }

    (n, msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = GenParams::default();
        assert_eq!(random_snapshot(42, &p), random_snapshot(42, &p));
        assert_ne!(random_snapshot(42, &p).1, random_snapshot(43, &p).1);
    }

    #[test]
    fn structurally_valid() {
        let p = GenParams::default();
        for seed in 0..200 {
            let (n, msgs) = random_snapshot(seed, &p);
            let mut seen = vec![false; n];
            for m in &msgs {
                assert!(!m.chain.is_empty());
                for &v in &m.chain {
                    assert!((v as usize) < n);
                    assert!(!seen[v as usize], "chains must be disjoint");
                    seen[v as usize] = true;
                }
                for &r in &m.requests {
                    assert!((r as usize) < n);
                    assert!(!m.chain.contains(&r));
                }
            }
        }
    }

    #[test]
    fn some_seeds_produce_deadlocks_and_some_do_not() {
        let p = GenParams::default();
        let mut with = 0;
        let mut without = 0;
        for seed in 0..200 {
            let (n, msgs) = random_snapshot(seed, &p);
            if crate::oracle::oracle_analyze(n, &msgs).has_deadlock() {
                with += 1;
            } else {
                without += 1;
            }
        }
        assert!(with > 10, "generator too tame: {with} deadlocks in 200");
        assert!(without > 10, "generator always deadlocks: {without} clean");
    }
}
