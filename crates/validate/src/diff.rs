//! Differential comparison: oracle vs. production detector.
//!
//! [`check_messages`] runs one CWG snapshot through three independent
//! implementations — the production `icn_cwg::WaitGraph` analysis, the
//! naive [`oracle`](crate::oracle), and (on small snapshots) the
//! brute-force closed-set enumerator — and reports every disagreement.
//! [`minimize_divergence`] greedily shrinks a diverging snapshot to a
//! locally minimal message set, so a failure lands as a handful of chains
//! a human can re-derive on paper.

use crate::oracle::{minimal_deadlock_sets, oracle_analyze, OracleDependent, OracleMsg};
use icn_cwg::{Analysis, DependentKind, DetectorScratch, WaitGraph};

/// Cap for the brute-force enumerator: snapshots with more blocked
/// messages skip that third check (still differential on the other two).
pub const BRUTE_FORCE_CAP: usize = 16;

/// One disagreement between implementations on one snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Where the disagreement was observed (which pair, which field).
    pub context: String,
    /// Both sides' values, rendered.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.detail)
    }
}

/// Builds the production graph for a snapshot.
fn production_graph(num_vertices: usize, msgs: &[OracleMsg]) -> WaitGraph {
    let mut g = WaitGraph::new(num_vertices);
    for m in msgs {
        g.add_chain(m.id, &m.chain);
        if !m.requests.is_empty() {
            g.add_requests(m.id, &m.requests);
        }
    }
    g
}

fn sorted_sets<T: Ord + Clone>(sets: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = sets
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.sort();
            s
        })
        .collect();
    out.sort();
    out
}

fn push_if_ne<T: PartialEq + std::fmt::Debug>(
    out: &mut Vec<Divergence>,
    context: &str,
    production: &T,
    oracle: &T,
) {
    if production != oracle {
        out.push(Divergence {
            context: context.to_string(),
            detail: format!("production={production:?} oracle={oracle:?}"),
        });
    }
}

/// Differentially checks one snapshot; returns every divergence found
/// (empty means all implementations agree on everything compared).
pub fn check_messages(num_vertices: usize, msgs: &[OracleMsg]) -> Vec<Divergence> {
    let g = production_graph(num_vertices, msgs);
    let production: Analysis = g.analyze(1_000);
    let oracle = oracle_analyze(num_vertices, msgs);
    let mut out = Vec::new();

    push_if_ne(
        &mut out,
        "has_deadlock",
        &production.has_deadlock(),
        &oracle.has_deadlock(),
    );
    push_if_ne(
        &mut out,
        "num_blocked",
        &production.num_blocked,
        &oracle.num_blocked,
    );

    let prod_knots: Vec<Vec<u32>> = production
        .deadlocks
        .iter()
        .map(|d| d.knot.clone())
        .collect();
    let orc_knots: Vec<Vec<u32>> = oracle.knots.iter().map(|k| k.knot.clone()).collect();
    push_if_ne(
        &mut out,
        "knot vertex sets",
        &sorted_sets(&prod_knots),
        &sorted_sets(&orc_knots),
    );

    let prod_dsets: Vec<Vec<u64>> = production
        .deadlocks
        .iter()
        .map(|d| d.deadlock_set.clone())
        .collect();
    push_if_ne(
        &mut out,
        "deadlock sets",
        &sorted_sets(&prod_dsets),
        &oracle.deadlock_sets(),
    );

    let prod_rsets: Vec<Vec<u32>> = production
        .deadlocks
        .iter()
        .map(|d| d.resource_set.clone())
        .collect();
    let orc_rsets: Vec<Vec<u32>> = oracle
        .knots
        .iter()
        .map(|k| k.resource_set.clone())
        .collect();
    push_if_ne(
        &mut out,
        "resource sets",
        &sorted_sets(&prod_rsets),
        &sorted_sets(&orc_rsets),
    );

    let prod_dep: Vec<(u64, OracleDependent)> = production
        .dependent
        .iter()
        .map(|&(id, k)| {
            (
                id,
                match k {
                    DependentKind::Committed => OracleDependent::Committed,
                    DependentKind::Transient => OracleDependent::Transient,
                },
            )
        })
        .collect();
    push_if_ne(&mut out, "dependent census", &prod_dep, &oracle.dependent);

    // The slim per-epoch path must agree with the full analysis.
    let mut scratch = DetectorScratch::new();
    let slim = g.knot_deadlock_sets(&mut scratch);
    push_if_ne(
        &mut out,
        "knot_deadlock_sets (slim path)",
        &sorted_sets(&slim),
        &oracle.deadlock_sets(),
    );

    // Third implementation: minimal closed sets, when small enough.
    if let Some(brute) = minimal_deadlock_sets(num_vertices, msgs, BRUTE_FORCE_CAP) {
        push_if_ne(
            &mut out,
            "brute-force minimal closed sets",
            &brute,
            &oracle.deadlock_sets(),
        );
    }

    out
}

/// Greedily drops messages from a diverging snapshot while the divergence
/// persists; returns a locally minimal reproducer (no single message can
/// be removed without the implementations starting to agree). Returns
/// `msgs` unchanged if they do not diverge.
pub fn minimize_divergence(num_vertices: usize, msgs: &[OracleMsg]) -> Vec<OracleMsg> {
    let mut cur = msgs.to_vec();
    if check_messages(num_vertices, &cur).is_empty() {
        return cur;
    }
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let mut trial = cur.clone();
            trial.remove(i);
            if !check_messages(num_vertices, &trial).is_empty() {
                cur = trial;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, chain: &[u32], requests: &[u32]) -> OracleMsg {
        OracleMsg {
            id,
            chain: chain.to_vec(),
            requests: requests.to_vec(),
        }
    }

    #[test]
    fn figure1_agrees() {
        let msgs = vec![
            msg(1, &[1, 2], &[3]),
            msg(2, &[3, 4, 5], &[6]),
            msg(3, &[6, 7, 0], &[1]),
            msg(4, &[8], &[]),
        ];
        assert_eq!(check_messages(10, &msgs), vec![]);
    }

    #[test]
    fn escape_and_dependents_agree() {
        let msgs = vec![
            msg(1, &[0, 1], &[2]),
            msg(2, &[2, 3], &[0]),
            msg(3, &[4, 5], &[6, 2]),
            msg(4, &[6, 7], &[4]),
            msg(5, &[8], &[9]),
        ];
        assert_eq!(check_messages(10, &msgs), vec![]);
    }

    #[test]
    fn empty_agrees() {
        assert_eq!(check_messages(4, &[]), vec![]);
    }

    #[test]
    fn minimizer_is_identity_on_agreement() {
        let msgs = vec![msg(1, &[0, 1], &[2]), msg(2, &[2, 3], &[0])];
        assert_eq!(minimize_divergence(4, &msgs), msgs);
    }
}
