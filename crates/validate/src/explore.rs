//! Exhaustive small-world explorer.
//!
//! Enumerates **every** injection schedule for a tiny network up to a
//! bounded horizon and audits every cycle of every resulting execution:
//! the production detector and the naive oracle must agree on the live
//! wait-state at all times, a detected deadlock must be permanent (no
//! recovery runs here), and a schedule that never deadlocks must fully
//! drain. Within the horizon this is a proof by enumeration that the
//! detector has no false positives and misses no deadlock on these
//! worlds.
//!
//! A schedule is a base-`N` number with one digit per `(cycle, node)`
//! pair over the first `horizon` cycles: digit `d` at `(c, s)` means
//! node `s` enqueues a message to node `d` at cycle `c`, except `d == s`
//! which means "inject nothing" (self-traffic is not meaningful here, so
//! the self digit is recycled as the idle choice). A 3-node ring at
//! horizon 2 is `3^6 = 729` schedules; a 2-ary 2-cube at horizon 1 is
//! `4^4 = 256`.

use crate::arena_msgs;
use crate::diff::{check_messages, Divergence};
use icn_routing::{Dor, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig, SnapshotArena};
use icn_topology::{KAryNCube, NodeId};

/// Routing relation used by the explored world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreRouting {
    /// Deterministic dimension-order routing.
    Dor,
    /// True fully adaptive routing.
    Tfar,
}

impl ExploreRouting {
    fn build(self) -> Box<dyn RoutingAlgorithm> {
        match self {
            ExploreRouting::Dor => Box::new(Dor),
            ExploreRouting::Tfar => Box::new(Tfar),
        }
    }
}

/// One small world to enumerate.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Radix of the k-ary n-cube.
    pub k: u16,
    /// Dimensions.
    pub n: usize,
    /// Torus (wraparound) vs. mesh.
    pub torus: bool,
    /// Bidirectional channels.
    pub bidirectional: bool,
    /// Routing relation.
    pub routing: ExploreRouting,
    /// Virtual channels per physical channel.
    pub vcs: usize,
    /// Edge-buffer depth in flits.
    pub buffer_depth: usize,
    /// Message length in flits.
    pub msg_len: usize,
    /// Cycles during which injection choices are enumerated.
    pub horizon: usize,
    /// Total cycles each schedule is run and audited.
    pub run_cycles: usize,
}

impl ExploreConfig {
    /// 3-node unidirectional ring, 1 VC, wormhole: the smallest world
    /// with reachable knots. 729 schedules at horizon 2.
    pub fn uni_ring_3() -> Self {
        Self {
            k: 3,
            n: 1,
            torus: true,
            bidirectional: false,
            routing: ExploreRouting::Dor,
            vcs: 1,
            buffer_depth: 2,
            msg_len: 3,
            horizon: 2,
            run_cycles: 80,
        }
    }

    /// 4-node unidirectional ring at horizon 1 (256 schedules).
    pub fn uni_ring_4() -> Self {
        Self {
            k: 4,
            n: 1,
            torus: true,
            bidirectional: false,
            routing: ExploreRouting::Dor,
            vcs: 1,
            buffer_depth: 2,
            msg_len: 3,
            horizon: 1,
            run_cycles: 100,
        }
    }

    /// 2-ary 2-cube (bidirectional torus) under TFAR at horizon 1
    /// (256 schedules).
    pub fn cube_2x2_tfar() -> Self {
        Self {
            k: 2,
            n: 2,
            torus: true,
            bidirectional: true,
            routing: ExploreRouting::Tfar,
            vcs: 1,
            buffer_depth: 2,
            msg_len: 2,
            horizon: 1,
            run_cycles: 80,
        }
    }

    fn num_nodes(&self) -> usize {
        (self.k as usize).pow(self.n as u32)
    }

    /// Number of schedules this configuration enumerates.
    pub fn num_schedules(&self) -> u64 {
        let nodes = self.num_nodes() as u64;
        nodes.pow((self.num_nodes() * self.horizon) as u32)
    }
}

/// Outcome of one exhaustive enumeration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules enumerated.
    pub schedules: u64,
    /// Cycle-level audits performed (every cycle of every schedule).
    pub cycles_checked: u64,
    /// Schedules that ended deadlocked.
    pub deadlocked: u64,
    /// Every disagreement or liveness failure, with its schedule index.
    pub divergences: Vec<(u64, Divergence)>,
}

impl ExploreReport {
    /// True when every schedule passed every audit.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs one schedule and audits every cycle. Appends failures to `out`.
fn run_schedule(cfg: &ExploreConfig, schedule: u64, out: &mut ExploreReport) {
    let nodes = cfg.num_nodes();
    let topo = if cfg.torus {
        KAryNCube::torus(cfg.k, cfg.n, cfg.bidirectional)
    } else {
        assert!(cfg.bidirectional, "meshes are always bidirectional");
        KAryNCube::mesh(cfg.k, cfg.n)
    };
    let mut net = Network::new(
        topo,
        cfg.routing.build(),
        SimConfig {
            vcs_per_channel: cfg.vcs,
            buffer_depth: cfg.buffer_depth,
            msg_len: cfg.msg_len,
        },
    );
    let mut arena = SnapshotArena::default();
    let mut digits = schedule;
    let mut seen_deadlock = false;
    let diverge = |out: &mut ExploreReport, context: String, detail: String| {
        out.divergences
            .push((schedule, Divergence { context, detail }));
    };

    for cycle in 0..cfg.run_cycles {
        if cycle < cfg.horizon {
            for src in 0..nodes {
                let d = (digits % nodes as u64) as usize;
                digits /= nodes as u64;
                if d != src {
                    net.enqueue(NodeId(src as u32), NodeId(d as u32));
                }
            }
        }
        net.step();
        net.check_invariants();
        out.cycles_checked += 1;

        net.wait_snapshot_into(&mut arena);
        let msgs = arena_msgs(&arena);
        for d in check_messages(arena.num_vertices(), &msgs) {
            diverge(out, format!("cycle {cycle}: {}", d.context), d.detail);
        }
        let deadlocked_now =
            crate::oracle::oracle_analyze(arena.num_vertices(), &msgs).has_deadlock();
        if seen_deadlock && !deadlocked_now {
            // No recovery runs here, so a knot can never dissolve.
            diverge(
                out,
                format!("cycle {cycle}: deadlock permanence"),
                "a previously detected knot disappeared without recovery".to_string(),
            );
        }
        seen_deadlock |= deadlocked_now;
    }

    if seen_deadlock {
        out.deadlocked += 1;
    } else {
        // Liveness: a schedule the oracle never flags must fully drain.
        let (generated, injected, delivered, _) = net.totals();
        if net.in_network() != 0 || net.source_queued() != 0 {
            diverge(
                out,
                "liveness".to_string(),
                format!(
                    "no deadlock detected but network did not drain in {} cycles \
                     (generated={generated} injected={injected} delivered={delivered} \
                     in_network={} source_queued={})",
                    cfg.run_cycles,
                    net.in_network(),
                    net.source_queued()
                ),
            );
        }
    }
}

/// Enumerates every schedule of `cfg` and audits every cycle.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let total = cfg.num_schedules();
    for schedule in 0..total {
        run_schedule(cfg, schedule, &mut report);
        report.schedules += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uni_ring_3_exhaustive() {
        let cfg = ExploreConfig::uni_ring_3();
        assert_eq!(cfg.num_schedules(), 729);
        let report = explore(&cfg);
        assert_eq!(report.schedules, 729);
        assert!(
            report.ok(),
            "divergences: {:?}",
            &report.divergences[..report.divergences.len().min(5)]
        );
        // The all-idle schedule never deadlocks; saturating schedules do.
        assert!(report.deadlocked > 0, "no schedule wedged the uni-ring");
        assert!(report.deadlocked < report.schedules);
    }

    #[test]
    fn cube_2x2_tfar_exhaustive() {
        let cfg = ExploreConfig::cube_2x2_tfar();
        assert_eq!(cfg.num_schedules(), 256);
        let report = explore(&cfg);
        assert!(
            report.ok(),
            "divergences: {:?}",
            &report.divergences[..report.divergences.len().min(5)]
        );
    }
}
