//! The independent knot oracle.
//!
//! A deliberately naive re-implementation of the CWG deadlock analysis:
//! dense adjacency matrix, repeated full-scan fixed points, Warshall
//! transitive closure — no SCC decomposition, no CSR, no scratch reuse,
//! nothing shared with `icn-cwg` beyond the problem statement. Slow and
//! allocation-happy on purpose: every line is checkable against the §2
//! definitions by eye, which is what makes it a trustworthy referee for
//! the optimized production detector.
//!
//! Semantics under test (matching `icn_cwg::WaitGraph::analyze`):
//!
//! * Vertices are virtual channels (plus reception channels). Each message
//!   contributes *solid* arcs `chain[i] → chain[i+1]` along its ownership
//!   chain and, when blocked, *dashed* arcs `head → r` for every requested
//!   vertex `r`.
//! * A **knot** is a set of vertices whose members reach exactly that set:
//!   every vertex reachable from the knot is in the knot, and the knot is
//!   non-trivial (it contains an arc). Equivalently: `v` is a knot vertex
//!   iff `v` has at least one outgoing arc and every vertex reachable from
//!   `v` can reach `v` back.
//! * The **deadlock set** of a knot is the messages owning its vertices;
//!   the **resource set** is every vertex those messages hold.
//! * Blocked messages outside every deadlock set whose requests lead into
//!   a knot are **dependent**: *committed* when all requests do,
//!   *transient* otherwise.
//!
//! The oracle computes knots in two naive stages:
//!
//! 1. **Escape reduction** — repeatedly remove every vertex that is a sink
//!    or has an arc to a removed vertex. A removed vertex can reach a sink,
//!    so it cannot be in a knot; survivors form a sink-free subgraph closed
//!    under successors.
//! 2. **Warshall closure** over the survivors — a survivor is a knot
//!    vertex iff everything it reaches can reach it back. Stage 1 alone is
//!    *not* sufficient: a cycle that also waits into a knot survives the
//!    reduction without being deadlocked (its members are committed
//!    dependents), which only the closure detects.

/// One message's contribution to a CWG snapshot, oracle-side.
///
/// Mirrors the data (not the code) of `icn_sim::SnapshotMsg` /
/// `icn_cwg` chains so snapshots from any source can be checked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleMsg {
    /// Message id.
    pub id: u64,
    /// Vertices held, acquisition order (tail first, head last). Must be
    /// non-empty and disjoint from every other message's chain.
    pub chain: Vec<u32>,
    /// Vertices waited for; empty when the message is moving.
    pub requests: Vec<u32>,
}

/// Dependent classification, oracle-side (mirrors
/// `icn_cwg::DependentKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleDependent {
    /// Every request leads into a knot.
    Committed,
    /// At least one request does not.
    Transient,
}

/// One knot found by the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleKnot {
    /// The knot's vertices, sorted.
    pub knot: Vec<u32>,
    /// Messages owning knot vertices, sorted.
    pub deadlock_set: Vec<u64>,
    /// Every vertex held by a deadlock-set message, sorted.
    pub resource_set: Vec<u32>,
}

/// The oracle's verdict on one snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleAnalysis {
    /// Every knot, sorted by first knot vertex.
    pub knots: Vec<OracleKnot>,
    /// Dependent messages, sorted by id (empty when there is no knot).
    pub dependent: Vec<(u64, OracleDependent)>,
    /// Messages with a non-empty request set.
    pub num_blocked: usize,
}

impl OracleAnalysis {
    /// True when at least one knot exists.
    pub fn has_deadlock(&self) -> bool {
        !self.knots.is_empty()
    }

    /// The deadlock sets, sorted (outer and inner).
    pub fn deadlock_sets(&self) -> Vec<Vec<u64>> {
        let mut sets: Vec<Vec<u64>> = self.knots.iter().map(|k| k.deadlock_set.clone()).collect();
        sets.sort();
        sets
    }
}

/// Builds the dense adjacency matrix of the snapshot's CWG and the
/// per-vertex owner map (indices into `msgs`).
fn build_matrix(num_vertices: usize, msgs: &[OracleMsg]) -> (Vec<Vec<bool>>, Vec<Option<usize>>) {
    let mut adj = vec![vec![false; num_vertices]; num_vertices];
    let mut owner: Vec<Option<usize>> = vec![None; num_vertices];
    for (mi, m) in msgs.iter().enumerate() {
        assert!(!m.chain.is_empty(), "oracle: message {} has no chain", m.id);
        for &v in &m.chain {
            let v = v as usize;
            assert!(v < num_vertices, "oracle: vertex {v} out of range");
            assert!(
                owner[v].is_none(),
                "oracle: vertex {v} owned by two messages"
            );
            owner[v] = Some(mi);
        }
        for w in m.chain.windows(2) {
            adj[w[0] as usize][w[1] as usize] = true;
        }
        if !m.requests.is_empty() {
            let head = *m.chain.last().unwrap() as usize;
            for &r in &m.requests {
                assert!((r as usize) < num_vertices, "oracle: request out of range");
                adj[head][r as usize] = true;
            }
        }
    }
    (adj, owner)
}

/// Analyzes one snapshot with the naive oracle.
pub fn oracle_analyze(num_vertices: usize, msgs: &[OracleMsg]) -> OracleAnalysis {
    let n = num_vertices;
    let (adj, owner) = build_matrix(n, msgs);

    // Stage 1: escape reduction to a fixed point. Remove sinks and any
    // vertex with an arc to a removed vertex; survivors cannot reach a
    // sink and every survivor arc stays among survivors.
    let mut removed = vec![false; n];
    loop {
        let mut changed = false;
        for v in 0..n {
            if removed[v] {
                continue;
            }
            let mut has_arc = false;
            let mut escapes = false;
            for w in 0..n {
                if adj[v][w] {
                    has_arc = true;
                    if removed[w] {
                        escapes = true;
                    }
                }
            }
            if !has_arc || escapes {
                removed[v] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let survivors: Vec<usize> = (0..n).filter(|&v| !removed[v]).collect();
    let num_blocked = msgs.iter().filter(|m| !m.requests.is_empty()).count();

    // Stage 2: Warshall transitive closure over the survivors; a survivor
    // is a knot vertex iff everything it reaches can reach it back.
    let s = survivors.len();
    let mut dense = vec![usize::MAX; n];
    for (i, &v) in survivors.iter().enumerate() {
        dense[v] = i;
    }
    let mut reach = vec![vec![false; s]; s];
    for (i, &v) in survivors.iter().enumerate() {
        for (j, &w) in survivors.iter().enumerate() {
            if adj[v][w] {
                reach[i][j] = true;
            }
        }
    }
    for k in 0..s {
        let row_k = reach[k].clone();
        for row_i in reach.iter_mut() {
            if row_i[k] {
                for (cell, &via_k) in row_i.iter_mut().zip(&row_k) {
                    *cell = *cell || via_k;
                }
            }
        }
    }
    let mut is_knot_vertex = vec![false; n];
    for (i, &v) in survivors.iter().enumerate() {
        let knotty = (0..s).all(|j| !reach[i][j] || reach[j][i]);
        if knotty {
            is_knot_vertex[v] = true;
        }
    }

    // Group knot vertices into knots: members of one knot are mutually
    // reachable, distinct knots are unreachable from each other.
    let mut assigned = vec![false; n];
    let mut knots = Vec::new();
    for v in 0..n {
        if !is_knot_vertex[v] || assigned[v] {
            continue;
        }
        let vi = dense[v];
        let mut knot: Vec<u32> = vec![v as u32];
        assigned[v] = true;
        for &w in &survivors {
            if w != v && is_knot_vertex[w] && !assigned[w] && reach[vi][dense[w]] {
                knot.push(w as u32);
                assigned[w] = true;
            }
        }
        knot.sort_unstable();

        let mut deadlock_set: Vec<u64> = knot
            .iter()
            .filter_map(|&kv| owner[kv as usize].map(|mi| msgs[mi].id))
            .collect();
        deadlock_set.sort_unstable();
        deadlock_set.dedup();

        let mut resource_set: Vec<u32> = msgs
            .iter()
            .filter(|m| deadlock_set.binary_search(&m.id).is_ok())
            .flat_map(|m| m.chain.iter().copied())
            .collect();
        resource_set.sort_unstable();
        resource_set.dedup();

        knots.push(OracleKnot {
            knot,
            deadlock_set,
            resource_set,
        });
    }

    // Dependent census: blocked messages outside every deadlock set whose
    // requests lead into a knot. "Leads into" is reachability on the full
    // graph, computed as yet another naive fixed point.
    let mut dependent = Vec::new();
    if !knots.is_empty() {
        let mut reaches_knot = vec![false; n];
        for k in &knots {
            for &v in &k.knot {
                reaches_knot[v as usize] = true;
            }
        }
        loop {
            let mut changed = false;
            for v in 0..n {
                if reaches_knot[v] {
                    continue;
                }
                if (0..n).any(|w| adj[v][w] && reaches_knot[w]) {
                    reaches_knot[v] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let deadlocked: Vec<u64> = knots
            .iter()
            .flat_map(|k| k.deadlock_set.iter().copied())
            .collect();
        for m in msgs {
            if m.requests.is_empty() || deadlocked.contains(&m.id) {
                continue;
            }
            let hits = m
                .requests
                .iter()
                .filter(|&&r| reaches_knot[r as usize])
                .count();
            if hits == 0 {
                continue;
            }
            let kind = if hits == m.requests.len() {
                OracleDependent::Committed
            } else {
                OracleDependent::Transient
            };
            dependent.push((m.id, kind));
        }
        dependent.sort_unstable_by_key(|&(id, _)| id);
    }

    OracleAnalysis {
        knots,
        dependent,
        num_blocked,
    }
}

/// Brute-force minimal-deadlock-set enumeration for small snapshots.
///
/// A set `S` of blocked messages is **closed** when every member's every
/// request targets a vertex owned by a member of `S`. Every closed set
/// wedges permanently (no member can ever acquire a requested vertex), and
/// the *minimal* closed sets are exactly the knots' deadlock sets — an
/// entirely different characterization from the graph-theoretic one, which
/// makes this a third independent implementation to cross-check.
///
/// Enumerates all `2^B` subsets of the `B` blocked messages; returns
/// `None` when `B > max_blocked` (the caller skips the check rather than
/// waiting on an exponential loop).
pub fn minimal_deadlock_sets(
    num_vertices: usize,
    msgs: &[OracleMsg],
    max_blocked: usize,
) -> Option<Vec<Vec<u64>>> {
    let (_, owner) = build_matrix(num_vertices, msgs);
    let blocked: Vec<usize> = (0..msgs.len())
        .filter(|&i| !msgs[i].requests.is_empty())
        .collect();
    let b = blocked.len();
    if b > max_blocked {
        return None;
    }
    // Blocked-index of each message index, or MAX for moving messages.
    let mut blocked_idx = vec![usize::MAX; msgs.len()];
    for (bi, &mi) in blocked.iter().enumerate() {
        blocked_idx[mi] = bi;
    }

    let closed = |mask: u64| -> bool {
        for (bi, &mi) in blocked.iter().enumerate() {
            if mask & (1 << bi) == 0 {
                continue;
            }
            for &r in &msgs[mi].requests {
                let Some(owner_mi) = owner[r as usize] else {
                    return false; // a free vertex is an escape
                };
                let obi = blocked_idx[owner_mi];
                if obi == usize::MAX || mask & (1 << obi) == 0 {
                    return false; // owned by a moving or excluded message
                }
            }
        }
        true
    };

    let closed_masks: Vec<u64> = (1..(1u64 << b)).filter(|&m| closed(m)).collect();
    let mut sets: Vec<Vec<u64>> = closed_masks
        .iter()
        .filter(|&&m| {
            // Minimal: no proper non-empty closed subset.
            !closed_masks.iter().any(|&m2| m2 != m && m2 & m == m2)
        })
        .map(|&m| {
            let mut set: Vec<u64> = blocked
                .iter()
                .enumerate()
                .filter(|&(bi, _)| m & (1 << bi) != 0)
                .map(|(_, &mi)| msgs[mi].id)
                .collect();
            set.sort_unstable();
            set
        })
        .collect();
    sets.sort();
    Some(sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, chain: &[u32], requests: &[u32]) -> OracleMsg {
        OracleMsg {
            id,
            chain: chain.to_vec(),
            requests: requests.to_vec(),
        }
    }

    /// Figure 1: three messages in a single-cycle knot, two moving.
    fn figure1() -> Vec<OracleMsg> {
        vec![
            msg(1, &[1, 2], &[3]),
            msg(2, &[3, 4, 5], &[6]),
            msg(3, &[6, 7, 0], &[1]),
            msg(4, &[8], &[]),
            msg(5, &[9], &[]),
        ]
    }

    #[test]
    fn figure1_knot() {
        let a = oracle_analyze(10, &figure1());
        assert!(a.has_deadlock());
        assert_eq!(a.knots.len(), 1);
        assert_eq!(a.knots[0].knot, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a.knots[0].deadlock_set, vec![1, 2, 3]);
        assert_eq!(a.knots[0].resource_set, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(a.dependent.is_empty());
        assert_eq!(a.num_blocked, 3);
        assert_eq!(
            minimal_deadlock_sets(10, &figure1(), 16),
            Some(vec![vec![1, 2, 3]])
        );
    }

    #[test]
    fn escape_resource_prevents_deadlock() {
        let msgs = vec![
            msg(1, &[1, 2], &[3]),
            msg(2, &[3, 4, 5], &[6]),
            msg(3, &[6, 7, 0], &[1, 9]), // 9 is free: an escape
        ];
        let a = oracle_analyze(10, &msgs);
        assert!(!a.has_deadlock());
        assert_eq!(minimal_deadlock_sets(10, &msgs, 16), Some(vec![]));
    }

    #[test]
    fn waiting_on_moving_message_is_not_deadlock() {
        let msgs = vec![msg(1, &[0, 1], &[]), msg(2, &[2, 3], &[0])];
        let a = oracle_analyze(4, &msgs);
        assert!(!a.has_deadlock());
        assert_eq!(a.num_blocked, 1);
        assert_eq!(minimal_deadlock_sets(4, &msgs, 16), Some(vec![]));
    }

    #[test]
    fn committed_dependent() {
        let mut msgs = figure1();
        msgs.truncate(3);
        msgs.push(msg(6, &[10, 11], &[4]));
        let a = oracle_analyze(12, &msgs);
        assert_eq!(a.knots.len(), 1);
        assert_eq!(a.knots[0].deadlock_set, vec![1, 2, 3]);
        assert_eq!(a.dependent, vec![(6, OracleDependent::Committed)]);
        // The dependent is not in any minimal closed set.
        assert_eq!(
            minimal_deadlock_sets(12, &msgs, 16),
            Some(vec![vec![1, 2, 3]])
        );
    }

    #[test]
    fn transient_dependent() {
        let mut msgs = figure1();
        msgs.truncate(3);
        msgs.push(msg(6, &[10, 11], &[4, 13]));
        let a = oracle_analyze(14, &msgs);
        assert_eq!(a.dependent, vec![(6, OracleDependent::Transient)]);
    }

    /// A cycle that waits into a knot survives the escape reduction but is
    /// not deadlocked — the case where stage 1 alone would be wrong.
    #[test]
    fn cycle_waiting_into_knot_is_dependent_not_deadlocked() {
        let msgs = vec![
            msg(1, &[0, 1], &[2]),
            msg(2, &[2, 3], &[0]),
            // m3 <-> m4 form a cycle; m3 also requests into the knot.
            msg(3, &[4, 5], &[6, 2]),
            msg(4, &[6, 7], &[4]),
        ];
        let a = oracle_analyze(8, &msgs);
        assert_eq!(a.knots.len(), 1);
        assert_eq!(a.knots[0].knot, vec![0, 1, 2, 3]);
        assert_eq!(a.knots[0].deadlock_set, vec![1, 2]);
        assert_eq!(
            a.dependent,
            vec![
                (3, OracleDependent::Committed),
                (4, OracleDependent::Committed)
            ]
        );
        assert_eq!(minimal_deadlock_sets(8, &msgs, 16), Some(vec![vec![1, 2]]));
    }

    #[test]
    fn multi_cycle_knot() {
        // Figure 3 shape: four messages, each waiting for both VCs of the
        // next channel around a square.
        let mut msgs = Vec::new();
        for i in 0..4u64 {
            let a = (2 * i) as u32;
            let na = (2 * ((i + 1) % 4)) as u32;
            msgs.push(msg(i + 1, &[a, a + 1], &[na, na + 1]));
        }
        let a = oracle_analyze(8, &msgs);
        assert_eq!(a.knots.len(), 1);
        assert_eq!(a.knots[0].deadlock_set, vec![1, 2, 3, 4]);
        assert_eq!(a.knots[0].resource_set.len(), 8);
        assert_eq!(
            minimal_deadlock_sets(8, &msgs, 16),
            Some(vec![vec![1, 2, 3, 4]])
        );
    }

    #[test]
    fn two_independent_knots() {
        let msgs = vec![
            msg(1, &[0, 1], &[2]),
            msg(2, &[2, 3], &[0]),
            msg(3, &[4, 5], &[6]),
            msg(4, &[6, 7], &[4]),
        ];
        let a = oracle_analyze(8, &msgs);
        assert_eq!(a.knots.len(), 2);
        assert_eq!(a.deadlock_sets(), vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(
            minimal_deadlock_sets(8, &msgs, 16),
            Some(vec![vec![1, 2], vec![3, 4]])
        );
    }

    #[test]
    fn empty_snapshot_is_clean() {
        let a = oracle_analyze(16, &[]);
        assert!(!a.has_deadlock());
        assert_eq!(a.num_blocked, 0);
        assert!(a.dependent.is_empty());
    }

    #[test]
    fn minimal_two_message_deadlock() {
        let msgs = vec![msg(1, &[0, 1], &[2]), msg(2, &[2, 3], &[0])];
        let a = oracle_analyze(4, &msgs);
        assert_eq!(a.knots.len(), 1);
        assert_eq!(a.knots[0].deadlock_set, vec![1, 2]);
    }

    #[test]
    fn brute_force_respects_the_cap() {
        let mut msgs = Vec::new();
        for i in 0..17u64 {
            let v = (2 * i) as u32;
            let nv = (2 * ((i + 1) % 17)) as u32;
            msgs.push(msg(i + 1, &[v, v + 1], &[nv]));
        }
        assert_eq!(minimal_deadlock_sets(34, &msgs, 16), None);
        let sets = minimal_deadlock_sets(34, &msgs, 17).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 17);
    }
}
