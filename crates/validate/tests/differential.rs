//! Randomized differential test: production detector vs. naive oracle
//! vs. brute force, over seeded random CWG snapshots.

use icn_validate::{check_messages, minimize_divergence, random_snapshot, GenParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every implementation agrees on every randomized snapshot; on a
    /// divergence the minimizer produces a small reproducer for the
    /// failure message.
    #[test]
    fn production_matches_oracle_on_random_cwgs(seed in any::<u64>()) {
        let p = GenParams::default();
        let (n, msgs) = random_snapshot(seed, &p);
        let divergences = check_messages(n, &msgs);
        if !divergences.is_empty() {
            let minimal = minimize_divergence(n, &msgs);
            prop_assert!(
                false,
                "seed {seed}: {divergences:?}\nminimal repro: {minimal:?}"
            );
        }
    }

    /// Denser, knottier shapes: short chains, many messages, heavy
    /// owned-vertex bias, so multi-knot and dependent-heavy snapshots
    /// are common.
    #[test]
    fn production_matches_oracle_on_dense_cwgs(seed in any::<u64>()) {
        let p = GenParams {
            num_vertices: 24,
            max_messages: 12,
            max_chain: 2,
            max_requests: 2,
            blocked_prob: 0.95,
            owned_bias: 0.95,
        };
        let (n, msgs) = random_snapshot(seed, &p);
        let divergences = check_messages(n, &msgs);
        if !divergences.is_empty() {
            let minimal = minimize_divergence(n, &msgs);
            prop_assert!(
                false,
                "seed {seed}: {divergences:?}\nminimal repro: {minimal:?}"
            );
        }
    }
}
