//! Property tests for traffic patterns and injection.
//!
//! The permutation patterns (bit-reversal, transpose, perfect shuffle, bit
//! complement) must be bijections over the node set; the stochastic patterns
//! (uniform, hot-spot) must respect their distributional contracts: never
//! target the source, cover every other node, and hit the hot node at the
//! configured rate. These properties back the validation layer's routing
//! invariants — a non-bijective permutation would silently skew every
//! deadlock-frequency figure.

use std::collections::HashSet;

use icn_topology::{Coords, KAryNCube, NodeId};
use icn_traffic::{message_rate, BernoulliInjector, MsgLenDist, Pattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A selection of power-of-two-node topologies (the permutation patterns
/// require `num_nodes` to be a power of two).
fn pow2_topo(i: usize) -> KAryNCube {
    match i % 5 {
        0 => KAryNCube::torus(4, 2, true),  // 16 nodes
        1 => KAryNCube::torus(4, 3, true),  // 64 nodes
        2 => KAryNCube::torus(16, 2, true), // 256 nodes (the paper's default)
        3 => KAryNCube::hypercube(6),       // 64 nodes
        _ => KAryNCube::torus(8, 2, false), // 64 nodes, unidirectional
    }
}

const PERMUTATIONS: [Pattern; 4] = [
    Pattern::BitReversal,
    Pattern::Transpose,
    Pattern::PerfectShuffle,
    Pattern::BitComplement,
];

/// The pattern as a total map over nodes: fixed points (where `dest`
/// returns `None` because the node would target itself) map to themselves.
fn total_map(pat: &Pattern, topo: &KAryNCube, src: NodeId, rng: &mut StdRng) -> NodeId {
    pat.dest(topo, src, rng).unwrap_or(src)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutations_are_bijections(topo_i in 0usize..5, seed in any::<u64>()) {
        let topo = pow2_topo(topo_i);
        let mut rng = StdRng::seed_from_u64(seed);
        for pat in &PERMUTATIONS {
            let mut image = HashSet::new();
            for s in 0..topo.num_nodes() as u32 {
                let d = total_map(pat, &topo, NodeId(s), &mut rng);
                prop_assert!(d.idx() < topo.num_nodes(), "{} out of range", pat.name());
                prop_assert!(image.insert(d), "{} not injective at n{s}", pat.name());
                if let Some(explicit) = pat.dest(&topo, NodeId(s), &mut rng) {
                    prop_assert_ne!(explicit, NodeId(s), "{} returned src", pat.name());
                }
            }
            // Injective over a finite set of the same size => surjective.
            prop_assert_eq!(image.len(), topo.num_nodes());
        }
    }

    #[test]
    fn involutions_return_after_two_hops(topo_i in 0usize..5, src in 0u32..16) {
        // Bit-reversal, transpose, and bit-complement are self-inverse.
        let topo = pow2_topo(topo_i);
        let mut rng = StdRng::seed_from_u64(1);
        let src = NodeId(src % topo.num_nodes() as u32);
        for pat in [Pattern::BitReversal, Pattern::Transpose, Pattern::BitComplement] {
            let there = total_map(&pat, &topo, src, &mut rng);
            let back = total_map(&pat, &topo, there, &mut rng);
            prop_assert_eq!(back, src, "{} not an involution", pat.name());
        }
    }

    #[test]
    fn perfect_shuffle_cycles_after_bits_applications(topo_i in 0usize..5, src in any::<u32>()) {
        // Rotating an id left one bit per application returns to the start
        // after `log2(num_nodes)` applications.
        let topo = pow2_topo(topo_i);
        let bits = topo.num_nodes().trailing_zeros();
        let mut rng = StdRng::seed_from_u64(2);
        let src = NodeId(src % topo.num_nodes() as u32);
        let mut cur = src;
        for _ in 0..bits {
            cur = total_map(&Pattern::PerfectShuffle, &topo, cur, &mut rng);
        }
        prop_assert_eq!(cur, src);
    }

    #[test]
    fn transpose_reverses_coordinates(topo_i in 0usize..5, src in any::<u32>()) {
        let topo = pow2_topo(topo_i);
        let mut rng = StdRng::seed_from_u64(3);
        let src = NodeId(src % topo.num_nodes() as u32);
        let d = total_map(&Pattern::Transpose, &topo, src, &mut rng);
        let c = topo.coords(src);
        let n = c.dims();
        let rev: Vec<u16> = (0..n).map(|i| c.get(n - 1 - i)).collect();
        prop_assert_eq!(d, topo.node_at(&Coords::new(&rev)));
    }

    #[test]
    fn uniform_excludes_self_and_stays_in_range(
        k in 2u16..8,
        n in 1usize..4,
        src in any::<u32>(),
        seed in any::<u64>(),
    ) {
        // Uniform works on any topology, power of two or not.
        let topo = KAryNCube::torus(k, n, true);
        let src = NodeId(src % topo.num_nodes() as u32);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let d = Pattern::Uniform.dest(&topo, src, &mut rng);
            prop_assert!(d.is_some(), "uniform always finds a destination");
            let d = d.unwrap();
            prop_assert_ne!(d, src);
            prop_assert!(d.idx() < topo.num_nodes());
        }
    }
}

proptest! {
    // Statistical properties need many samples per case; fewer cases keep
    // the suite fast while the 4-sigma tolerances keep it deterministic.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn uniform_covers_every_other_node(seed in any::<u64>(), src in 0u32..9) {
        let topo = KAryNCube::torus(3, 2, true); // 9 nodes
        let src = NodeId(src);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(Pattern::Uniform.dest(&topo, src, &mut rng).unwrap());
        }
        // P(miss a specific node in 2000 draws) = (7/8)^2000 ~ 1e-116.
        prop_assert_eq!(seen.len(), topo.num_nodes() - 1);
        prop_assert!(!seen.contains(&src));
    }

    #[test]
    fn hot_spot_rate_matches_fraction(
        seed in any::<u64>(),
        frac_pct in 5u32..96,
        hot in 0u32..16,
    ) {
        let topo = KAryNCube::torus(4, 2, true); // 16 nodes
        let fraction = frac_pct as f64 / 100.0;
        let hot = NodeId(hot);
        let src = NodeId((hot.0 + 1) % 16); // src != hot
        let pat = Pattern::HotSpot { hot, fraction };
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 4000;
        let mut hits = 0;
        for _ in 0..trials {
            match pat.dest(&topo, src, &mut rng) {
                Some(d) => {
                    prop_assert_ne!(d, src);
                    if d == hot {
                        hits += 1;
                    }
                }
                None => prop_assert!(false, "src != hot never maps to itself"),
            }
        }
        // Directed traffic plus the uniform residue's 1/(n-1) share of hot.
        let expect = fraction + (1.0 - fraction) / 15.0;
        let sigma = (expect * (1.0 - expect) / trials as f64).sqrt();
        let observed = hits as f64 / trials as f64;
        prop_assert!(
            (observed - expect).abs() < 5.0 * sigma + 1e-3,
            "hot rate {observed} vs expected {expect}"
        );
    }

    #[test]
    fn hot_spot_from_hot_node_is_silent_when_fully_directed(hot in 0u32..16) {
        // fraction = 1.0 always picks the hot node; from the hot node itself
        // that is a self-send, which the pattern reports as silence.
        let topo = KAryNCube::torus(4, 2, true);
        let pat = Pattern::HotSpot { hot: NodeId(hot), fraction: 1.0 };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..32 {
            prop_assert_eq!(pat.dest(&topo, NodeId(hot), &mut rng), None);
        }
    }

    #[test]
    fn bimodal_lengths_only_take_the_two_modes(
        seed in any::<u64>(),
        short in 1usize..16,
        extra in 0usize..48,
        frac_pct in 0u32..101,
    ) {
        let long = short + extra;
        let d = MsgLenDist::Bimodal { short, long, long_frac: frac_pct as f64 / 100.0 };
        d.validate();
        prop_assert!(d.mean() >= short as f64 && d.mean() <= long as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let l = d.sample(&mut rng);
            prop_assert!(l == short || l == long, "sampled {l}");
        }
    }

    #[test]
    fn message_rate_is_linear_in_load_and_inverse_in_length(
        load_pct in 1u32..200,
        len in 1usize..128,
    ) {
        let topo = KAryNCube::torus(8, 2, true);
        let load = load_pct as f64 / 100.0;
        let r = message_rate(&topo, load, len);
        prop_assert!(r > 0.0);
        // Linear in load.
        let r2 = message_rate(&topo, 2.0 * load, len);
        prop_assert!((r2 - 2.0 * r).abs() < 1e-12 * r2.max(1.0));
        // Inverse in message length.
        let rlen = message_rate(&topo, load, 2 * len);
        prop_assert!((2.0 * rlen - r).abs() < 1e-12 * r.max(1.0));
        // The injector clamps to a valid probability.
        let inj = BernoulliInjector::new(r);
        prop_assert!((0.0..=1.0).contains(&inj.prob()));
    }
}
