//! Traffic generation for the deadlock characterization study.
//!
//! The paper drives its networks with uniform traffic by default and checks
//! robustness against the four classic non-uniform patterns (§3.6):
//! bit-reversal, matrix-transpose, perfect-shuffle, and hot-spot. Offered
//! load is always expressed as a fraction of **network capacity**, computed
//! from total link bandwidth and average inter-node distance, so that
//! different topologies (uni vs bi, 2-D vs 4-D) are compared at equivalent
//! utilization.

mod injection;
mod length;
mod pattern;

pub use injection::{message_rate, BernoulliInjector};
pub use length::MsgLenDist;
pub use pattern::Pattern;
