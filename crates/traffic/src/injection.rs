//! Injection processes and capacity-normalized load.

use icn_topology::KAryNCube;
use rand::Rng;

/// Converts a normalized load (fraction of network capacity, 1.0 = links
/// saturated given the average travel distance) into a per-node, per-cycle
/// *message* generation probability.
///
/// The paper normalizes load "based on total link bandwidth and average
/// internode distance", which differs between the uni- and bidirectional
/// networks of Figure 5 — this function reproduces that normalization.
pub fn message_rate(topo: &KAryNCube, load: f64, msg_len: usize) -> f64 {
    assert!(load >= 0.0, "load must be non-negative");
    assert!(msg_len > 0, "messages need at least one flit");
    let flits_per_node_cycle = load * topo.capacity_flits_per_node_cycle();
    flits_per_node_cycle / msg_len as f64
}

/// Bernoulli (geometric inter-arrival) injection: each cycle each node
/// independently generates a message with fixed probability.
#[derive(Clone, Copy, Debug)]
pub struct BernoulliInjector {
    prob: f64,
}

impl BernoulliInjector {
    /// Process generating messages at `rate` messages per node per cycle.
    ///
    /// Rates above 1.0 are clamped: a node can start at most one message per
    /// cycle (the injection channel is a single resource).
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        BernoulliInjector {
            prob: rate.min(1.0),
        }
    }

    /// Convenience constructor from a normalized load.
    pub fn for_load(topo: &KAryNCube, load: f64, msg_len: usize) -> Self {
        Self::new(message_rate(topo, load, msg_len))
    }

    /// The per-cycle generation probability.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Whether this node generates a message this cycle.
    #[inline]
    pub fn fires<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.prob > 0.0 && rng.gen_bool(self.prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_load_rate_bidirectional() {
        let t = KAryNCube::torus(16, 2, true);
        // capacity ~0.498 flits/node/cycle; 32-flit messages.
        let r = message_rate(&t, 1.0, 32);
        assert!((r - 0.498 / 32.0).abs() < 1e-3, "rate {r}");
    }

    #[test]
    fn uni_capacity_lower_than_bi() {
        let uni = KAryNCube::torus(16, 2, false);
        let bi = KAryNCube::torus(16, 2, true);
        assert!(message_rate(&uni, 1.0, 32) < message_rate(&bi, 1.0, 32));
    }

    #[test]
    fn rate_scales_linearly_with_load() {
        let t = KAryNCube::torus(8, 2, true);
        let half = message_rate(&t, 0.5, 16);
        let full = message_rate(&t, 1.0, 16);
        assert!((full - 2.0 * half).abs() < 1e-12);
    }

    #[test]
    fn zero_load_never_fires() {
        let inj = BernoulliInjector::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !inj.fires(&mut rng)));
    }

    #[test]
    fn firing_rate_matches_probability() {
        let inj = BernoulliInjector::new(0.25);
        let mut rng = StdRng::seed_from_u64(2);
        let fires = (0..40_000).filter(|_| inj.fires(&mut rng)).count();
        let frac = fires as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn over_capacity_clamps() {
        let inj = BernoulliInjector::new(7.5);
        assert_eq!(inj.prob(), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(inj.fires(&mut rng));
    }
}
