//! Message-length distributions (hybrid-length workloads, paper §5).

use rand::Rng;

/// How long generated messages are, in flits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MsgLenDist {
    /// Every message has the configured fixed length.
    Fixed(usize),
    /// Bimodal mix: `long_frac` of messages have `long` flits, the rest
    /// `short` — the classic request/reply hybrid traffic shape.
    Bimodal {
        short: usize,
        long: usize,
        long_frac: f64,
    },
}

impl MsgLenDist {
    /// Mean length in flits (used to normalize offered load).
    pub fn mean(&self) -> f64 {
        match *self {
            MsgLenDist::Fixed(l) => l as f64,
            MsgLenDist::Bimodal {
                short,
                long,
                long_frac,
            } => short as f64 * (1.0 - long_frac) + long as f64 * long_frac,
        }
    }

    /// Samples one message length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            MsgLenDist::Fixed(l) => l,
            MsgLenDist::Bimodal {
                short,
                long,
                long_frac,
            } => {
                if rng.gen_bool(long_frac) {
                    long
                } else {
                    short
                }
            }
        }
    }

    /// Validates the distribution's parameters.
    pub fn validate(&self) {
        match *self {
            MsgLenDist::Fixed(l) => assert!(l >= 1, "messages need a flit"),
            MsgLenDist::Bimodal {
                short,
                long,
                long_frac,
            } => {
                assert!(short >= 1 && long >= short, "need 1 <= short <= long");
                assert!((0.0..=1.0).contains(&long_frac), "fraction in [0,1]");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let d = MsgLenDist::Fixed(32);
        d.validate();
        assert_eq!(d.mean(), 32.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 32));
    }

    #[test]
    fn bimodal_mean_and_mix() {
        let d = MsgLenDist::Bimodal {
            short: 8,
            long: 64,
            long_frac: 0.25,
        };
        d.validate();
        assert_eq!(d.mean(), 8.0 * 0.75 + 64.0 * 0.25);
        let mut rng = StdRng::seed_from_u64(2);
        let longs = (0..10_000).filter(|_| d.sample(&mut rng) == 64).count();
        let frac = longs as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    #[should_panic(expected = "short <= long")]
    fn bimodal_rejects_inverted() {
        MsgLenDist::Bimodal {
            short: 64,
            long: 8,
            long_frac: 0.5,
        }
        .validate();
    }
}
