//! Destination-selection patterns.

use icn_topology::{Coords, KAryNCube, NodeId};
use rand::Rng;

/// Spatial traffic pattern: which destination a message from `src` targets.
///
/// Permutation patterns may map a node onto itself (e.g. the diagonal under
/// [`Pattern::Transpose`]); such nodes generate no traffic, which is exactly
/// the property the paper leans on in §3.6 when explaining why DOR sees no
/// deadlock under some non-uniform patterns (the "circular overlap" needed
/// for a single-cycle deadlock cannot form).
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// Every other node equally likely.
    Uniform,
    /// Destination is the bit-reversal of the source id (node count must be
    /// a power of two).
    BitReversal,
    /// Coordinate transpose: (c0, c1, ..., c_{n-1}) → (c_{n-1}, ..., c1, c0).
    Transpose,
    /// Destination id is the source id rotated left one bit (power of two).
    PerfectShuffle,
    /// Destination id is the bitwise complement of the source id (power of
    /// two). Not in the paper's list but a standard adversarial permutation,
    /// kept for the extension experiments.
    BitComplement,
    /// A `fraction` of messages target the single hot node; the rest are
    /// uniform.
    HotSpot { hot: NodeId, fraction: f64 },
}

impl Pattern {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::BitReversal => "bit-reversal",
            Pattern::Transpose => "transpose",
            Pattern::PerfectShuffle => "perfect-shuffle",
            Pattern::BitComplement => "bit-complement",
            Pattern::HotSpot { .. } => "hot-spot",
        }
    }

    /// Whether the pattern needs the node count to be a power of two.
    pub fn needs_pow2(&self) -> bool {
        matches!(
            self,
            Pattern::BitReversal | Pattern::PerfectShuffle | Pattern::BitComplement
        )
    }

    /// Picks the destination for a message injected at `src`, or `None` when
    /// the pattern maps `src` onto itself (the node stays silent).
    pub fn dest<R: Rng + ?Sized>(
        &self,
        topo: &KAryNCube,
        src: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = topo.num_nodes() as u32;
        let dst = match self {
            Pattern::Uniform => {
                // Sample uniformly among the n-1 other nodes.
                let r = rng.gen_range(0..n - 1);
                NodeId(if r >= src.0 { r + 1 } else { r })
            }
            Pattern::BitReversal => {
                let bits = pow2_bits(n);
                NodeId(src.0.reverse_bits() >> (32 - bits))
            }
            Pattern::Transpose => {
                let c = topo.coords(src);
                let mut rev = [0u16; icn_topology::MAX_DIMS];
                for (d, slot) in rev.iter_mut().take(c.dims()).enumerate() {
                    *slot = c.get(c.dims() - 1 - d);
                }
                topo.node_at(&Coords::new(&rev[..c.dims()]))
            }
            Pattern::PerfectShuffle => {
                let bits = pow2_bits(n);
                let hi = (src.0 >> (bits - 1)) & 1;
                NodeId(((src.0 << 1) | hi) & (n - 1))
            }
            Pattern::BitComplement => NodeId(!src.0 & (n - 1)),
            Pattern::HotSpot { hot, fraction } => {
                if rng.gen_bool(*fraction) {
                    *hot
                } else {
                    let r = rng.gen_range(0..n - 1);
                    NodeId(if r >= src.0 { r + 1 } else { r })
                }
            }
        };
        (dst != src).then_some(dst)
    }
}

fn pow2_bits(n: u32) -> u32 {
    assert!(
        n.is_power_of_two(),
        "pattern requires a power-of-two node count"
    );
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self() {
        let t = KAryNCube::torus(4, 2, true);
        let mut r = rng();
        for _ in 0..1000 {
            let src = NodeId(r.gen_range(0..16));
            let d = Pattern::Uniform.dest(&t, src, &mut r).unwrap();
            assert_ne!(d, src);
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let t = KAryNCube::torus(4, 2, true);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = Pattern::Uniform.dest(&t, NodeId(0), &mut r).unwrap();
            seen[d.idx()] = true;
        }
        assert!(seen[1..].iter().all(|&s| s), "all non-self nodes reachable");
        assert!(!seen[0]);
    }

    #[test]
    fn bit_reversal_256() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        // 256 nodes = 8 bits: 0b0000_0001 -> 0b1000_0000.
        let d = Pattern::BitReversal.dest(&t, NodeId(1), &mut r).unwrap();
        assert_eq!(d, NodeId(128));
        // palindromic id maps to itself -> None
        assert_eq!(Pattern::BitReversal.dest(&t, NodeId(0), &mut r), None);
        assert_eq!(
            Pattern::BitReversal.dest(&t, NodeId(0b10000001), &mut r),
            None
        );
    }

    #[test]
    fn bit_reversal_is_involution() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        for s in 0..256u32 {
            if let Some(d) = Pattern::BitReversal.dest(&t, NodeId(s), &mut r) {
                let back = Pattern::BitReversal.dest(&t, d, &mut r).unwrap();
                assert_eq!(back, NodeId(s));
            }
        }
    }

    #[test]
    fn transpose_swaps_coords() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        let src = t.node_at(&Coords::new(&[3, 11]));
        let d = Pattern::Transpose.dest(&t, src, &mut r).unwrap();
        assert_eq!(t.coords(d).as_slice(), &[11, 3]);
        // diagonal is silent
        let diag = t.node_at(&Coords::new(&[5, 5]));
        assert_eq!(Pattern::Transpose.dest(&t, diag, &mut r), None);
    }

    #[test]
    fn perfect_shuffle_rotates() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        // 8 bits: 0b1000_0000 -> 0b0000_0001
        let d = Pattern::PerfectShuffle
            .dest(&t, NodeId(128), &mut r)
            .unwrap();
        assert_eq!(d, NodeId(1));
        let d = Pattern::PerfectShuffle
            .dest(&t, NodeId(0b0100_0001), &mut r)
            .unwrap();
        assert_eq!(d, NodeId(0b1000_0010));
    }

    #[test]
    fn bit_complement_involution() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        let d = Pattern::BitComplement.dest(&t, NodeId(0), &mut r).unwrap();
        assert_eq!(d, NodeId(255));
        assert_eq!(
            Pattern::BitComplement.dest(&t, d, &mut r).unwrap(),
            NodeId(0)
        );
    }

    #[test]
    fn hotspot_biases_towards_hot_node() {
        let t = KAryNCube::torus(4, 2, true);
        let mut r = rng();
        let pat = Pattern::HotSpot {
            hot: NodeId(5),
            fraction: 0.5,
        };
        let mut hot_hits = 0;
        let trials = 4000;
        for _ in 0..trials {
            if pat.dest(&t, NodeId(0), &mut r) == Some(NodeId(5)) {
                hot_hits += 1;
            }
        }
        // 50% directed + uniform residue also occasionally picks node 5.
        let frac = hot_hits as f64 / trials as f64;
        assert!(frac > 0.45 && frac < 0.62, "hot fraction was {frac}");
    }

    #[test]
    fn permutations_are_bijective_over_non_fixed_points() {
        let t = KAryNCube::torus(16, 2, true);
        let mut r = rng();
        for pat in [
            Pattern::BitReversal,
            Pattern::Transpose,
            Pattern::PerfectShuffle,
            Pattern::BitComplement,
        ] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..256u32 {
                if let Some(d) = pat.dest(&t, NodeId(s), &mut r) {
                    assert!(seen.insert(d), "{} not injective", pat.name());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_reversal_rejects_non_pow2() {
        let t = KAryNCube::torus(6, 2, true);
        let mut r = rng();
        let _ = Pattern::BitReversal.dest(&t, NodeId(1), &mut r);
    }
}
