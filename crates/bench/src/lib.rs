//! Shared helpers for the benchmark suite and the figure-regeneration
//! binary. See `src/bin/repro.rs` for the experiment harness.
