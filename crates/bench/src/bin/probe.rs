//! Diagnostic probe: drive one configuration and print per-epoch network
//! state (blocked, in-network, knots, delivered). Used to validate that
//! detected knots correspond to genuinely wedged networks.
//!
//! ```text
//! probe <depth> <load> <recover:0|1> [cycles]
//! ```

use flexsim::{build_wait_graph, RecoveryPolicy, RoutingSpec, RunConfig};
use icn_sim::Network;
use icn_topology::NodeId;
use icn_traffic::BernoulliInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let depth: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(32);
    let load: f64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(0.6);
    let recover: bool = args.get(2).map(|s| s == "1").unwrap_or(false);
    let cycles: u64 = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(5000);

    let mut cfg = RunConfig::small_default();
    cfg.routing = RoutingSpec::Tfar;
    cfg.sim.vcs_per_channel = 1;
    cfg.sim.buffer_depth = depth;
    cfg.load = load;
    cfg.recovery = if recover {
        RecoveryPolicy::RemoveOldest
    } else {
        RecoveryPolicy::None
    };

    let topo = cfg.topology.build();
    let mut net = Network::new(topo.clone(), cfg.routing.build(), cfg.sim);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let injector = BernoulliInjector::for_load(&topo, cfg.load, cfg.sim.msg_len);
    let mut delivered = 0u64;

    for cycle in 0..cycles {
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = cfg.pattern.dest(&topo, NodeId(node), &mut rng) {
                    net.enqueue(NodeId(node), dst);
                }
            }
        }
        let ev = net.step();
        delivered += ev.delivered.len() as u64;
        if net.cycle().is_multiple_of(cfg.detection_interval) {
            let snap = net.wait_snapshot();
            let graph = build_wait_graph(&snap);
            let analysis = graph.analyze(2000);
            let knots = analysis.deadlocks.len();
            let kmax = analysis
                .deadlocks
                .iter()
                .map(|d| d.deadlock_set.len())
                .max()
                .unwrap_or(0);
            if cycle % 500 < 50 || knots > 0 {
                println!(
                    "cyc {:>6}  in-net {:>4}  blocked {:>4}  queued {:>6}  delivered {:>6}  knots {knots} (max set {kmax})",
                    net.cycle(),
                    net.in_network(),
                    net.blocked_count(),
                    net.source_queued(),
                    delivered,
                );
            }
            if recover {
                for d in &analysis.deadlocks {
                    let v = *d.deadlock_set.iter().min().unwrap();
                    net.start_recovery(v);
                }
            }
        }
    }
    println!("final delivered={delivered}");
}
