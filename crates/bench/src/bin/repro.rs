//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro [fig5] [fig6] [fig7] [fig8] [degree] [traffic] [all] [--small] [--csv]
//! ```
//!
//! With no experiment named, runs `all`. `--small` switches to the
//! scaled-down configuration (8-ary 2-cube, short windows) used by the
//! integration tests; the default is the paper's setup (16-ary 2-cube,
//! 30,000 measured cycles — expect minutes of wall-clock). `--csv` also
//! emits machine-readable CSV after each table; `--json` writes
//! `repro_<id>.json` files next to the working directory.

use flexsim::experiments::{self, Scale};
use flexsim::sweep;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let scale = if small { Scale::Small } else { Scale::Paper };

    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "degree".into(),
            "traffic".into(),
            "ablate-interval".into(),
            "ablate-victim".into(),
            "ext-hypercube".into(),
            "ext-misroute".into(),
            "ext-hybrid".into(),
        ];
    }

    let mut available = experiments::all(scale);
    available.extend(flexsim::ablations::all(scale));
    available.extend(flexsim::extensions::all(scale));
    let mut pass_all = true;
    for id in &wanted {
        let Some(exp) = available.iter().find(|e| e.id == id) else {
            eprintln!(
                "unknown experiment `{id}` (have: fig5 fig6 fig7 fig8 degree traffic \
                 ablate-interval ablate-victim)"
            );
            std::process::exit(2);
        };
        let started = Instant::now();
        println!("== {} ==", exp.title);
        println!(
            "   {} simulation points, scale={scale:?}",
            exp.configs.len()
        );
        let results = sweep(&exp.configs);
        let table = experiments::results_table(&results);
        println!("{}", table.render());
        if csv {
            println!("{}", table.to_csv());
        }
        if json {
            let path = format!("repro_{}.json", exp.id);
            std::fs::write(&path, flexsim::json::sweep_to_json(&results))
                .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            println!("   wrote {path}");
        }
        println!("{}", experiments::figure_chart(exp, &results).render());
        println!("per-curve saturation / deadlock onset:");
        println!(
            "{}",
            experiments::saturation_summary(exp, &results).render()
        );
        println!("shape checks (paper claims vs measured):");
        let checks = if exp.id.starts_with("ext-") {
            flexsim::extensions::shape_checks(exp, &results)
        } else {
            experiments::shape_checks(exp, &results)
        };
        for c in checks {
            println!(
                "  [{}] {} ({})",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.detail
            );
            pass_all &= c.pass;
        }
        println!("   ({:.1?} elapsed)\n", started.elapsed());
    }
    if !pass_all {
        eprintln!("some shape checks failed");
        std::process::exit(1);
    }
}
