//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro [fig5] [fig6] [fig7] [fig8] [degree] [traffic] [all] [--small] [--csv]
//! repro forensics [--store DIR] [--seed N] [--max N] [--cycles N] [--no-prefix]
//! repro validate [--configs N] [--cwgs N] [--seed N] [--shards N] [--incremental] [--store DIR] [--no-explore]
//! repro faults [--seed N] [--expect-stall]
//! repro serve [--addr HOST:PORT] [--data DIR] [--workers N] [--smoke]
//!             [--port-file PATH] [--lease-ms N] [--scan-ms N]
//! repro chaos [--iterations N] [--workers N]
//! ```
//!
//! With no experiment named, runs `all`. `--small` switches to the
//! scaled-down configuration (8-ary 2-cube, short windows) used by the
//! integration tests; the default is the paper's setup (16-ary 2-cube,
//! 30,000 measured cycles — expect minutes of wall-clock). `--csv` also
//! emits machine-readable CSV after each table; `--json` writes
//! `repro_<id>.json` files next to the working directory.
//!
//! `repro forensics` runs a known-deadlocking micro-configuration (a
//! unidirectional 8-ary 2-cube under DOR, one VC, full load) with
//! incident capture enabled, then — for every captured deadlock — prints
//! the per-member formation timeline, replays the run to verify the
//! identical knot re-forms, minimizes the scenario (knot-induced sub-CWG
//! plus shortest reproducing cycle-prefix), and persists JSON + DOT
//! artifacts to the incident store. Exits non-zero if any incident fails
//! to replay or minimize, which makes it a self-checking smoke command.
//!
//! `repro faults` is the fault-injection smoke command: it builds a
//! seeded random fault plan (transient link outages, a permanent kill, a
//! router stall, an injector outage), runs it on the activity-driven
//! stepper, the dense reference stepper, and a replay, and exits
//! non-zero unless all three digests agree byte-for-byte and the run was
//! classified [`flexsim::RunOutcome::Faulted`]. With `--expect-stall` it
//! instead runs a deliberately wedged configuration (recovery disabled,
//! saturated single-VC torus) under the progress watchdog and exits 2 —
//! and only 2 — when the run ends as `Stalled` with a coherent stall
//! report, so CI can assert the watchdog actually fires.
//!
//! `repro serve` starts the campaign server (see `icn-server`): an HTTP
//! job API over the supervised sweep engine with per-job checkpoints, a
//! content-addressed result cache, and a read-only incident browser.
//! Any number of `repro serve` processes may share one `--data` dir —
//! they form a fleet arbitrated by per-config lease files, so a killed
//! member's work is reclaimed by the survivors. `--port-file` writes the
//! bound address (useful with an ephemeral `--addr ...:0`); `--lease-ms`
//! and `--scan-ms` tune the fleet's failure-detection latency. Ctrl-C
//! and `POST /shutdown` both take the graceful path — in-flight
//! configurations finish and checkpoint, queued ones resume on the next
//! start. With `--smoke` it instead runs a one-shot self-check against
//! an ephemeral port: submit a small grid, poll it to completion, verify
//! every streamed result digest-matches a direct `sweep_supervised` of
//! the same grid, resubmit and verify the whole job is answered from the
//! cache without a single new simulation, then spawn a *second server
//! process* on the same data dir and verify a third submission is served
//! entirely from the shared cache across the process boundary. Exits
//! non-zero on any divergence, which makes it CI-able without network
//! egress.
//!
//! `repro chaos` is the crash-tolerance harness: each iteration runs a
//! small grid on a two-process fleet sharing one data dir, SIGKILLs one
//! member mid-sweep (on odd iterations the replacement is started with a
//! rename-time crash injected into its durable cache writes, so it
//! aborts itself mid-sweep too), garbles the quiescent checkpoint tail
//! between lives, and asserts the survivors converge to results
//! digest-identical to a clean in-process `sweep_supervised` of the same
//! grid. Exits non-zero on the first divergence.
//!
//! `repro validate` runs the validation layer: the production detector
//! is differentially checked against the independent naive oracle and
//! the brute-force enumerator on randomized CWGs (`--cwgs`, default 512),
//! on every detection epoch of `--configs` (default 16) seeded random
//! live configurations (with full invariant auditing; `--shards N` runs
//! them on the sharded engine so the oracle audits that path;
//! `--incremental` repeats the campaign with every config forced through
//! the event-patched incremental detector), on freshly
//! captured forensics incidents, on every incident in `--store DIR` (if
//! given), and — unless `--no-explore` — on every schedule of the
//! exhaustive small-world explorer. Any disagreement exits non-zero and
//! writes a minimized reproducer to `validate-divergence.json`.

use flexsim::experiments::{self, Scale};
use flexsim::forensics::{minimize, replay, timeline_table, IncidentStore};
use flexsim::report::Table;
use flexsim::sweep;
use flexsim::{
    run, run_reference, ForensicsConfig, RecoveryPolicy, RoutingSpec, RunConfig, RunOutcome,
    TopologySpec,
};
use icn_metrics::Histogram;
use std::time::Instant;

/// Parses `--flag value` from the argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn hist_row(name: &str, h: &Histogram) -> Vec<String> {
    vec![
        name.to_string(),
        h.count().to_string(),
        format!("{:.1}", h.mean()),
        h.quantile(0.5).to_string(),
        h.quantile(0.95).to_string(),
        h.max().to_string(),
    ]
}

/// The `repro forensics` subcommand. Returns the process exit code.
fn forensics_main(args: &[String]) -> i32 {
    let store_dir = flag_value(args, "--store").unwrap_or("incidents");
    let with_prefix = !args.iter().any(|a| a == "--no-prefix");
    let parse_u64 = |flag: &str, default: u64| {
        flag_value(args, flag).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} wants an integer, got `{v}`");
                std::process::exit(2);
            })
        })
    };

    // The Figure-6 corner point scaled down: reliably knots within a few
    // hundred cycles and keeps every replay/minimization probe cheap.
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(8, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = parse_u64("--cycles", 1_600);
    cfg.seed = parse_u64("--seed", cfg.seed);
    cfg.forensics = Some(ForensicsConfig {
        max_incidents: parse_u64("--max", 8) as usize,
        ..ForensicsConfig::default()
    });

    println!("== deadlock forensics ==");
    println!("   config: {}", cfg.label());
    let started = Instant::now();
    let res = run(&cfg);
    println!(
        "   {} deadlock epochs, {} incidents captured ({:.1?} elapsed)",
        res.deadlocks,
        res.forensic_incidents.len(),
        started.elapsed()
    );
    if res.forensic_incidents.is_empty() {
        eprintln!("no deadlock captured — nothing to analyze");
        return 1;
    }

    let store = match IncidentStore::open(store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open incident store `{store_dir}`: {e}");
            return 1;
        }
    };

    let mut ok = true;
    for inc in &res.forensic_incidents {
        let sets = inc.deadlock_sets();
        println!(
            "\n-- incident #{} @ cycle {} --  knots={} members={} fingerprint={:#018x}",
            inc.seq,
            inc.cycle,
            sets.len(),
            inc.members().len(),
            inc.fingerprint
        );
        println!(
            "formation timeline (knot closed at cycle {}):",
            inc.closure_cycle()
        );
        println!("{}", timeline_table(inc).render());

        let rep = replay(inc);
        println!(
            "replay: fingerprint {} deadlock sets {}",
            if rep.fingerprint_match() {
                "MATCH"
            } else {
                "MISMATCH"
            },
            if rep.sets_match() {
                "MATCH"
            } else {
                "MISMATCH"
            },
        );
        ok &= rep.reproduced();

        let m = minimize(inc, with_prefix);
        println!(
            "minimize: CWG {} -> {} messages ({})",
            m.original_messages,
            m.kept_messages,
            if m.verified {
                "still knots identically"
            } else {
                "VERIFICATION FAILED"
            },
        );
        ok &= m.verified;
        if with_prefix {
            match m.shortest_prefix {
                Some(p) => println!(
                    "minimize: shortest reproducing prefix = {} cycles \
                     ({} probes, {} cycles shorter than detection)",
                    p.cycle, p.probes, p.saved_cycles
                ),
                None => {
                    println!("minimize: bisection failed to reproduce the knot");
                    ok = false;
                }
            }
        }

        match store.save(inc) {
            Ok((json_path, dot_path)) => {
                println!("wrote {} and {}", json_path.display(), dot_path.display());
            }
            Err(e) => {
                eprintln!("cannot persist incident #{}: {e}", inc.seq);
                ok = false;
            }
        }
    }

    let mut summary = Table::new(vec!["stat", "count", "mean", "p50", "p95", "max"]);
    summary.row(hist_row("formation latency", &res.formation_latency));
    summary.row(hist_row("formation spread", &res.formation_spread));
    println!("\nformation-time statistics (cycles):");
    println!("{}", summary.render());

    if !ok {
        eprintln!("some incidents failed replay or minimization");
        return 1;
    }
    0
}

/// Writes the minimized divergence reproducer and reports it.
fn emit_divergence(repro: &str) {
    const PATH: &str = "validate-divergence.json";
    match std::fs::write(PATH, repro) {
        Ok(()) => eprintln!("minimized reproducer written to {PATH}"),
        Err(e) => eprintln!("cannot write {PATH}: {e}"),
    }
}

/// The `repro validate` subcommand. Returns the process exit code.
fn validate_main(args: &[String]) -> i32 {
    use flexsim::validate as v;

    let parse_u64 = |flag: &str, default: u64| {
        flag_value(args, flag).map_or(default, |val| {
            val.parse().unwrap_or_else(|_| {
                eprintln!("{flag} wants an integer, got `{val}`");
                std::process::exit(2);
            })
        })
    };
    let num_cwgs = parse_u64("--cwgs", 512);
    let num_configs = parse_u64("--configs", 16) as usize;
    let base_seed = parse_u64("--seed", 0xdeadbeef);
    let shards = parse_u64("--shards", 1) as usize;
    let incremental = args.iter().any(|a| a == "--incremental");
    let explore = !args.iter().any(|a| a == "--no-explore");
    let started = Instant::now();
    let mut ok = true;

    // Stage 1: randomized CWG snapshots, two shapes (default and dense).
    println!("== validate: randomized CWG differential ==");
    let shapes = [
        ("default", v::GenParams::default()),
        (
            "dense",
            v::GenParams {
                num_vertices: 24,
                max_messages: 12,
                max_chain: 2,
                max_requests: 2,
                blocked_prob: 0.95,
                owned_bias: 0.95,
            },
        ),
    ];
    let mut checked = 0u64;
    let mut with_knots = 0u64;
    'cwgs: for (name, params) in &shapes {
        for i in 0..num_cwgs {
            let (n, msgs) = v::random_snapshot(base_seed ^ i, params);
            let diffs = v::check_messages(n, &msgs);
            checked += 1;
            if v::oracle_analyze(n, &msgs).has_deadlock() {
                with_knots += 1;
            }
            if !diffs.is_empty() {
                eprintln!(
                    "divergence on shape `{name}` seed {}: {diffs:?}",
                    base_seed ^ i
                );
                emit_divergence(&v::divergence_repro_json(n, &msgs));
                ok = false;
                break 'cwgs;
            }
        }
    }
    println!("   {checked} snapshots checked, {with_knots} with knots — all agree");

    // Stage 2: live campaign over seeded random configurations, each run
    // under the full invariant-auditing observer.
    if shards > 1 {
        println!(
            "== validate: live campaign over {num_configs} random configs (shards={shards}) =="
        );
    } else {
        println!("== validate: live campaign over {num_configs} random configs ==");
    }
    let campaign = v::campaign_with_shards(num_configs, base_seed, shards);
    println!(
        "   {} configs, {} epochs differentially checked, {} with knots",
        campaign.configs, campaign.epochs_checked, campaign.deadlock_epochs
    );
    for (label, violations, repro) in &campaign.failures {
        ok = false;
        eprintln!("config `{label}` FAILED:");
        for viol in violations {
            eprintln!("   {viol}");
        }
        if let Some(r) = repro {
            emit_divergence(r);
        }
    }

    // Stage 2b: the same campaign forced through the incremental
    // detector, auditing the event-patched CWG's every epoch.
    if incremental {
        println!(
            "== validate: incremental-detection campaign over {num_configs} random configs =="
        );
        let campaign = v::campaign_incremental(num_configs, base_seed);
        println!(
            "   {} configs, {} epochs differentially checked, {} with knots",
            campaign.configs, campaign.epochs_checked, campaign.deadlock_epochs
        );
        for (label, violations, repro) in &campaign.failures {
            ok = false;
            eprintln!("incremental config `{label}` FAILED:");
            for viol in violations {
                eprintln!("   {viol}");
            }
            if let Some(r) = repro {
                emit_divergence(r);
            }
        }
    }

    // Stage 3: fresh forensics incidents re-audited by the oracle.
    println!("== validate: fresh forensics incidents ==");
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(8, 2, false);
    cfg.routing = RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = 800;
    cfg.forensics = Some(ForensicsConfig::default());
    let res = run(&cfg);
    println!("   {} incidents captured", res.forensic_incidents.len());
    if res.forensic_incidents.is_empty() {
        eprintln!("no incident captured from the known-deadlocking config");
        ok = false;
    }
    for inc in &res.forensic_incidents {
        let problems = v::check_incident(inc);
        if !problems.is_empty() {
            ok = false;
            eprintln!("incident #{} @ cycle {} FAILED:", inc.seq, inc.cycle);
            for p in &problems {
                eprintln!("   {p}");
            }
        }
    }

    // Stage 4: stored incidents, when a store directory is given.
    if let Some(dir) = flag_value(args, "--store") {
        println!("== validate: incident store `{dir}` ==");
        match v::check_incident_store(dir) {
            Ok(failures) if failures.is_empty() => println!("   all stored incidents agree"),
            Ok(failures) => {
                ok = false;
                for (file, problems) in failures {
                    eprintln!("stored incident `{file}` FAILED: {problems:?}");
                }
            }
            Err(e) => {
                ok = false;
                eprintln!("cannot read incident store `{dir}`: {e}");
            }
        }
    }

    // Stage 5: exhaustive small worlds.
    if explore {
        println!("== validate: exhaustive small-world explorer ==");
        for cfg in [
            v::ExploreConfig::uni_ring_3(),
            v::ExploreConfig::cube_2x2_tfar(),
        ] {
            let report = v::explore(&cfg);
            println!(
                "   {}ary{} {:?}: {} schedules, {} cycle audits, {} deadlocked",
                cfg.k,
                cfg.n,
                cfg.routing,
                report.schedules,
                report.cycles_checked,
                report.deadlocked
            );
            for (schedule, d) in report.divergences.iter().take(5) {
                ok = false;
                eprintln!("   schedule {schedule}: {d}");
            }
        }
    }

    println!(
        "validate: {} ({:.1?} elapsed)",
        if ok { "PASS" } else { "FAIL" },
        started.elapsed()
    );
    if ok {
        0
    } else {
        1
    }
}

/// The `repro faults` subcommand. Returns the process exit code:
/// 0 on success, 1 on any determinism or classification failure, and —
/// under `--expect-stall` — exactly 2 when the watchdog fired as
/// expected.
fn faults_main(args: &[String]) -> i32 {
    let seed = flag_value(args, "--seed").map_or(0xfa17_5eed, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--seed wants an integer, got `{v}`");
            std::process::exit(2);
        })
    });

    if args.iter().any(|a| a == "--expect-stall") {
        // A saturated single-VC unidirectional torus under TFAR with
        // recovery disabled wedges permanently once the first knot forms;
        // the watchdog must cut it instead of burning the full horizon.
        let mut cfg = RunConfig::small_default();
        cfg.topology = TopologySpec::torus(4, 2, false);
        cfg.routing = RoutingSpec::Tfar;
        cfg.sim.vcs_per_channel = 1;
        cfg.load = 1.1;
        cfg.recovery = RecoveryPolicy::None;
        cfg.warmup = 500;
        cfg.measure = 100_000;
        cfg.stall_threshold = Some(300);
        cfg.seed = seed;

        println!("== fault smoke: forced stall ==");
        println!("   config: {} (recovery disabled)", cfg.label());
        let started = Instant::now();
        let res = run(&cfg);
        println!(
            "   outcome: {} ({:.1?} elapsed)",
            res.outcome.name(),
            started.elapsed()
        );
        if res.outcome != RunOutcome::Stalled {
            eprintln!(
                "expected the watchdog to fire, run ended {}",
                res.outcome.name()
            );
            return 1;
        }
        let Some(st) = res.stall else {
            eprintln!("Stalled outcome without a stall report");
            return 1;
        };
        println!(
            "   stall report: cut at cycle {} (last progress {}), \
             {} messages in network, {} blocked, {} source-queued",
            st.cycle, st.last_progress_cycle, st.in_network, st.blocked, st.source_queued
        );
        if st.cycle >= cfg.warmup + cfg.measure {
            eprintln!("watchdog fired only at the horizon — it saved nothing");
            return 1;
        }
        return 2;
    }

    // A seeded random fault plan on a small torus: transient outages, a
    // permanent kill, a router stall, an injector outage. The run must be
    // byte-identical on the activity stepper, the dense reference
    // stepper, and a replay, and classify as `Faulted`.
    let mut cfg = RunConfig::small_default();
    cfg.topology = TopologySpec::torus(4, 2, true);
    cfg.routing = RoutingSpec::Tfar;
    cfg.sim.vcs_per_channel = 2;
    cfg.load = 0.8;
    cfg.warmup = 200;
    cfg.measure = 1_800;
    cfg.stall_threshold = Some(1_000);
    cfg.seed = seed;
    cfg.faults = flexsim::faults::random_plan(&cfg.topology, cfg.warmup + cfg.measure, seed);

    println!("== fault smoke: injected run ==");
    println!("   config: {}", cfg.label());
    println!(
        "   routing {} fault-aware (routes_around_faults={})",
        cfg.routing.name(),
        cfg.routing.build().routes_around_faults()
    );
    for e in &cfg.faults.events {
        println!("   fault @ cycle {:>5}: {:?}", e.cycle, e.kind);
    }

    let started = Instant::now();
    let act = run(&cfg);
    let dense = run_reference(&cfg);
    let replayed = run(&cfg);
    println!(
        "   outcome: {}  fault losses: {}  source rejections: {}  ({:.1?} elapsed)",
        act.outcome.name(),
        act.fault_losses,
        act.fault_rejected,
        started.elapsed()
    );

    let mut ok = true;
    if act.digest() != dense.digest() {
        eprintln!("DIGEST MISMATCH between activity and dense steppers");
        eprintln!("   activity: {}", act.digest());
        eprintln!("   dense:    {}", dense.digest());
        ok = false;
    }
    if act.digest() != replayed.digest() {
        eprintln!("DIGEST MISMATCH between run and replay");
        ok = false;
    }
    if ok {
        println!("   digests agree across activity stepper, dense stepper, replay");
    }
    if act.outcome != RunOutcome::Faulted {
        eprintln!(
            "expected a Faulted classification, got {} — the plan never bit",
            act.outcome.name()
        );
        ok = false;
    }
    if ok {
        0
    } else {
        1
    }
}

/// The grid used by `repro serve --smoke`: 2 loads × 2 seeds on the
/// scaled-down torus, small enough to finish in seconds.
fn smoke_grid() -> icn_server::SweepGrid {
    let mut base = RunConfig::small_default();
    base.warmup = 200;
    base.measure = 600;
    icn_server::SweepGrid {
        base,
        seeds: vec![11, 12],
        loads: vec![0.15, 0.25],
        timeout_ms: None,
    }
}

/// Spawns a sibling `repro serve` process on `dir` with an ephemeral
/// port (published through `<dir>/<tag>.port`) and fleet knobs tightened
/// for fast failure detection. Returns the child and its port file.
fn spawn_serve(
    dir: &std::path::Path,
    tag: &str,
    workers: usize,
    crash_plan: Option<&str>,
) -> Result<(std::process::Child, std::path::PathBuf), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let port_file = dir.join(format!("{tag}.port"));
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--data"])
        .arg(dir)
        .args([
            "--workers",
            &workers.to_string(),
            "--lease-ms",
            "1500",
            "--scan-ms",
            "120",
            "--port-file",
        ])
        .arg(&port_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(plan) = crash_plan {
        cmd.env("ICN_DURABLE_CRASH", plan);
    }
    cmd.spawn()
        .map(|child| (child, port_file))
        .map_err(|e| format!("spawning {tag}: {e}"))
}

/// Polls a sibling's port file until it holds a bindable address.
fn wait_addr(
    child: &mut std::process::Child,
    port_file: &std::path::Path,
    timeout: std::time::Duration,
) -> Result<std::net::SocketAddr, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(addr) = text.trim().parse() {
                return Ok(addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("sibling server exited before binding: {status}"));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "sibling server never published {}",
                port_file.display()
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Waits for a child to exit on its own (e.g. by injected crash).
fn wait_exit(child: &mut std::process::Child, timeout: std::time::Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return Ok(()),
            Ok(None) if Instant::now() > deadline => {
                return Err("injected crash never fired".to_string())
            }
            Ok(None) => std::thread::sleep(std::time::Duration::from_millis(20)),
            Err(e) => return Err(format!("waiting for sibling: {e}")),
        }
    }
}

/// Submits `grid` to a server and returns the job id.
fn submit_grid(addr: std::net::SocketAddr, grid: &icn_server::SweepGrid) -> Result<u64, String> {
    let (status, body) =
        icn_server::http_request(addr, "POST", "/jobs", Some(&grid.to_json().to_string()))
            .map_err(|e| format!("submit: {e}"))?;
    if status != 200 {
        return Err(format!("submit returned HTTP {status}: {body}"));
    }
    flexsim::jsonio::parse(&body)
        .ok()
        .and_then(|v| v.get("id").and_then(flexsim::jsonio::Json::as_u64))
        .ok_or_else(|| format!("submit body lacks an id: {body}"))
}

/// Fetches `/jobs/:id/results` and returns the per-slot digests.
fn fetch_digests(addr: std::net::SocketAddr, id: u64, n: usize) -> Result<Vec<String>, String> {
    use flexsim::jsonio::Json;
    let (status, stream) =
        icn_server::http_request(addr, "GET", &format!("/jobs/{id}/results"), None)
            .map_err(|e| format!("results: {e}"))?;
    if status != 200 {
        return Err(format!("results returned HTTP {status}"));
    }
    let mut got = vec![String::new(); n];
    for line in stream.lines().filter(|l| !l.trim().is_empty()) {
        let v = flexsim::jsonio::parse(line).map_err(|e| format!("bad result line: {e}"))?;
        let idx = v
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("result line lacks an index")? as usize;
        let r = v
            .get("result")
            .ok_or("result line lacks a result")
            .and_then(|r| flexsim::decode_result(r).map_err(|_| "undecodable result"))?;
        if idx < n {
            got[idx] = r.digest();
        }
    }
    Ok(got)
}

/// Polls `GET /jobs/:id` until the job settles. Returns the final status
/// JSON, or an error string on timeout or transport failure.
fn poll_job(
    addr: std::net::SocketAddr,
    id: u64,
    timeout: std::time::Duration,
) -> Result<flexsim::jsonio::Json, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = icn_server::http_request(addr, "GET", &format!("/jobs/{id}"), None)
            .map_err(|e| format!("polling job {id}: {e}"))?;
        if status != 200 {
            return Err(format!("job {id} status returned HTTP {status}: {body}"));
        }
        let v = flexsim::jsonio::parse(&body).map_err(|e| format!("bad status JSON: {e}"))?;
        if v.get("state").and_then(flexsim::jsonio::Json::as_str) == Some("done") {
            return Ok(v);
        }
        if Instant::now() > deadline {
            return Err(format!("job {id} did not settle in {timeout:?}: {body}"));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// The `--smoke` self-check body. Returns an error description on the
/// first divergence.
fn serve_smoke(data_dir: &std::path::Path, workers: usize) -> Result<(), String> {
    use flexsim::jsonio::Json;

    let grid = smoke_grid();
    let configs = grid.expand();
    println!(
        "== campaign smoke: direct sweep of {} configs ==",
        configs.len()
    );
    let direct = flexsim::sweep_supervised(&configs, &flexsim::SweepOptions::default());
    let want: Vec<String> = direct
        .iter()
        .map(|r| r.as_ref().map(|x| x.digest()).unwrap_or_default())
        .collect();

    let mut opts = icn_server::ServerOptions::new(data_dir);
    opts.workers = workers;
    let server =
        icn_server::CampaignServer::bind("127.0.0.1:0", &opts).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    println!("== campaign smoke: server on {addr} ==");
    let handle = std::thread::spawn(move || server.serve());

    let submit = |tag: &str| -> Result<u64, String> {
        let (status, body) =
            icn_server::http_request(addr, "POST", "/jobs", Some(&grid.to_json().to_string()))
                .map_err(|e| format!("{tag} submit: {e}"))?;
        if status != 200 {
            return Err(format!("{tag} submit returned HTTP {status}: {body}"));
        }
        flexsim::jsonio::parse(&body)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_u64))
            .ok_or_else(|| format!("{tag} submit body lacks an id: {body}"))
    };
    let finish = |r: Result<(), String>| -> Result<(), String> {
        // Always take the graceful path so the worker threads exit.
        let _ = icn_server::http_request(addr, "POST", "/shutdown", None);
        let joined = handle
            .join()
            .map_err(|_| "server thread panicked".to_string());
        r.and_then(|()| joined.and_then(|io| io.map_err(|e| format!("serve: {e}"))))
    };

    let check = (|| -> Result<(), String> {
        // Round 1: fresh submission must simulate everything and match
        // the direct sweep digest-for-digest.
        let id = submit("first")?;
        poll_job(addr, id, std::time::Duration::from_secs(300))?;
        let got = fetch_digests(addr, id, configs.len())?;
        if got != want {
            return Err(format!(
                "digest mismatch vs direct sweep_supervised:\n  server: {got:?}\n  direct: {want:?}"
            ));
        }
        println!(
            "   {} results digest-identical to the direct sweep",
            got.len()
        );

        // Round 2: identical resubmission must be answered entirely from
        // the cache — zero new simulations.
        let sims_before = stats_path(addr, &["sims_run"])?;
        let id2 = submit("second")?;
        let status2 = poll_job(addr, id2, std::time::Duration::from_secs(60))?;
        let cached = status2.get("cached").and_then(Json::as_u64).unwrap_or(0);
        let sims_after = stats_path(addr, &["sims_run"])?;
        if sims_after != sims_before {
            return Err(format!(
                "resubmission ran {} new simulations (want 0)",
                sims_after - sims_before
            ));
        }
        if cached != configs.len() as u64 {
            return Err(format!(
                "resubmission reported {cached} cached slots (want {})",
                configs.len()
            ));
        }
        println!("   resubmission: {cached} cache hits, 0 new simulations");

        // Round 3: a second server *process* joins the same data dir and
        // takes a third identical submission — the content-addressed
        // cache written by this process must answer across the process
        // boundary, still without a single new simulation anywhere in
        // the fleet.
        let (mut sibling, port_file) = spawn_serve(data_dir, "smoke-sibling", 2, None)?;
        let round3 = (|| -> Result<(), String> {
            let addr2 = wait_addr(&mut sibling, &port_file, std::time::Duration::from_secs(30))?;
            let id3 = submit_grid(addr2, &grid)?;
            poll_job(addr2, id3, std::time::Duration::from_secs(60))?;
            let got3 = fetch_digests(addr2, id3, configs.len())?;
            if got3 != want {
                return Err(format!(
                    "second process served divergent digests:\n  fleet: {got3:?}\n  direct: {want:?}"
                ));
            }
            // /stats is per-process; either member may have answered any
            // slot (both scan the shared job), so the invariants are on
            // the fleet-wide sums.
            let sims = stats_path(addr, &["sims_run"])? + stats_path(addr2, &["sims_run"])?;
            if sims != configs.len() as u64 {
                return Err(format!(
                    "fleet ran {sims} total simulations (want {} — the third \
                     submission must be pure cache hits)",
                    configs.len()
                ));
            }
            let hits =
                stats_path(addr, &["cache", "hits"])? + stats_path(addr2, &["cache", "hits"])?;
            if hits < 2 * configs.len() as u64 {
                return Err(format!(
                    "fleet reports {hits} cache hits (want at least {})",
                    2 * configs.len()
                ));
            }
            let (st, _) = icn_server::http_request(addr2, "POST", "/shutdown", None)
                .map_err(|e| format!("sibling shutdown: {e}"))?;
            if st != 200 {
                return Err(format!("sibling shutdown returned HTTP {st}"));
            }
            Ok(())
        })();
        if round3.is_err() {
            let _ = sibling.kill();
        }
        let _ = sibling.wait();
        round3?;
        println!("   second process: cross-process cache hits, 0 new simulations");
        Ok(())
    })();
    finish(check)
}

/// Reads one `u64` leaf out of `GET /stats` by key path.
fn stats_path(addr: std::net::SocketAddr, path: &[&str]) -> Result<u64, String> {
    let (status, body) =
        icn_server::http_request(addr, "GET", "/stats", None).map_err(|e| format!("stats: {e}"))?;
    if status != 200 {
        return Err(format!("stats returned HTTP {status}"));
    }
    let v = flexsim::jsonio::parse(&body).map_err(|e| format!("bad stats JSON: {e}"))?;
    let mut cur = &v;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("stats body lacks `{}`: {body}", path.join(".")))?;
    }
    cur.as_u64()
        .ok_or_else(|| format!("stats `{}` is not a u64: {body}", path.join(".")))
}

/// The grid used by `repro chaos`: 3 loads × 3 seeds, wide enough that a
/// kill reliably lands mid-sweep.
fn chaos_grid() -> icn_server::SweepGrid {
    let mut base = RunConfig::small_default();
    base.warmup = 200;
    base.measure = 600;
    icn_server::SweepGrid {
        base,
        seeds: vec![31, 32, 33],
        loads: vec![0.15, 0.2, 0.25],
        timeout_ms: None,
    }
}

/// Counts the newline-terminated, non-empty checkpoint lines (the torn
/// tail, if any, is excluded).
fn full_line_count(ckpt: &std::path::Path) -> usize {
    let Ok(text) = std::fs::read_to_string(ckpt) else {
        return 0;
    };
    let Some(end) = text.rfind('\n') else {
        return 0;
    };
    text[..=end]
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Waits until the checkpoint holds at least `want` full lines.
fn wait_lines(
    ckpt: &std::path::Path,
    want: usize,
    timeout: std::time::Duration,
) -> Result<usize, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let have = full_line_count(ckpt);
        if have >= want {
            return Ok(have);
        }
        if Instant::now() > deadline {
            return Err(format!(
                "checkpoint never reached {want} records (have {have})"
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Flips one byte in the middle of the last full checkpoint record —
/// corruption at rest that the CRC framing must detect (quarantine the
/// line, re-run the slot).
fn garble_last_record(ckpt: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(ckpt).map_err(|e| format!("reading checkpoint: {e}"))?;
    let end = text
        .rfind('\n')
        .ok_or("checkpoint has no full line to garble")?;
    let start = text[..end].rfind('\n').map(|i| i + 1).unwrap_or(0);
    if end <= start {
        return Err("last checkpoint line is empty".to_string());
    }
    let mut bytes = text.into_bytes();
    bytes[start + (end - start) / 2] ^= 0x01;
    std::fs::write(ckpt, bytes).map_err(|e| format!("garbling checkpoint: {e}"))
}

/// Appends an unterminated framed fragment — the exact signature of a
/// writer killed mid-append. Recovery must detect the torn tail and seal
/// it with a guard newline.
fn append_torn_fragment(ckpt: &std::path::Path) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(ckpt)
        .map_err(|e| format!("opening checkpoint: {e}"))?;
    f.write_all(b"~2a:00000000:{\"index\":99,\"resul")
        .map_err(|e| format!("tearing checkpoint tail: {e}"))
}

/// One chaos iteration. Returns a one-line summary on success.
fn chaos_iteration(
    iter: usize,
    dir: &std::path::Path,
    grid: &icn_server::SweepGrid,
    want: &[String],
    workers: usize,
) -> Result<String, String> {
    use flexsim::jsonio::Json;
    use std::time::Duration;

    // Life 1: one fleet member alone, pinned to a single worker so the
    // injected crash point is deterministic — with two workers the
    // second store's abort-at-rename can land before the first worker's
    // checkpoint append, leaving zero durable records. Odd iterations
    // die by a rename-time crash injected into the durable cache writes
    // (the process aborts itself mid-sweep); even iterations are
    // SIGKILLed from outside once the first checkpoint record lands.
    let crash = (iter % 2 == 1).then_some("cache/:2");
    let (mut w1, pf1) = spawn_serve(dir, "w1", 1, crash)?;
    let life1 = (|| -> Result<u64, String> {
        let addr1 = wait_addr(&mut w1, &pf1, Duration::from_secs(30))?;
        let id = submit_grid(addr1, grid)?;
        let ckpt = dir.join("jobs").join(format!("job-{id}.ckpt.jsonl"));
        wait_lines(&ckpt, 1, Duration::from_secs(120))?;
        if crash.is_some() {
            wait_exit(&mut w1, Duration::from_secs(120))?;
        } else {
            let _ = w1.kill();
        }
        Ok(id)
    })();
    let _ = w1.kill();
    let _ = w1.wait();
    let id = life1?;

    // Quiescent tampering: garble the last durable record and tear the
    // tail the way a writer killed mid-append would.
    let ckpt = dir.join("jobs").join(format!("job-{id}.ckpt.jsonl"));
    garble_last_record(&ckpt)?;
    append_torn_fragment(&ckpt)?;
    // Recovery seals the torn fragment into one (garbage) full line, so
    // real progress in life 2 starts past `baseline + 1`.
    let baseline = full_line_count(&ckpt);

    // Life 2: two members race to finish the job; one is SIGKILLed as
    // soon as the fleet makes progress, and the survivor converges.
    let (mut w2, pf2) = spawn_serve(dir, "w2", workers, None)?;
    let (mut w3, pf3) = spawn_serve(dir, "w3", workers, None)?;
    let verdict = (|| -> Result<String, String> {
        wait_addr(&mut w2, &pf2, Duration::from_secs(30))?;
        let addr3 = wait_addr(&mut w3, &pf3, Duration::from_secs(30))?;
        let _ = wait_lines(&ckpt, baseline + 2, Duration::from_secs(120));
        let _ = w2.kill();
        let _ = w2.wait();
        let status = poll_job(addr3, id, Duration::from_secs(300))?;
        let got = fetch_digests(addr3, id, want.len())?;
        if got != want {
            return Err(format!(
                "digest mismatch after chaos:\n  fleet: {got:?}\n  direct: {want:?}"
            ));
        }
        // The loss accounting must be surfaced in the job status, and
        // the garbled record must have been detected.
        let ckrep = status
            .get("checkpoint")
            .ok_or("status lacks checkpoint accounting")?;
        let corrupt = ckrep
            .get("corrupt_frames")
            .and_then(Json::as_u64)
            .ok_or("status lacks checkpoint.corrupt_frames")?;
        if corrupt == 0 {
            return Err("the garbled record went undetected".to_string());
        }
        let reclaimed = status
            .get("reclaimed_leases")
            .and_then(Json::as_u64)
            .ok_or("status lacks reclaimed_leases")?;
        let _ = icn_server::http_request(addr3, "POST", "/shutdown", None);
        Ok(format!(
            "corrupt_frames={corrupt} reclaimed_leases={reclaimed}"
        ))
    })();
    let _ = w2.kill();
    let _ = w2.wait();
    if verdict.is_err() {
        let _ = w3.kill();
    }
    let _ = w3.wait();
    verdict
}

/// The `repro chaos` subcommand. Returns the process exit code.
fn chaos_main(args: &[String]) -> i32 {
    let iterations: usize = flag_value(args, "--iterations").map_or(3, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--iterations wants an integer, got `{v}`");
            std::process::exit(2);
        })
    });
    let workers: usize = flag_value(args, "--workers").map_or(2, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--workers wants an integer, got `{v}`");
            std::process::exit(2);
        })
    });

    let grid = chaos_grid();
    let configs = grid.expand();
    println!("== chaos: direct sweep of {} configs ==", configs.len());
    let direct = flexsim::sweep_supervised(&configs, &flexsim::SweepOptions::default());
    let want: Vec<String> = direct
        .iter()
        .map(|r| r.as_ref().map(|x| x.digest()).unwrap_or_default())
        .collect();

    let root = std::env::temp_dir().join(format!("campaign-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut failures = 0usize;
    for iter in 0..iterations {
        let dir = root.join(format!("iter-{iter}"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return 1;
        }
        match chaos_iteration(iter, &dir, &grid, &want, workers) {
            Ok(summary) => println!("== chaos iteration {iter}: PASS ({summary}) =="),
            Err(e) => {
                eprintln!("== chaos iteration {iter}: FAIL — {e} ==");
                failures += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    if failures == 0 {
        println!("chaos: PASS ({iterations} iterations)");
        0
    } else {
        eprintln!("chaos: FAIL ({failures}/{iterations} iterations)");
        1
    }
}

/// The `repro serve` subcommand. Returns the process exit code.
fn serve_main(args: &[String]) -> i32 {
    let workers = flag_value(args, "--workers").map_or_else(
        || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        },
        |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--workers wants an integer, got `{v}`");
                std::process::exit(2);
            })
        },
    );

    if args.iter().any(|a| a == "--smoke") {
        let dir = std::env::temp_dir().join(format!("campaign-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let verdict = serve_smoke(&dir, workers.min(4));
        let _ = std::fs::remove_dir_all(&dir);
        return match verdict {
            Ok(()) => {
                println!("campaign smoke: PASS");
                0
            }
            Err(e) => {
                eprintln!("campaign smoke: FAIL — {e}");
                1
            }
        };
    }

    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:8991");
    let data = flag_value(args, "--data").unwrap_or("campaign-data");
    let mut opts = icn_server::ServerOptions::new(data);
    opts.workers = workers;
    opts.handle_sigint = true;
    if let Some(ms) = flag_value(args, "--lease-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => opts.lease_expiry = std::time::Duration::from_millis(ms),
            _ => {
                eprintln!("--lease-ms wants a positive integer, got `{ms}`");
                return 2;
            }
        }
    }
    if let Some(ms) = flag_value(args, "--scan-ms") {
        match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => opts.scan_interval = std::time::Duration::from_millis(ms),
            _ => {
                eprintln!("--scan-ms wants a positive integer, got `{ms}`");
                return 2;
            }
        }
    }
    let server = match icn_server::CampaignServer::bind(addr, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind campaign server on {addr}: {e}");
            return 1;
        }
    };
    if let Some(path) = flag_value(args, "--port-file") {
        // Atomic write: a parent polling the file never reads a torn
        // address.
        if let Err(e) = flexsim::jsonio::durable::write_atomic(
            std::path::Path::new(path),
            server.addr().to_string().as_bytes(),
        ) {
            eprintln!("cannot write --port-file {path}: {e}");
            return 1;
        }
    }
    println!(
        "campaign server on http://{} ({} workers, data in `{data}`)",
        server.addr(),
        workers
    );
    println!("endpoints: POST /jobs  GET /jobs/:id[/results]  POST /jobs/:id/cancel  GET /stats  GET /incidents  POST /shutdown");
    match server.serve() {
        Ok(()) => {
            println!("campaign server: clean shutdown");
            0
        }
        Err(e) => {
            eprintln!("campaign server failed: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("forensics") {
        std::process::exit(forensics_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(serve_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(chaos_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("faults") {
        std::process::exit(faults_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("validate") {
        std::process::exit(validate_main(&args[1..]));
    }
    let small = args.iter().any(|a| a == "--small");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    let scale = if small { Scale::Small } else { Scale::Paper };

    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "degree".into(),
            "traffic".into(),
            "ablate-interval".into(),
            "ablate-victim".into(),
            "ext-hypercube".into(),
            "ext-misroute".into(),
            "ext-hybrid".into(),
        ];
    }

    let mut available = experiments::all(scale);
    available.extend(flexsim::ablations::all(scale));
    available.extend(flexsim::extensions::all(scale));
    let mut pass_all = true;
    for id in &wanted {
        let Some(exp) = available.iter().find(|e| e.id == id) else {
            eprintln!(
                "unknown experiment `{id}` (have: fig5 fig6 fig7 fig8 degree traffic \
                 ablate-interval ablate-victim)"
            );
            std::process::exit(2);
        };
        let started = Instant::now();
        println!("== {} ==", exp.title);
        println!(
            "   {} simulation points, scale={scale:?}",
            exp.configs.len()
        );
        let results = sweep(&exp.configs);
        let table = experiments::results_table(&results);
        println!("{}", table.render());
        if csv {
            println!("{}", table.to_csv());
        }
        if json {
            let path = format!("repro_{}.json", exp.id);
            std::fs::write(&path, flexsim::json::sweep_to_json(&results))
                .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            println!("   wrote {path}");
        }
        println!("{}", experiments::figure_chart(exp, &results).render());
        println!("per-curve saturation / deadlock onset:");
        println!(
            "{}",
            experiments::saturation_summary(exp, &results).render()
        );
        println!("shape checks (paper claims vs measured):");
        let checks = if exp.id.starts_with("ext-") {
            flexsim::extensions::shape_checks(exp, &results)
        } else {
            experiments::shape_checks(exp, &results)
        };
        for c in checks {
            println!(
                "  [{}] {} ({})",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.detail
            );
            pass_all &= c.pass;
        }
        println!("   ({:.1?} elapsed)\n", started.elapsed());
    }
    if !pass_all {
        eprintln!("some shape checks failed");
        std::process::exit(1);
    }
}
