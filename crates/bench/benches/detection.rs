//! Deadlock-detection cost: snapshot extraction, CWG construction, and
//! knot analysis on networks at increasing congestion — the price paid
//! every 50 cycles by a recovery-based router's "watchdog".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use flexsim::build_wait_graph;
use icn_cwg::{DetectorScratch, WaitGraph};
use icn_routing::Tfar;
use icn_sim::{Network, SimConfig, SnapshotArena};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The runner's in-place per-epoch rebuild, over the public API.
fn rebuild_wait_graph(arena: &SnapshotArena, g: &mut WaitGraph) {
    g.reset(arena.num_vertices());
    for m in arena.messages() {
        g.add_chain(m.id, m.chain);
    }
    for m in arena.messages() {
        if !m.requests.is_empty() {
            g.add_requests(m.id, m.requests);
        }
    }
}

/// Drives a TFAR1 torus to the requested load for a while and returns it.
fn congested_network(load: f64) -> Network {
    let topo = KAryNCube::torus(8, 2, true);
    let injector = BernoulliInjector::for_load(&topo, load, 32);
    let mut net = Network::new(
        topo.clone(),
        Box::new(Tfar),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 32,
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3_000u32 {
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = Pattern::Uniform.dest(&topo, NodeId(node), &mut rng) {
                    net.enqueue(NodeId(node), dst);
                }
            }
        }
        net.step();
    }
    net
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &load in &[0.1, 0.5, 1.0] {
        let net = congested_network(load);
        g.bench_with_input(
            BenchmarkId::new("snapshot", format!("load{load}")),
            &net,
            |b, net| b.iter(|| net.wait_snapshot()),
        );
        g.bench_with_input(
            BenchmarkId::new("snapshot_into", format!("load{load}")),
            &net,
            |b, net| {
                let mut arena = SnapshotArena::new();
                b.iter(|| {
                    net.wait_snapshot_into(&mut arena);
                    black_box(arena.fingerprint())
                })
            },
        );
        let snap = net.wait_snapshot();
        g.bench_with_input(
            BenchmarkId::new("build_graph", format!("load{load}")),
            &snap,
            |b, snap| b.iter(|| build_wait_graph(snap)),
        );
        let graph = build_wait_graph(&snap);
        g.bench_with_input(
            BenchmarkId::new("analyze_knots", format!("load{load}")),
            &graph,
            |b, graph| b.iter(|| graph.analyze(2_000)),
        );
    }
    g.finish();
}

/// The full steady-state detection epoch (snapshot → graph → knot
/// analysis) on a saturated TFAR1 torus — the cost paid every 50 cycles.
///
/// `fresh_alloc` is the pre-arena path (allocate snapshot, graph, and
/// scratch per epoch); `arena_reuse` is the runner's hot path; and
/// `fingerprint_skip` is what a steady clean epoch costs once the verdict
/// is carried over (snapshot fill + hash compare only).
fn bench_hot_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_epoch");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));

    let net = congested_network(1.0);

    g.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            let snap = net.wait_snapshot();
            let graph = build_wait_graph(&snap);
            black_box(graph.analyze(2_000))
        })
    });

    g.bench_function("arena_reuse", |b| {
        let mut arena = SnapshotArena::new();
        let mut graph = WaitGraph::new(0);
        let mut scratch = DetectorScratch::new();
        b.iter(|| {
            net.wait_snapshot_into(&mut arena);
            rebuild_wait_graph(&arena, &mut graph);
            black_box(graph.analyze_with(2_000, &mut scratch))
        })
    });

    g.bench_function("fingerprint_skip", |b| {
        let mut arena = SnapshotArena::new();
        net.wait_snapshot_into(&mut arena);
        let clean = arena.fingerprint();
        b.iter(|| {
            net.wait_snapshot_into(&mut arena);
            black_box(arena.fingerprint() == clean)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_detection, bench_hot_epoch);
criterion_main!(benches);
