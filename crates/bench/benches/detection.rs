//! Deadlock-detection cost: snapshot extraction, CWG construction, and
//! knot analysis on networks at increasing congestion — the price paid
//! every 50 cycles by a recovery-based router's "watchdog".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexsim::build_wait_graph;
use icn_routing::Tfar;
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives a TFAR1 torus to the requested load for a while and returns it.
fn congested_network(load: f64) -> Network {
    let topo = KAryNCube::torus(8, 2, true);
    let injector = BernoulliInjector::for_load(&topo, load, 32);
    let mut net = Network::new(
        topo.clone(),
        Box::new(Tfar),
        SimConfig {
            vcs_per_channel: 1,
            buffer_depth: 2,
            msg_len: 32,
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3_000u32 {
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = Pattern::Uniform.dest(&topo, NodeId(node), &mut rng) {
                    net.enqueue(NodeId(node), dst);
                }
            }
        }
        net.step();
    }
    net
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &load in &[0.1, 0.5, 1.0] {
        let net = congested_network(load);
        g.bench_with_input(
            BenchmarkId::new("snapshot", format!("load{load}")),
            &net,
            |b, net| b.iter(|| net.wait_snapshot()),
        );
        let snap = net.wait_snapshot();
        g.bench_with_input(
            BenchmarkId::new("build_graph", format!("load{load}")),
            &snap,
            |b, snap| b.iter(|| build_wait_graph(snap)),
        );
        let graph = build_wait_graph(&snap);
        g.bench_with_input(
            BenchmarkId::new("analyze_knots", format!("load{load}")),
            &graph,
            |b, graph| b.iter(|| graph.analyze(2_000)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
