//! Elementary-cycle enumeration cost (Johnson's algorithm) on the graph
//! shapes the study encounters: long rings (DOR single-cycle deadlocks),
//! dense multi-cycle knots (TFAR), and saturated CWG snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexsim::build_wait_graph;
use icn_cwg::count_cycles;
use icn_routing::Tfar;
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32).map(|v| vec![(v + 1) % n as u32]).collect()
}

/// A knot where each vertex waits for the next two — cycle count grows
/// fast with size, exercising the cap.
fn dense_knot(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|v| vec![(v + 1) % n as u32, (v + 2) % n as u32])
        .collect()
}

fn saturated_snapshot_adjacency() -> Vec<Vec<u32>> {
    let topo = KAryNCube::torus(8, 2, true);
    let injector = BernoulliInjector::for_load(&topo, 1.0, 32);
    let mut net = Network::new(
        topo.clone(),
        Box::new(Tfar),
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: 32,
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..4_000u32 {
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(&mut rng) {
                if let Some(dst) = Pattern::Uniform.dest(&topo, NodeId(node), &mut rng) {
                    net.enqueue(NodeId(node), dst);
                }
            }
        }
        net.step();
    }
    // Re-expose adjacency through the public WaitGraph API by counting on
    // it directly; here we just rebuild the graph per iteration input.
    let snap = net.wait_snapshot();
    let g = build_wait_graph(&snap);
    // Extract adjacency via edges() accessor.
    (0..g.num_vertices() as u32)
        .map(|v| g.edges(v).iter().map(|e| e.to).collect())
        .collect()
}

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_counting");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &n in &[64usize, 1024] {
        let adj = ring(n);
        g.bench_with_input(BenchmarkId::new("ring", n), &adj, |b, adj| {
            b.iter(|| count_cycles(adj, 100_000))
        });
    }
    for &n in &[12usize, 24] {
        let adj = dense_knot(n);
        g.bench_with_input(BenchmarkId::new("dense_knot", n), &adj, |b, adj| {
            b.iter(|| count_cycles(adj, 100_000))
        });
    }
    let adj = saturated_snapshot_adjacency();
    g.bench_function("saturated_snapshot_cap50k", |b| {
        b.iter(|| count_cycles(&adj, 50_000))
    });
    g.finish();
}

criterion_group!(benches, bench_cycles);
criterion_main!(benches);
