//! Engine-throughput comparison: the activity-driven stepper
//! ([`Network::step`]) against the dense reference stepper
//! ([`Network::step_reference`]) on the three regimes the paper's sweeps
//! spend their time in — low load (mostly idle), saturation (mostly
//! busy), and post-deadlock (mostly blocked). For each config the two
//! engines are first driven in lockstep over an identical schedule and
//! must produce identical per-cycle events and final counters; then each
//! is timed separately on its own instance. Results are printed as a
//! table and written to `BENCH_engine.json`.
//!
//! Run with `cargo bench -p icn-bench --bench engine_throughput`. Exits
//! non-zero if any digest diverges; throughput checks are reported as
//! PASS/FAIL but do not fail the process (wall-clock noise).

use std::fmt::Write as _;
use std::time::Instant;

use icn_routing::{Dor, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig, StepEvents};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Case {
    name: &'static str,
    bidir: bool,
    routing: fn() -> Box<dyn RoutingAlgorithm>,
    vcs: usize,
    load: f64,
    /// Cycles to reach the regime's steady state before measuring.
    warmup: u64,
}

const MSG_LEN: usize = 32;
const VERIFY_CYCLES: u64 = 4_000;
const MEASURE_CYCLES: u64 = 40_000;
const REPS: usize = 3;

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "low_load",
            bidir: true,
            routing: || Box::new(Tfar),
            vcs: 2,
            load: 0.15,
            warmup: 2_000,
        },
        Case {
            name: "saturation",
            bidir: true,
            routing: || Box::new(Tfar),
            vcs: 2,
            load: 1.0,
            warmup: 2_000,
        },
        // Unidirectional DOR with one VC wedges within ~1k cycles at
        // capacity and stays wedged (no recovery here): the mostly-blocked
        // regime the activity engine is built for.
        Case {
            name: "post_deadlock",
            bidir: false,
            routing: || Box::new(Dor),
            vcs: 1,
            load: 1.0,
            warmup: 3_000,
        },
    ]
}

fn build(case: &Case) -> (Network, BernoulliInjector, StdRng) {
    let topo = KAryNCube::torus(8, 2, case.bidir);
    let injector = BernoulliInjector::for_load(&topo, case.load, MSG_LEN);
    let net = Network::new(
        topo,
        (case.routing)(),
        SimConfig {
            vcs_per_channel: case.vcs,
            buffer_depth: 2,
            msg_len: MSG_LEN,
        },
    );
    (net, injector, StdRng::seed_from_u64(7))
}

fn offer_traffic(
    net: &mut Network,
    topo: &KAryNCube,
    injector: &BernoulliInjector,
    rng: &mut StdRng,
) {
    for node in 0..topo.num_nodes() as u32 {
        if injector.fires(rng) {
            if let Some(dst) = Pattern::Uniform.dest(topo, NodeId(node), rng) {
                net.enqueue(NodeId(node), dst);
            }
        }
    }
}

/// Everything a run's events and final state boil down to; two engines
/// with equal digests produced byte-identical schedules.
fn digest(net: &Network, folded: &(u64, u64, u64)) -> String {
    let (inj, flits, del) = folded;
    let mut s = String::new();
    let _ = write!(
        s,
        "inj={inj} flits={flits} del={del} totals={:?} blocked={} in_net={} queued={} ids={:?}",
        net.totals(),
        net.blocked_count(),
        net.in_network(),
        net.source_queued(),
        net.active_ids(),
    );
    s
}

fn fold(acc: &mut (u64, u64, u64), ev: &StepEvents) {
    acc.0 += ev.injected as u64;
    acc.1 += ev.link_flits as u64;
    acc.2 += ev.delivered.len() as u64;
}

/// Lockstep differential over the verify window: identical per-cycle
/// events, identical digests.
fn verify(case: &Case) -> bool {
    let (mut a, injector, mut rng_a) = build(case);
    let (mut b, _, mut rng_b) = build(case);
    let topo = a.topology().clone();
    let mut fa = (0, 0, 0);
    let mut fb = (0, 0, 0);
    for cycle in 0..VERIFY_CYCLES {
        offer_traffic(&mut a, &topo, &injector, &mut rng_a);
        offer_traffic(&mut b, &topo, &injector, &mut rng_b);
        let ea = a.step();
        let eb = b.step_reference();
        if ea != eb {
            eprintln!("{}: step events diverged at cycle {cycle}", case.name);
            return false;
        }
        fold(&mut fa, &ea);
        fold(&mut fb, &eb);
    }
    let da = digest(&a, &fa);
    let db = digest(&b, &fb);
    if da != db {
        eprintln!(
            "{}: digests diverged\n  activity: {da}\n  dense:    {db}",
            case.name
        );
        return false;
    }
    true
}

/// Steady-state cycles per second for one engine; best of [`REPS`] runs.
fn time_engine(case: &Case, dense: bool) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let (mut net, injector, mut rng) = build(case);
        let topo = net.topology().clone();
        for _ in 0..case.warmup {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            if dense {
                net.step_reference();
            } else {
                net.step();
            }
        }
        let start = Instant::now();
        for _ in 0..MEASURE_CYCLES {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            if dense {
                net.step_reference();
            } else {
                net.step();
            }
        }
        let cps = MEASURE_CYCLES as f64 / start.elapsed().as_secs_f64();
        best = best.max(cps);
    }
    best
}

fn main() {
    println!("== engine throughput: activity stepper vs dense reference ==");
    println!(
        "   8-ary 2-cube, {MSG_LEN}-flit messages; verify {VERIFY_CYCLES} cycles, \
         measure {MEASURE_CYCLES} cycles x {REPS} reps\n"
    );

    let mut rows = Vec::new();
    let mut all_match = true;
    for case in cases() {
        let matched = verify(&case);
        all_match &= matched;
        let dense = time_engine(&case, true);
        let activity = time_engine(&case, false);
        let speedup = activity / dense;
        println!(
            "{:>14}  dense {:>12.0} cyc/s   activity {:>12.0} cyc/s   speedup {:>5.2}x   digest {}",
            case.name,
            dense,
            activity,
            speedup,
            if matched { "MATCH" } else { "MISMATCH" },
        );
        rows.push((case.name, dense, activity, speedup, matched));
    }

    let find = |name: &str| rows.iter().find(|r| r.0 == name).unwrap();
    let post = find("post_deadlock");
    let low = find("low_load");
    println!();
    println!(
        "  [{}] post-deadlock speedup >= 2x (measured {:.2}x)",
        if post.3 >= 2.0 { "PASS" } else { "FAIL" },
        post.3
    );
    println!(
        "  [{}] low-load regression <= 5% (activity/dense = {:.2})",
        if low.3 >= 0.95 { "PASS" } else { "FAIL" },
        low.3
    );
    println!(
        "  [{}] identical digests vs dense reference on all configs",
        if all_match { "PASS" } else { "FAIL" },
    );

    let mut json = String::from("{\n  \"bench\": \"engine_throughput\",\n");
    let _ = write!(
        json,
        "  \"verify_cycles\": {VERIFY_CYCLES},\n  \"measure_cycles\": {MEASURE_CYCLES},\n  \"configs\": [\n"
    );
    for (i, (name, dense, activity, speedup, matched)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"dense_cycles_per_sec\": {dense:.0}, \
             \"activity_cycles_per_sec\": {activity:.0}, \"speedup\": {speedup:.3}, \
             \"digest_match\": {matched}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => println!("\nwrote BENCH_engine.json"),
        Err(e) => eprintln!("\ncannot write BENCH_engine.json: {e}"),
    }

    if !all_match {
        eprintln!("engine digest mismatch — the activity stepper is wrong");
        std::process::exit(1);
    }
}
