//! Engine-throughput comparison: the activity-driven stepper
//! ([`Network::step`]) against the dense reference stepper
//! ([`Network::step_reference`]) on the three regimes the paper's sweeps
//! spend their time in — low load (mostly idle), saturation (mostly
//! busy), and post-deadlock (mostly blocked). For each config the two
//! engines are first driven in lockstep over an identical schedule and
//! must produce identical per-cycle events and final counters; then each
//! is timed separately on its own instance. Results are printed as a
//! table and written to `BENCH_engine.json`.
//!
//! A second section times the sharded engine on `large_saturation` — a
//! 16-ary 3-cube (4096 nodes) at full load, the scale the spatial
//! sharding exists for — at 1/2/4/8 shards, after a lockstep digest
//! cross-check between the flat and 4-shard instances. `shard4_ratio`
//! (4-shard over 1-shard cycles/sec) joins the committed baseline; on a
//! single-core machine logical shards run inline so the honest ratio is
//! ~1.0, and the gate tracks whatever the committed machine measured.
//!
//! A third section compares the detection modes on a deadlock-heavy
//! regime (full `flexsim::run`s, recovery in the loop): after a digest
//! cross-check, `incremental_ratio` (incremental over snapshot
//! cycles/sec) joins the baseline and is gated at a fixed 0.9 — the
//! every-cycle detector may cost at most 10% of run throughput.
//!
//! Run with `cargo bench -p icn-bench --bench engine_throughput` (add
//! `--features parallel` for real shard counts; without it the knob
//! clamps to 1 and the sweep degenerates to a flat-engine control). Exits
//! non-zero if any digest diverges, or if the saturation speedup or
//! `shard4_ratio` regresses more than 20% below the committed
//! `BENCH_engine.json` baseline (ratios are machine-normalized, so this
//! survives CI-runner variance); the remaining throughput checks are
//! reported as PASS/FAIL but do not fail the process (wall-clock noise).
//!
//! `ICN_BENCH_QUICK=1` shrinks the verify/measure windows for CI smoke
//! runs (~seconds instead of ~minutes).

use std::fmt::Write as _;
use std::time::Instant;

use icn_routing::{Dor, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig, StepEvents};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Case {
    name: &'static str,
    bidir: bool,
    routing: fn() -> Box<dyn RoutingAlgorithm>,
    vcs: usize,
    load: f64,
    /// Cycles to reach the regime's steady state before measuring.
    warmup: u64,
}

const MSG_LEN: usize = 32;

/// Window sizes, shrunk by `ICN_BENCH_QUICK=1` for CI smoke runs.
#[derive(Clone, Copy)]
struct Windows {
    verify_cycles: u64,
    measure_cycles: u64,
    reps: usize,
}

fn quick_mode() -> bool {
    std::env::var("ICN_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn windows() -> Windows {
    if quick_mode() {
        Windows {
            verify_cycles: 1_500,
            measure_cycles: 8_000,
            reps: 2,
        }
    } else {
        Windows {
            verify_cycles: 4_000,
            measure_cycles: 40_000,
            reps: 3,
        }
    }
}

/// The committed baseline (and output) lives at the repo root, not in
/// the bench crate's CWD. Quick mode measures a shorter window — the
/// saturation backlog is shallower, so its speedup ratio is a different
/// (also deterministic) number — and therefore keeps its own baseline
/// so the regression gate always compares like-for-like.
fn baseline_path() -> &'static str {
    if quick_mode() {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine_quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json")
    }
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "low_load",
            bidir: true,
            routing: || Box::new(Tfar),
            vcs: 2,
            load: 0.15,
            warmup: 2_000,
        },
        Case {
            name: "saturation",
            bidir: true,
            routing: || Box::new(Tfar),
            vcs: 2,
            load: 1.0,
            warmup: 2_000,
        },
        // Unidirectional DOR with one VC wedges within ~1k cycles at
        // capacity and stays wedged (no recovery here): the mostly-blocked
        // regime the activity engine is built for.
        Case {
            name: "post_deadlock",
            bidir: false,
            routing: || Box::new(Dor),
            vcs: 1,
            load: 1.0,
            warmup: 3_000,
        },
    ]
}

fn build(case: &Case) -> (Network, BernoulliInjector, StdRng) {
    let topo = KAryNCube::torus(8, 2, case.bidir);
    let injector = BernoulliInjector::for_load(&topo, case.load, MSG_LEN);
    let net = Network::new(
        topo,
        (case.routing)(),
        SimConfig {
            vcs_per_channel: case.vcs,
            buffer_depth: 2,
            msg_len: MSG_LEN,
        },
    );
    (net, injector, StdRng::seed_from_u64(7))
}

fn offer_traffic(
    net: &mut Network,
    topo: &KAryNCube,
    injector: &BernoulliInjector,
    rng: &mut StdRng,
) {
    for node in 0..topo.num_nodes() as u32 {
        if injector.fires(rng) {
            if let Some(dst) = Pattern::Uniform.dest(topo, NodeId(node), rng) {
                net.enqueue(NodeId(node), dst);
            }
        }
    }
}

/// Everything a run's events and final state boil down to; two engines
/// with equal digests produced byte-identical schedules.
fn digest(net: &Network, folded: &(u64, u64, u64)) -> String {
    let (inj, flits, del) = folded;
    let mut s = String::new();
    let _ = write!(
        s,
        "inj={inj} flits={flits} del={del} totals={:?} blocked={} in_net={} queued={} ids={:?}",
        net.totals(),
        net.blocked_count(),
        net.in_network(),
        net.source_queued(),
        net.active_ids(),
    );
    s
}

fn fold(acc: &mut (u64, u64, u64), ev: &StepEvents) {
    acc.0 += ev.injected as u64;
    acc.1 += ev.link_flits as u64;
    acc.2 += ev.delivered.len() as u64;
}

/// Lockstep differential over the verify window: identical per-cycle
/// events, identical digests.
fn verify(case: &Case, w: Windows) -> bool {
    let (mut a, injector, mut rng_a) = build(case);
    let (mut b, _, mut rng_b) = build(case);
    let topo = a.topology().clone();
    let mut fa = (0, 0, 0);
    let mut fb = (0, 0, 0);
    for cycle in 0..w.verify_cycles {
        offer_traffic(&mut a, &topo, &injector, &mut rng_a);
        offer_traffic(&mut b, &topo, &injector, &mut rng_b);
        let ea = a.step();
        let eb = b.step_reference();
        if ea != eb {
            eprintln!("{}: step events diverged at cycle {cycle}", case.name);
            return false;
        }
        fold(&mut fa, &ea);
        fold(&mut fb, &eb);
    }
    let da = digest(&a, &fa);
    let db = digest(&b, &fb);
    if da != db {
        eprintln!(
            "{}: digests diverged\n  activity: {da}\n  dense:    {db}",
            case.name
        );
        return false;
    }
    true
}

/// Steady-state cycles per second for one engine; best of `w.reps` runs.
fn time_engine(case: &Case, dense: bool, w: Windows) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..w.reps {
        let (mut net, injector, mut rng) = build(case);
        let topo = net.topology().clone();
        for _ in 0..case.warmup {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            if dense {
                net.step_reference();
            } else {
                net.step();
            }
        }
        let start = Instant::now();
        for _ in 0..w.measure_cycles {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            if dense {
                net.step_reference();
            } else {
                net.step();
            }
        }
        let cps = w.measure_cycles as f64 / start.elapsed().as_secs_f64();
        best = best.max(cps);
    }
    best
}

/// Windows for the 4096-node sharded section: the network is 16× the
/// flat cases', so it gets its own (much shorter) windows.
fn large_windows() -> (u64, u64, usize) {
    if quick_mode() {
        (300, 600, 1)
    } else {
        (1_000, 2_500, 2)
    }
}

/// Builds the `large_saturation` point — 16-ary 3-cube (4096 nodes),
/// TFAR with 2 VCs at full load — with `shards` requested; returns the
/// effective shard count actually granted (1 on serial builds).
fn build_large(shards: usize) -> (Network, BernoulliInjector, StdRng, usize) {
    let topo = KAryNCube::torus(16, 3, true);
    let injector = BernoulliInjector::for_load(&topo, 1.0, MSG_LEN);
    let mut net = Network::new(
        topo,
        Box::new(Tfar),
        SimConfig {
            vcs_per_channel: 2,
            buffer_depth: 2,
            msg_len: MSG_LEN,
        },
    );
    let eff = net.set_shards(shards);
    (net, injector, StdRng::seed_from_u64(11), eff)
}

/// Lockstep cross-check between the flat and 4-shard instances of
/// `large_saturation`: identical per-cycle events and final digests, or
/// the shard sweep's numbers are meaningless.
fn large_shard_crosscheck(cycles: u64) -> bool {
    let (mut a, injector, mut rng_a, _) = build_large(1);
    let (mut b, _, mut rng_b, _) = build_large(4);
    let topo = a.topology().clone();
    let mut fa = (0, 0, 0);
    let mut fb = (0, 0, 0);
    for cycle in 0..cycles {
        offer_traffic(&mut a, &topo, &injector, &mut rng_a);
        offer_traffic(&mut b, &topo, &injector, &mut rng_b);
        let ea = a.step();
        let eb = b.step();
        if ea != eb {
            eprintln!("large_saturation: events diverged at cycle {cycle} (1 vs 4 shards)");
            return false;
        }
        fold(&mut fa, &ea);
        fold(&mut fb, &eb);
    }
    let da = digest(&a, &fa);
    let db = digest(&b, &fb);
    if da != db {
        eprintln!("large_saturation: digests diverged\n  1 shard:  {da}\n  4 shards: {db}");
        return false;
    }
    true
}

/// Steady-state cycles/sec of `large_saturation` at `shards`; best of
/// `reps` runs. Also returns the effective shard count.
fn time_large(shards: usize, warmup: u64, measure: u64, reps: usize) -> (usize, f64) {
    let mut best = 0.0f64;
    let mut eff = 1;
    for _ in 0..reps {
        let (mut net, injector, mut rng, e) = build_large(shards);
        eff = e;
        let topo = net.topology().clone();
        for _ in 0..warmup {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            net.step();
        }
        let start = Instant::now();
        for _ in 0..measure {
            offer_traffic(&mut net, &topo, &injector, &mut rng);
            net.step();
        }
        best = best.max(measure as f64 / start.elapsed().as_secs_f64());
    }
    (eff, best)
}

/// Windows for the incremental-detection section: full `flexsim::run`s
/// (detection + recovery in the loop) on a deadlock-heavy 8-ary 2-cube,
/// so the windows are their own size again.
fn incremental_windows() -> (u64, u64, usize) {
    if quick_mode() {
        (500, 4_000, 2)
    } else {
        (1_000, 20_000, 3)
    }
}

/// The deadlock-recovery regime the detection modes are compared on:
/// unidirectional DOR, one VC, full load — steady knot formation and
/// recovery churn, detection at the default 50-cycle cadence.
fn incremental_cfg(warmup: u64, measure: u64) -> flexsim::RunConfig {
    let mut cfg = flexsim::RunConfig::small_default();
    cfg.topology = flexsim::TopologySpec::torus(8, 2, false);
    cfg.routing = flexsim::RoutingSpec::Dor;
    cfg.sim.vcs_per_channel = 1;
    cfg.load = 1.0;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg
}

/// Steady-state cycles/sec of a full run under `mode`; best of `reps`.
fn time_detection_mode(mode: flexsim::DetectionMode, w: (u64, u64, usize)) -> f64 {
    let (warmup, measure, reps) = w;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut cfg = incremental_cfg(warmup, measure);
        cfg.detection = mode;
        let start = Instant::now();
        let res = flexsim::run(&cfg);
        let cps = res.cycles as f64 / start.elapsed().as_secs_f64();
        best = best.max(cps);
    }
    best
}

/// Pulls `"shard4_ratio": <x>` out of a committed `BENCH_engine.json`.
fn baseline_shard4_ratio(json: &str) -> Option<f64> {
    let row = json.lines().find(|l| l.contains("\"shard4_ratio\""))?;
    let tail = row.split("\"shard4_ratio\": ").nth(1)?;
    tail.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

/// Pulls `"speedup": <x>` out of the saturation row of a committed
/// `BENCH_engine.json` (a fixed format we also write, so a two-line
/// scan beats a JSON parser here).
fn baseline_saturation_speedup(json: &str) -> Option<f64> {
    let row = json
        .lines()
        .find(|l| l.contains("\"name\": \"saturation\""))?;
    let tail = row.split("\"speedup\": ").nth(1)?;
    tail.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let w = windows();
    let baseline = std::fs::read_to_string(baseline_path())
        .ok()
        .as_deref()
        .and_then(baseline_saturation_speedup);
    println!("== engine throughput: activity stepper vs dense reference ==");
    println!(
        "   8-ary 2-cube, {MSG_LEN}-flit messages; verify {} cycles, \
         measure {} cycles x {} reps\n",
        w.verify_cycles, w.measure_cycles, w.reps
    );

    let mut rows = Vec::new();
    let mut all_match = true;
    for case in cases() {
        let matched = verify(&case, w);
        all_match &= matched;
        let dense = time_engine(&case, true, w);
        let activity = time_engine(&case, false, w);
        let speedup = activity / dense;
        println!(
            "{:>14}  dense {:>12.0} cyc/s   activity {:>12.0} cyc/s   speedup {:>5.2}x   digest {}",
            case.name,
            dense,
            activity,
            speedup,
            if matched { "MATCH" } else { "MISMATCH" },
        );
        rows.push((case.name, dense, activity, speedup, matched));
    }

    let find = |name: &str| rows.iter().find(|r| r.0 == name).unwrap();
    let post = find("post_deadlock");
    let low = find("low_load");
    println!();
    println!(
        "  [{}] post-deadlock speedup >= 2x (measured {:.2}x)",
        if post.3 >= 2.0 { "PASS" } else { "FAIL" },
        post.3
    );
    println!(
        "  [{}] low-load regression <= 5% (activity/dense = {:.2})",
        if low.3 >= 0.95 { "PASS" } else { "FAIL" },
        low.3
    );
    println!(
        "  [{}] identical digests vs dense reference on all configs",
        if all_match { "PASS" } else { "FAIL" },
    );
    // Sharded large-network section: cross-check then shard sweep.
    let (lg_warm, lg_measure, lg_reps) = large_windows();
    println!();
    println!(
        "== large_saturation: 16-ary 3-cube (4096 nodes), full load, shard scaling ==\n   \
         warmup {lg_warm} cycles, measure {lg_measure} cycles x {lg_reps} reps"
    );
    let cross_cycles = if quick_mode() { 400 } else { 1_000 };
    let shards_match = large_shard_crosscheck(cross_cycles);
    println!(
        "  [{}] identical digests, 1 vs 4 shards, {cross_cycles}-cycle lockstep",
        if shards_match { "PASS" } else { "FAIL" },
    );
    let mut shard_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (eff, cps) = time_large(shards, lg_warm, lg_measure, lg_reps);
        println!(
            "{:>14}  requested {shards} shards (effective {eff})   {cps:>10.0} cyc/s",
            format!("large_s{shards}"),
        );
        shard_rows.push((shards, eff, cps));
    }
    let shard4_ratio = shard_rows[2].2 / shard_rows[0].2;
    let baseline_ratio = std::fs::read_to_string(baseline_path())
        .ok()
        .as_deref()
        .and_then(baseline_shard4_ratio);
    let shard_regressed = match baseline_ratio {
        Some(b) => {
            let ok = shard4_ratio >= 0.8 * b;
            println!(
                "  [{}] shard4_ratio within 20% of committed baseline \
                 (measured {shard4_ratio:.2}x vs baseline {b:.2}x)",
                if ok { "PASS" } else { "FAIL" },
            );
            !ok
        }
        None => {
            println!("  [SKIP] no committed shard4_ratio baseline to compare against");
            false
        }
    };

    // Incremental-detection section: the event-patched every-cycle
    // detector must stay digest-identical to snapshot mode and cost no
    // more than 10% of a full run's throughput on a deadlock-heavy
    // regime (a fixed gate — the ratio is machine-normalized).
    let iw = incremental_windows();
    println!();
    println!(
        "== incremental_detection: 8-ary 2-cube DOR vc=1 load=1.0, full runs ==\n   \
         warmup {} cycles, measure {} cycles x {} reps",
        iw.0, iw.1, iw.2
    );
    let inc_match = {
        let cfg = incremental_cfg(iw.0, iw.1.min(2_000));
        let want = flexsim::run(&cfg).digest();
        let mut inc = cfg.clone();
        inc.detection = flexsim::DetectionMode::Incremental;
        flexsim::run(&inc).digest() == want
    };
    println!(
        "  [{}] identical digests, snapshot vs incremental detection",
        if inc_match { "PASS" } else { "FAIL" },
    );
    let snap_cps = time_detection_mode(flexsim::DetectionMode::Snapshot, iw);
    let inc_cps = time_detection_mode(flexsim::DetectionMode::Incremental, iw);
    let incremental_ratio = inc_cps / snap_cps;
    println!(
        "{:>14}  snapshot {:>10.0} cyc/s   incremental {:>10.0} cyc/s   ratio {:.2}x",
        "detection", snap_cps, inc_cps, incremental_ratio
    );
    let inc_regressed = incremental_ratio < 0.9;
    println!(
        "  [{}] incremental_ratio >= 0.9 (measured {incremental_ratio:.2}x)",
        if inc_regressed { "FAIL" } else { "PASS" },
    );

    let sat = find("saturation");
    let sat_regressed = match baseline {
        Some(b) => {
            let ok = sat.3 >= 0.8 * b;
            println!(
                "  [{}] saturation speedup within 20% of committed baseline \
                 (measured {:.2}x vs baseline {:.2}x)",
                if ok { "PASS" } else { "FAIL" },
                sat.3,
                b
            );
            !ok
        }
        None => {
            println!("  [SKIP] no committed baseline to compare saturation speedup against");
            false
        }
    };

    let mut json = String::from("{\n  \"bench\": \"engine_throughput\",\n");
    let _ = write!(
        json,
        "  \"verify_cycles\": {},\n  \"measure_cycles\": {},\n  \"configs\": [\n",
        w.verify_cycles, w.measure_cycles
    );
    for (i, (name, dense, activity, speedup, matched)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"dense_cycles_per_sec\": {dense:.0}, \
             \"activity_cycles_per_sec\": {activity:.0}, \"speedup\": {speedup:.3}, \
             \"digest_match\": {matched}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"large_saturation\": [\n");
    for (i, (req, eff, cps)) in shard_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"large_saturation_s{req}\", \"effective_shards\": {eff}, \
             \"cycles_per_sec\": {cps:.0}}}{}",
            if i + 1 < shard_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"shard4_ratio\": {shard4_ratio:.3},\n  \"shards_digest_match\": {shards_match},"
    );
    let _ = writeln!(
        json,
        "  \"incremental_detection\": {{\"snapshot_cycles_per_sec\": {snap_cps:.0}, \
         \"incremental_cycles_per_sec\": {inc_cps:.0}, \
         \"incremental_ratio\": {incremental_ratio:.3}, \
         \"digest_match\": {inc_match}}}"
    );
    json.push_str("}\n");
    match std::fs::write(baseline_path(), &json) {
        Ok(()) => println!("\nwrote {}", baseline_path()),
        Err(e) => eprintln!("\ncannot write {}: {e}", baseline_path()),
    }

    if !all_match {
        eprintln!("engine digest mismatch — the activity stepper is wrong");
        std::process::exit(1);
    }
    if !shards_match {
        eprintln!("sharded digest mismatch — the sharded scheduler is wrong");
        std::process::exit(1);
    }
    if sat_regressed {
        eprintln!("saturation speedup regressed more than 20% vs the committed baseline");
        std::process::exit(1);
    }
    if shard_regressed {
        eprintln!("shard4_ratio regressed more than 20% vs the committed baseline");
        std::process::exit(1);
    }
    if !inc_match {
        eprintln!("detection-mode digest mismatch — the incremental detector is wrong");
        std::process::exit(1);
    }
    if inc_regressed {
        eprintln!("incremental detection costs more than 10% of full-run throughput");
        std::process::exit(1);
    }
}
