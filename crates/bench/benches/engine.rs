//! Engine throughput: simulated cycles per second across routing
//! algorithms, VC counts, and offered loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icn_routing::{Dor, RoutingAlgorithm, Tfar};
use icn_sim::{Network, SimConfig};
use icn_topology::{KAryNCube, NodeId};
use icn_traffic::{BernoulliInjector, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive(net: &mut Network, injector: &BernoulliInjector, rng: &mut StdRng, cycles: u64) {
    let topo = net.topology().clone();
    for _ in 0..cycles {
        for node in 0..topo.num_nodes() as u32 {
            if injector.fires(rng) {
                if let Some(dst) = Pattern::Uniform.dest(&topo, NodeId(node), rng) {
                    net.enqueue(NodeId(node), dst);
                }
            }
        }
        net.step();
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_cycles");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    type AlgoFactory = Box<dyn Fn() -> Box<dyn RoutingAlgorithm>>;
    let cases: Vec<(&str, AlgoFactory, usize, f64)> = vec![
        ("dor1_low", Box::new(|| Box::new(Dor)), 1, 0.2),
        ("dor1_sat", Box::new(|| Box::new(Dor)), 1, 1.0),
        ("tfar1_sat", Box::new(|| Box::new(Tfar)), 1, 1.0),
        ("tfar4_sat", Box::new(|| Box::new(Tfar)), 4, 1.0),
    ];

    for (name, mk_algo, vcs, load) in cases {
        let cycles_per_iter = 500u64;
        g.throughput(Throughput::Elements(cycles_per_iter));
        g.bench_with_input(BenchmarkId::from_parameter(name), &load, |b, &load| {
            let topo = KAryNCube::torus(8, 2, true);
            let injector = BernoulliInjector::for_load(&topo, load, 32);
            let mut net = Network::new(
                topo,
                mk_algo(),
                SimConfig {
                    vcs_per_channel: vcs,
                    buffer_depth: 2,
                    msg_len: 32,
                },
            );
            let mut rng = StdRng::seed_from_u64(1);
            // Reach steady state once, then measure incremental stepping.
            drive(&mut net, &injector, &mut rng, 2_000);
            b.iter(|| drive(&mut net, &injector, &mut rng, cycles_per_iter));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
