//! Routing-relation cost: candidate-set computation per header per cycle
//! for each algorithm (the innermost hot path of the allocation phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icn_routing::{
    Candidate, DatelineDor, Dor, DuatoFar, RoutingAlgorithm, RoutingCtx, Tfar, WestFirst,
};
use icn_topology::{KAryNCube, NodeId};

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_candidates");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let torus = KAryNCube::torus(16, 2, true);
    let mesh = KAryNCube::mesh(16, 2);
    let algos: Vec<(&str, Box<dyn RoutingAlgorithm>, &KAryNCube, usize)> = vec![
        ("dor", Box::new(Dor), &torus, 1),
        ("tfar", Box::new(Tfar), &torus, 4),
        ("dateline", Box::new(DatelineDor), &torus, 2),
        ("duato", Box::new(DuatoFar), &torus, 3),
        ("west_first", Box::new(WestFirst), &mesh, 1),
    ];

    for (name, algo, topo, vcs) in algos {
        g.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, algo| {
            let n = topo.num_nodes() as u32;
            let mut out: Vec<Candidate> = Vec::with_capacity(8);
            let mut i = 0u32;
            b.iter(|| {
                // Cycle through many (src, dst) pairs to avoid branch
                // predictor lock-in on one route.
                i = i.wrapping_add(97);
                let cur = NodeId(i % n);
                let dst = NodeId((i * 31 + 7) % n);
                if cur == dst {
                    return 0;
                }
                out.clear();
                algo.candidates(topo, vcs, &RoutingCtx::fresh(cur, dst, cur), &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
