//! Routing relations for the deadlock characterization study.
//!
//! A routing algorithm maps (current node, destination, message state) to an
//! ordered list of **candidate** output channels, each with a mask of the
//! virtual channels the message may acquire on it. The order encodes the
//! paper's selection policy (§3): continuing in the current dimension is
//! preferred over turning. A blocked header's wait-for set is *every* VC in
//! every candidate — that is what determines the fan-out of dashed arcs in
//! the channel wait-for graph.
//!
//! The two algorithms the paper studies put **no restrictions** on VC use
//! (which is what makes deadlock possible):
//!
//! * [`Dor`] — static dimension-order routing.
//! * [`Tfar`] — minimal true fully adaptive routing.
//!
//! Because the paper's central question is *avoidance vs recovery*, the
//! avoidance-based baselines it contrasts against are implemented too:
//!
//! * [`DatelineDor`] — DOR made deadlock-free on tori via dateline VC classes
//!   (Dally & Seitz style).
//! * [`DuatoFar`] — fully adaptive routing with a dateline-DOR escape layer
//!   (Duato's protocol \[7\]).
//! * [`WestFirst`] — turn-model adaptive routing for 2-D meshes \[2\].

mod ctx;
mod dateline;
mod dor;
mod duato;
mod misroute;
mod negative_first;
mod tfar;
mod turn;
pub mod verify;

pub use ctx::{Candidate, RoutingCtx, VcMask, MAX_VCS};
pub use dateline::DatelineDor;
pub use dor::Dor;
pub use duato::DuatoFar;
pub use misroute::MisroutingTfar;
pub use negative_first::NegativeFirst;
pub use tfar::Tfar;
pub use turn::WestFirst;

use icn_topology::{KAryNCube, NodeId};

/// A routing relation: supplies candidate (channel, VC-set) pairs.
pub trait RoutingAlgorithm: Send + Sync {
    /// Short human-readable name ("DOR", "TFAR", ...).
    fn name(&self) -> &'static str;

    /// Whether the relation can return more than one physical channel.
    fn is_adaptive(&self) -> bool;

    /// Whether the relation is deadlock-free by construction (avoidance
    /// based). Recovery-based relations return `false`; the simulator only
    /// needs recovery armed for those.
    fn is_deadlock_free(&self) -> bool {
        false
    }

    /// Minimum number of virtual channels per physical channel required for
    /// the relation to be well defined.
    fn min_vcs(&self) -> usize {
        1
    }

    /// Whether the relation can be expected to route around a link outage.
    /// Adaptive relations offer several physical channels per hop, so a
    /// fault-filtered candidate set usually stays non-empty when one link
    /// dies; single-path relations (DOR, dateline DOR) become unroutable
    /// on a severed dimension and the engine drops the affected traffic
    /// as counted fault losses instead.
    fn routes_around_faults(&self) -> bool {
        self.is_adaptive()
    }

    /// Appends candidates for the message described by `ctx`, in preference
    /// order. An empty result with `ctx.current != ctx.dst` means the
    /// relation is not connected for this pair (a bug for all algorithms
    /// here, and asserted against in tests).
    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>);
}

/// Validates that an algorithm is *minimal* and *connected* on a topology:
/// every candidate strictly decreases the distance to the destination, and
/// at least one candidate exists whenever current ≠ destination.
///
/// Used by tests and available to downstream callers wiring up custom
/// configurations.
pub fn check_minimal_connected(
    algo: &dyn RoutingAlgorithm,
    topo: &KAryNCube,
    vcs: usize,
) -> Result<(), String> {
    let mut out = Vec::new();
    for cur in 0..topo.num_nodes() as u32 {
        for dst in 0..topo.num_nodes() as u32 {
            if cur == dst {
                continue;
            }
            let ctx = RoutingCtx::fresh(NodeId(cur), NodeId(dst), NodeId(cur));
            out.clear();
            algo.candidates(topo, vcs, &ctx, &mut out);
            if out.is_empty() {
                return Err(format!("no candidates from n{cur} to n{dst}"));
            }
            let d = topo.distance(NodeId(cur), NodeId(dst));
            for cand in &out {
                if cand.vcs.is_empty() {
                    return Err(format!("empty VC mask on {:?}", cand.channel));
                }
                let next = topo.channel(cand.channel).dst;
                let nd = topo.distance(next, NodeId(dst));
                if nd + 1 != d {
                    return Err(format!(
                        "non-minimal hop n{cur}->{:?} towards n{dst} (d {d} -> {nd})",
                        cand.channel
                    ));
                }
            }
        }
    }
    Ok(())
}
