//! Non-minimal (misrouting) fully adaptive routing — the paper's §5
//! future-work item on the effect of misrouting on deadlock formation.

use crate::tfar::profitable_channels;
use crate::{Candidate, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::KAryNCube;

/// TFAR extended with bounded misrouting: profitable channels are offered
/// first (highest preference); while the message has misroute budget left,
/// every *other* outgoing channel is offered as a lower-preference
/// fallback. The simulator counts each non-distance-reducing hop against
/// the budget, so a message degenerates to minimal routing after
/// `max_misroutes` detours — bounding livelock.
///
/// Misrouting widens the wait-for fan-out even further than TFAR, which
/// by the paper's §2 argument should *reduce* deadlock probability (more
/// alternatives per blocked header) while hurting latency at high load.
#[derive(Clone, Copy, Debug)]
pub struct MisroutingTfar {
    /// Maximum misroutes (non-minimal hops) per message.
    pub max_misroutes: u8,
}

impl Default for MisroutingTfar {
    fn default() -> Self {
        MisroutingTfar { max_misroutes: 4 }
    }
}

impl RoutingAlgorithm for MisroutingTfar {
    fn name(&self) -> &'static str {
        "TFAR-misroute"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        let mask = VcMask::all(vcs);
        let mut profitable = Vec::with_capacity(2 * topo.n());
        profitable_channels(topo, ctx, &mut profitable);
        out.extend(
            profitable
                .iter()
                .map(|&(channel, _)| Candidate { channel, vcs: mask }),
        );
        if ctx.misroutes < self.max_misroutes {
            for &ch in topo.channels_from(ctx.current) {
                if profitable.iter().all(|&(p, _)| p != ch) {
                    out.push(Candidate {
                        channel: ch,
                        vcs: mask,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{Coords, NodeId};

    fn ctx(topo: &KAryNCube, cur: &[u16], dst: &[u16], misroutes: u8) -> RoutingCtx {
        let cur = topo.node_at(&Coords::new(cur));
        let dst = topo.node_at(&Coords::new(dst));
        let mut c = RoutingCtx::fresh(cur, dst, cur);
        c.misroutes = misroutes;
        c
    }

    #[test]
    fn profitable_channels_come_first() {
        let t = KAryNCube::torus(8, 2, true);
        let mut out = Vec::new();
        MisroutingTfar::default().candidates(&t, 1, &ctx(&t, &[0, 0], &[2, 3], 0), &mut out);
        // 4 outgoing channels total; 2 profitable lead.
        assert_eq!(out.len(), 4);
        let d0 = t.distance(t.channel(out[0].channel).dst, NodeId(8 * 3 + 2));
        let d_last = t.distance(t.channel(out[3].channel).dst, NodeId(8 * 3 + 2));
        assert!(d0 < d_last);
    }

    #[test]
    fn budget_exhaustion_reverts_to_minimal() {
        let t = KAryNCube::torus(8, 2, true);
        let algo = MisroutingTfar { max_misroutes: 2 };
        let mut out = Vec::new();
        algo.candidates(&t, 1, &ctx(&t, &[0, 0], &[2, 3], 2), &mut out);
        assert_eq!(out.len(), 2, "only the profitable channels remain");
    }

    #[test]
    fn zero_budget_equals_tfar() {
        let t = KAryNCube::torus(6, 2, true);
        let algo = MisroutingTfar { max_misroutes: 0 };
        let tfar = crate::Tfar;
        for (cur, dst) in [([0u16, 0], [3u16, 2]), ([1, 1], [1, 4]), ([5, 5], [0, 0])] {
            let c = ctx(&t, &cur, &dst, 0);
            let mut a = Vec::new();
            let mut b = Vec::new();
            algo.candidates(&t, 2, &c, &mut a);
            tfar.candidates(&t, 2, &c, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn wider_fanout_than_tfar_with_budget() {
        let t = KAryNCube::torus(8, 2, true);
        let c = ctx(&t, &[2, 0], &[2, 3], 0); // adaptivity exhausted in dim 0
        let mut mis = Vec::new();
        let mut tfar = Vec::new();
        MisroutingTfar::default().candidates(&t, 1, &c, &mut mis);
        crate::Tfar.candidates(&t, 1, &c, &mut tfar);
        assert_eq!(tfar.len(), 1);
        assert_eq!(mis.len(), 4, "misrouting re-opens the other directions");
    }
}
