//! Negative-first turn-model routing for meshes and hypercubes.

use crate::{Candidate, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::{Direction, KAryNCube, RoutingOffset};

/// Negative-first routing (Glass & Ni's turn model \[2\]): all hops in the
/// `Minus` direction (any dimension) are taken first, fully adaptively
/// among themselves; once no negative hop remains, the message routes
/// fully adaptively among the remaining `Plus` hops. Prohibiting the
/// positive-to-negative turns breaks every abstract cycle, so the relation
/// is deadlock-free on meshes (and hypercubes) with a single VC, in any
/// number of dimensions — unlike [`crate::WestFirst`], which is 2-D only.
#[derive(Clone, Copy, Debug, Default)]
pub struct NegativeFirst;

impl RoutingAlgorithm for NegativeFirst {
    fn name(&self) -> &'static str {
        "negative-first"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        debug_assert!(!topo.is_torus(), "turn model applies to meshes");
        let mask = VcMask::all(vcs);
        let mut dirs: Vec<(usize, Direction)> = Vec::with_capacity(topo.n());
        for dim in 0..topo.n() {
            if let RoutingOffset::Dir(dir, _) = topo.routing_offset(ctx.current, ctx.dst, dim) {
                dirs.push((dim, dir));
            }
        }
        let any_negative = dirs.iter().any(|&(_, d)| d == Direction::Minus);
        for (dim, dir) in dirs {
            if any_negative && dir != Direction::Minus {
                continue;
            }
            let ch = topo
                .channel_from(ctx.current, dim, dir)
                .expect("mesh interior channel");
            out.push(Candidate {
                channel: ch,
                vcs: mask,
            });
        }
        if let Some(last) = ctx.last_dim {
            out.sort_by_key(|c| topo.channel(c.channel).dim != last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::Coords;

    fn route(topo: &KAryNCube, cur: &[u16], dst: &[u16]) -> Vec<Candidate> {
        let cur = topo.node_at(&Coords::new(cur));
        let dst = topo.node_at(&Coords::new(dst));
        let mut out = Vec::new();
        NegativeFirst.candidates(topo, 1, &RoutingCtx::fresh(cur, dst, cur), &mut out);
        out
    }

    #[test]
    fn negative_hops_first_and_adaptive_among_themselves() {
        let m = KAryNCube::mesh(8, 2);
        // Both components negative: both offered.
        let cands = route(&m, &[5, 6], &[2, 1]);
        assert_eq!(cands.len(), 2);
        for c in &cands {
            assert_eq!(m.channel(c.channel).dir, Direction::Minus);
        }
    }

    #[test]
    fn mixed_offsets_suppress_positive() {
        let m = KAryNCube::mesh(8, 2);
        // dx positive, dy negative: only the negative hop is offered.
        let cands = route(&m, &[2, 6], &[5, 1]);
        assert_eq!(cands.len(), 1);
        let info = m.channel(cands[0].channel);
        assert_eq!((info.dim, info.dir), (1, Direction::Minus));
    }

    #[test]
    fn all_positive_is_fully_adaptive() {
        let m = KAryNCube::mesh(8, 2);
        let cands = route(&m, &[1, 1], &[5, 6]);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn works_on_hypercube() {
        let h = KAryNCube::hypercube(4);
        crate::check_minimal_connected(&NegativeFirst, &h, 1).unwrap();
    }

    #[test]
    fn minimal_and_connected_on_meshes() {
        crate::check_minimal_connected(&NegativeFirst, &KAryNCube::mesh(5, 2), 1).unwrap();
        crate::check_minimal_connected(&NegativeFirst, &KAryNCube::mesh(3, 3), 1).unwrap();
    }
}
