//! Minimal true fully adaptive routing (TFAR).

use crate::{Candidate, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::{ChannelId, Direction, KAryNCube, RoutingOffset};

/// Minimal true fully adaptive routing: any profitable physical channel in
/// any unresolved dimension, with unrestricted use of every virtual channel.
///
/// This is the paper's "TFAR". Because no routing restriction is enforced,
/// deadlock is possible; the fan-out of wait-for arcs it produces
/// (#profitable channels × #VCs) is what drives the multi-cycle deadlocks of
/// Figure 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tfar;

/// Collects every profitable (strictly distance-reducing) output channel,
/// ordered by the paper's selection policy: the dimension of the previous
/// hop first, then increasing dimension index; `Plus` before `Minus` on a
/// tie. Shared by [`Tfar`] and the Duato baseline.
pub(crate) fn profitable_channels(
    topo: &KAryNCube,
    ctx: &RoutingCtx,
    out: &mut Vec<(ChannelId, u8)>,
) {
    let start = out.len();
    for dim in 0..topo.n() {
        let dirs: &[Direction] = match topo.routing_offset(ctx.current, ctx.dst, dim) {
            RoutingOffset::Zero => continue,
            RoutingOffset::Dir(Direction::Plus, _) => &[Direction::Plus],
            RoutingOffset::Dir(Direction::Minus, _) => &[Direction::Minus],
            RoutingOffset::Either(_) => &[Direction::Plus, Direction::Minus],
        };
        for &dir in dirs {
            let ch = topo
                .channel_from(ctx.current, dim, dir)
                .expect("minimal direction must have a channel");
            out.push((ch, dim as u8));
        }
    }
    // Selection policy: favour continuing in the current dimension over
    // turning. Stable sort keeps the Plus-before-Minus and low-dimension
    // ordering within each preference class.
    if let Some(last) = ctx.last_dim {
        out[start..].sort_by_key(|&(_, dim)| dim != last);
    }
}

impl RoutingAlgorithm for Tfar {
    fn name(&self) -> &'static str {
        "TFAR"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        let mut chans = Vec::with_capacity(2 * topo.n());
        profitable_channels(topo, ctx, &mut chans);
        out.extend(chans.into_iter().map(|(channel, _)| Candidate {
            channel,
            vcs: VcMask::all(vcs),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{Coords, NodeId};

    fn route(topo: &KAryNCube, ctx: &RoutingCtx) -> Vec<Candidate> {
        let mut out = Vec::new();
        Tfar.candidates(topo, 1, ctx, &mut out);
        out
    }

    #[test]
    fn offers_all_profitable_dimensions() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[2, 3]));
        let cands = route(&t, &RoutingCtx::fresh(cur, dst, cur));
        assert_eq!(cands.len(), 2);
        let dims: Vec<u8> = cands.iter().map(|c| t.channel(c.channel).dim).collect();
        assert_eq!(dims, vec![0, 1]);
    }

    #[test]
    fn adaptivity_exhausts_to_single_channel() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[2, 0]));
        let dst = t.node_at(&Coords::new(&[2, 3]));
        let cands = route(&t, &RoutingCtx::fresh(cur, dst, cur));
        assert_eq!(cands.len(), 1);
        assert_eq!(t.channel(cands[0].channel).dim, 1);
    }

    #[test]
    fn tie_offers_both_directions() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[4, 0]));
        let cands = route(&t, &RoutingCtx::fresh(cur, dst, cur));
        assert_eq!(cands.len(), 2);
        let dirs: Vec<Direction> = cands.iter().map(|c| t.channel(c.channel).dir).collect();
        assert!(dirs.contains(&Direction::Plus) && dirs.contains(&Direction::Minus));
    }

    #[test]
    fn selection_policy_prefers_current_dimension() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[1, 1]));
        let dst = t.node_at(&Coords::new(&[3, 3]));
        let mut ctx = RoutingCtx::fresh(NodeId(0), dst, cur);
        ctx.last_dim = Some(1);
        let cands = route(&t, &ctx);
        assert_eq!(t.channel(cands[0].channel).dim, 1, "keeps going in dim 1");
        assert_eq!(t.channel(cands[1].channel).dim, 0);
    }

    #[test]
    fn no_last_dim_orders_by_dimension() {
        let t = KAryNCube::torus(8, 3, true);
        let cur = NodeId(0);
        let dst = t.node_at(&Coords::new(&[1, 1, 1]));
        let cands = route(&t, &RoutingCtx::fresh(cur, dst, cur));
        let dims: Vec<u8> = cands.iter().map(|c| t.channel(c.channel).dim).collect();
        assert_eq!(dims, vec![0, 1, 2]);
    }

    #[test]
    fn four_d_fanout() {
        let t = KAryNCube::torus(4, 4, true);
        let cur = NodeId(0);
        let dst = t.node_at(&Coords::new(&[1, 1, 1, 1]));
        let cands = route(&t, &RoutingCtx::fresh(cur, dst, cur));
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn minimal_and_connected_on_all_variants() {
        for topo in [
            KAryNCube::torus(6, 2, true),
            KAryNCube::torus(6, 2, false),
            KAryNCube::torus(3, 3, true),
            KAryNCube::mesh(5, 2),
        ] {
            crate::check_minimal_connected(&Tfar, &topo, 2).unwrap();
        }
    }
}
