//! Per-message routing context and VC masks.

use icn_topology::{ChannelId, NodeId};

/// Maximum virtual channels per physical channel supported by [`VcMask`].
pub const MAX_VCS: usize = 16;

/// Bitmask over the virtual channels of one physical channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VcMask(pub u16);

impl VcMask {
    /// Mask allowing the first `vcs` virtual channels.
    #[inline]
    pub fn all(vcs: usize) -> Self {
        debug_assert!((1..=MAX_VCS).contains(&vcs));
        VcMask(if vcs == MAX_VCS {
            u16::MAX
        } else {
            (1u16 << vcs) - 1
        })
    }

    /// Mask allowing only virtual channel `vc`.
    #[inline]
    pub fn only(vc: usize) -> Self {
        debug_assert!(vc < MAX_VCS);
        VcMask(1 << vc)
    }

    /// Mask allowing virtual channels `lo..vcs` (the "adaptive" VCs in
    /// Duato-style protocols, with `0..lo` reserved for escape).
    #[inline]
    pub fn from(lo: usize, vcs: usize) -> Self {
        debug_assert!(lo < vcs && vcs <= MAX_VCS);
        VcMask(Self::all(vcs).0 & !Self::all(lo).0)
    }

    /// Whether the mask allows VC `vc`.
    #[inline]
    pub fn contains(self, vc: usize) -> bool {
        self.0 & (1 << vc) != 0
    }

    /// True when no VC is allowed.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of VCs allowed.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the allowed VC indices in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..MAX_VCS).filter(move |&v| self.contains(v))
    }
}

/// One routing candidate: a physical channel plus the VCs the message may
/// acquire on it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    pub channel: ChannelId,
    pub vcs: VcMask,
}

/// Everything a routing relation may consult about a message.
///
/// The simulator owns this state and keeps it current: `last_dim` implements
/// the paper's selection policy (prefer continuing in the current dimension
/// over turning) and `crossed_dateline` carries the per-dimension VC-class
/// switch used by the avoidance baselines.
#[derive(Clone, Copy, Debug)]
pub struct RoutingCtx {
    /// Node the message was injected at.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Node the header currently sits at.
    pub current: NodeId,
    /// Dimension of the last hop taken, if any.
    pub last_dim: Option<u8>,
    /// Bit `d` set once the message has traversed the wraparound link of
    /// dimension `d` (dateline crossing).
    pub crossed_dateline: u8,
    /// Non-minimal hops taken so far (only meaningful to misrouting
    /// relations; minimal relations ignore it).
    pub misroutes: u8,
}

impl RoutingCtx {
    /// Context for a message that has not yet taken any hop.
    pub fn fresh(src: NodeId, dst: NodeId, current: NodeId) -> Self {
        RoutingCtx {
            src,
            dst,
            current,
            last_dim: None,
            crossed_dateline: 0,
            misroutes: 0,
        }
    }

    /// Whether the dateline of dimension `d` has been crossed.
    #[inline]
    pub fn crossed(&self, d: u8) -> bool {
        self.crossed_dateline & (1 << d) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_all() {
        let m = VcMask::all(3);
        assert!(m.contains(0) && m.contains(1) && m.contains(2));
        assert!(!m.contains(3));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn mask_all_sixteen() {
        let m = VcMask::all(MAX_VCS);
        assert_eq!(m.count(), MAX_VCS);
    }

    #[test]
    fn mask_only() {
        let m = VcMask::only(2);
        assert_eq!(m.count(), 1);
        assert!(m.contains(2));
        assert!(!m.contains(0));
    }

    #[test]
    fn mask_from() {
        let m = VcMask::from(1, 4);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn mask_iter_order() {
        let m = VcMask(0b1010);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn ctx_dateline_bits() {
        let mut ctx = RoutingCtx::fresh(NodeId(0), NodeId(5), NodeId(0));
        assert!(!ctx.crossed(0));
        ctx.crossed_dateline |= 1 << 1;
        assert!(ctx.crossed(1));
        assert!(!ctx.crossed(0));
    }
}
