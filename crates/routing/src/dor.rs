//! Static dimension-order routing (DOR).

use crate::{Candidate, RoutingAlgorithm, RoutingCtx, VcMask};
use icn_topology::{Direction, KAryNCube, RoutingOffset};

/// Dimension-order routing: fully resolve dimension 0, then 1, and so on.
///
/// The routing relation returns exactly one physical channel (fan-out 1 in
/// CWG terms, modulo the number of VCs), and places **no restriction** on
/// which VC is used, exactly as in the paper's experiments. On a torus this
/// is *not* deadlock-free — the wraparound link closes the cycle that
/// produces the single-cycle deadlocks of Figure 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dor;

impl Dor {
    /// The single DOR output for `ctx`, or `None` when already at the
    /// destination. Exposed so avoidance baselines (dateline, Duato escape)
    /// can reuse the same dimension-order next hop.
    pub fn next_hop(topo: &KAryNCube, ctx: &RoutingCtx) -> Option<(icn_topology::ChannelId, u8)> {
        for dim in 0..topo.n() {
            let dir = match topo.routing_offset(ctx.current, ctx.dst, dim) {
                RoutingOffset::Zero => continue,
                RoutingOffset::Dir(dir, _) => dir,
                // Tie between directions: break deterministically towards
                // Plus so the relation stays a (static) function.
                RoutingOffset::Either(_) => Direction::Plus,
            };
            let ch = topo
                .channel_from(ctx.current, dim, dir)
                .expect("minimal direction must have a channel");
            return Some((ch, dim as u8));
        }
        None
    }
}

impl RoutingAlgorithm for Dor {
    fn name(&self) -> &'static str {
        "DOR"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn candidates(&self, topo: &KAryNCube, vcs: usize, ctx: &RoutingCtx, out: &mut Vec<Candidate>) {
        if let Some((ch, _)) = Self::next_hop(topo, ctx) {
            out.push(Candidate {
                channel: ch,
                vcs: VcMask::all(vcs),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_topology::{Coords, NodeId};

    fn route(topo: &KAryNCube, cur: NodeId, dst: NodeId) -> Vec<Candidate> {
        let mut out = Vec::new();
        Dor.candidates(topo, 1, &RoutingCtx::fresh(cur, dst, cur), &mut out);
        out
    }

    #[test]
    fn resolves_dimension_zero_first() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[2, 3]));
        let cands = route(&t, cur, dst);
        assert_eq!(cands.len(), 1);
        let info = t.channel(cands[0].channel);
        assert_eq!(info.dim, 0);
        assert_eq!(info.dir, Direction::Plus);
    }

    #[test]
    fn turns_to_next_dimension_when_aligned() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[2, 0]));
        let dst = t.node_at(&Coords::new(&[2, 3]));
        let cands = route(&t, cur, dst);
        let info = t.channel(cands[0].channel);
        assert_eq!(info.dim, 1);
    }

    #[test]
    fn takes_wraparound_shortcut_bidirectional() {
        let t = KAryNCube::torus(8, 2, true);
        let cur = t.node_at(&Coords::new(&[0, 0]));
        let dst = t.node_at(&Coords::new(&[7, 0]));
        let cands = route(&t, cur, dst);
        let info = t.channel(cands[0].channel);
        assert_eq!(info.dir, Direction::Minus);
    }

    #[test]
    fn unidirectional_always_plus() {
        let t = KAryNCube::torus(8, 2, false);
        let cur = t.node_at(&Coords::new(&[3, 0]));
        let dst = t.node_at(&Coords::new(&[1, 5]));
        let cands = route(&t, cur, dst);
        let info = t.channel(cands[0].channel);
        assert_eq!(info.dim, 0);
        assert_eq!(info.dir, Direction::Plus);
    }

    #[test]
    fn no_candidates_at_destination() {
        let t = KAryNCube::torus(8, 2, true);
        let n = NodeId(5);
        assert!(route(&t, n, n).is_empty());
    }

    #[test]
    fn minimal_and_connected_on_all_variants() {
        for topo in [
            KAryNCube::torus(6, 2, true),
            KAryNCube::torus(6, 2, false),
            KAryNCube::torus(3, 3, true),
            KAryNCube::mesh(5, 2),
        ] {
            crate::check_minimal_connected(&Dor, &topo, 2).unwrap();
        }
    }

    #[test]
    fn vc_mask_covers_all_vcs() {
        let t = KAryNCube::torus(8, 2, true);
        let mut out = Vec::new();
        let ctx = RoutingCtx::fresh(NodeId(0), NodeId(9), NodeId(0));
        Dor.candidates(&t, 4, &ctx, &mut out);
        assert_eq!(out[0].vcs, VcMask::all(4));
    }
}
